//! Concurrency correctness: N sessions committing interleaved update
//! batches into one service leave the store in exactly the state a
//! single session produces by replaying the same batches sequentially in
//! commit order. The comparison is the full fingerprint — every stored
//! tuple *with its derivation count* — so this is bitwise store equality,
//! not just visible-set equality.

use ndlog_lang::programs;
use ndlog_lang::Value;
use ndlog_runtime::{Tuple, TupleDelta};
use ndlog_serve::{CollectSink, NullSink, Service};
use std::sync::Arc;

fn link(s: u32, d: u32, c: f64) -> TupleDelta {
    TupleDelta::insert(
        "link",
        Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
    )
}

fn unlink(s: u32, d: u32, c: f64) -> TupleDelta {
    TupleDelta::delete(
        "link",
        Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
    )
}

/// Worker `w`'s batch `b`: a mix of keyed cost replacements on a private
/// spoke and churn on the shared figure-2 edges, so concurrent batches
/// genuinely contend on overlapping keys.
fn batch(w: u32, b: u32) -> Vec<TupleDelta> {
    let spoke = 10 + w;
    let cost = f64::from(b % 3 + 1);
    let mut deltas = vec![link(0, spoke, cost), link(spoke, 0, cost)];
    match b % 4 {
        0 => {
            deltas.push(unlink(0, 2, 1.0));
            deltas.push(unlink(2, 0, 1.0));
        }
        1 => {
            deltas.push(link(0, 2, 1.0));
            deltas.push(link(2, 0, 1.0));
        }
        2 => deltas.push(link(1, 3, f64::from(w) + 2.0)),
        _ => deltas.push(link(1, 3, 1.0)),
    }
    deltas
}

fn seed(service: &Arc<Service>) {
    let session = service.open_session(Arc::new(NullSink));
    let edges: [(u32, u32, f64); 5] = [
        (0, 1, 5.0),
        (0, 2, 1.0),
        (2, 1, 1.0),
        (1, 3, 1.0),
        (4, 0, 1.0),
    ];
    let mut deltas = Vec::new();
    for (a, b, c) in edges {
        for (s, d) in [(a, b), (b, a)] {
            deltas.push(link(s, d, c));
        }
    }
    session.apply_batch(deltas).unwrap();
}

#[test]
fn interleaved_sessions_equal_sequential_replay() {
    const WORKERS: u32 = 4;
    const BATCHES: u32 = 20;

    let program = programs::shortest_path("");
    let concurrent = Service::from_program(&program).unwrap();
    seed(&concurrent);

    // A live subscriber rides along: delta delivery must not perturb the
    // store, and its stream (snapshot + live deltas) is replayed from
    // empty below and must land on exactly the final relation.
    let sink = CollectSink::new();
    let watcher = concurrent.open_session(sink.clone());
    watcher.execute_line(".subscribe shortestPath").unwrap();

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let service = Arc::clone(&concurrent);
            std::thread::spawn(move || {
                let session = service.open_session(Arc::new(NullSink));
                for b in 0..BATCHES {
                    session.apply_batch(batch(w, b)).unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let log = concurrent.commit_log();
    assert_eq!(
        log.len() as u32,
        WORKERS * BATCHES + 1,
        "seed + all batches"
    );
    // Commit order is a real interleaving most runs, but correctness must
    // not depend on which one the scheduler produced.
    let sessions: std::collections::BTreeSet<u64> = log.iter().map(|b| b.session).collect();
    assert!(sessions.len() as u32 >= WORKERS, "every worker committed");

    // Oracle: one session replays the identical batches sequentially in
    // commit order onto a fresh service.
    let sequential = Service::from_program(&program).unwrap();
    let replayer = sequential.open_session(Arc::new(NullSink));
    for committed in &log {
        replayer.apply_batch(committed.deltas.clone()).unwrap();
    }

    assert_eq!(
        concurrent.fingerprint(),
        sequential.fingerprint(),
        "interleaved commits must be bitwise-identical to sequential replay"
    );

    // The watcher's stream per tuple strictly alternates insert/retract
    // and replays to exactly the final subscribed relation.
    let mut visible = std::collections::BTreeSet::new();
    for event in sink.drain() {
        let key = (event.delta.relation.clone(), event.delta.tuple.clone());
        match event.delta.sign {
            ndlog_runtime::Sign::Insert => {
                assert!(visible.insert(key), "double insert: {}", event.delta)
            }
            ndlog_runtime::Sign::Delete => {
                assert!(
                    visible.remove(&key),
                    "retract of invisible: {}",
                    event.delta
                )
            }
        };
    }
    let expected: std::collections::BTreeSet<_> = concurrent
        .fingerprint()
        .into_iter()
        .filter(|(rel, _, _)| rel == "shortestPath")
        .map(|(rel, _, tuple)| (rel, tuple))
        .collect();
    assert_eq!(
        visible, expected,
        "replayed stream equals the final relation"
    );
}
