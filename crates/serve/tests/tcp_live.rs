//! End-to-end TCP checks: multiple clients on real sockets committing
//! interleaved updates, a subscriber receiving its live delta stream over
//! the wire, and the dumped store matching the in-process fingerprint.

use ndlog_lang::programs;
use ndlog_serve::client::ScriptClient;
use ndlog_serve::{service, Service};
use std::time::Duration;

fn start_figure2() -> (std::sync::Arc<Service>, service::Server) {
    let svc = Service::from_program(&programs::shortest_path("")).unwrap();
    let server = service::start(std::sync::Arc::clone(&svc), "127.0.0.1:0").unwrap();
    let mut seed = ScriptClient::connect(server.addr()).unwrap();
    let reply = seed
        .send(
            "+link[(@n0,@n1,5.0),(@n1,@n0,5.0),(@n0,@n2,1.0),(@n2,@n0,1.0),\
             (@n2,@n1,1.0),(@n1,@n2,1.0),(@n1,@n3,1.0),(@n3,@n1,1.0),\
             (@n4,@n0,1.0),(@n0,@n4,1.0)].",
        )
        .unwrap();
    assert!(reply.ok, "{}", reply.message);
    seed.send(".quit").unwrap();
    (svc, server)
}

#[test]
fn tcp_subscriber_sees_exact_deltas_in_commit_order() {
    let (_svc, server) = start_figure2();

    let mut watcher = ScriptClient::connect(server.addr()).unwrap();
    let reply = watcher
        .send(".subscribe shortestPath(@n0, _, _, _)")
        .unwrap();
    assert!(reply.ok, "{}", reply.message);
    let snapshot = watcher.take_deltas();
    assert_eq!(snapshot.len(), 4, "a reaches b, c, d, e: {snapshot:?}");
    assert!(snapshot
        .iter()
        .all(|d| d.body.starts_with("+shortestPath(@n0,")));

    // Another client breaks the cheap a—c edge; the watcher's wire stream
    // must carry the reroute: -cost-2 route out, +cost-5 route in.
    let mut updater = ScriptClient::connect(server.addr()).unwrap();
    let reply = updater.send("-link[(@n0,@n2,1.0),(@n2,@n0,1.0)].").unwrap();
    assert!(reply.ok, "{}", reply.message);

    let mut churn = Vec::new();
    while let Ok(Some(delta)) = watcher.recv_delta(Duration::from_millis(500)) {
        churn.push(delta);
        if churn
            .iter()
            .any(|d| d.body.contains("5.0") && d.body.starts_with('+'))
        {
            break;
        }
    }
    assert!(
        churn
            .iter()
            .any(|d| d.body.starts_with("-shortestPath(@n0, @n1,") && d.body.contains("2.0")),
        "missing retraction: {churn:?}"
    );
    assert!(
        churn
            .iter()
            .any(|d| d.body.starts_with("+shortestPath(@n0, @n1,") && d.body.contains("5.0")),
        "missing reroute: {churn:?}"
    );
    // The bound-column filter holds on the wire too.
    assert!(churn.iter().all(|d| {
        let body = d.body.trim_start_matches(['+', '-']);
        body.starts_with("shortestPath(@n0,")
    }));
    // Epochs are non-decreasing: commit order is preserved per subscriber.
    assert!(churn.windows(2).all(|w| w[0].epoch <= w[1].epoch));

    updater.send(".quit").unwrap();
    watcher.send(".quit").unwrap();
    server.shutdown();
}

#[test]
fn dropped_connection_reaps_its_subscription() {
    let (svc, server) = start_figure2();

    let mut watcher = ScriptClient::connect(server.addr()).unwrap();
    let reply = watcher
        .send(".subscribe shortestPath(@n0, _, _, _)")
        .unwrap();
    assert!(reply.ok, "{}", reply.message);
    assert_eq!(svc.subscription_count(), 1);

    // Vanish without `.quit`: the server's reader sees EOF and must reap
    // the session, subscription included, instead of pinning it until
    // process exit.
    drop(watcher);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while svc.subscription_count() != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        svc.subscription_count(),
        0,
        "dead peer's subscription lingered"
    );
    server.shutdown();
}

#[test]
fn tcp_dump_matches_in_process_fingerprint() {
    let (svc, server) = start_figure2();
    let mut client = ScriptClient::connect(server.addr()).unwrap();

    // Interleave a few more commits from two live connections first.
    let mut other = ScriptClient::connect(server.addr()).unwrap();
    for round in 0..5u32 {
        let cost = f64::from(round % 2 + 1);
        let a = client
            .send(&format!(
                "+link[(@n0, @n7, {cost:.1}), (@n7, @n0, {cost:.1})].",
            ))
            .unwrap();
        assert!(a.ok, "{}", a.message);
        let b = other
            .send(&format!(
                "+link[(@n1, @n8, {cost:.1}), (@n8, @n1, {cost:.1})].",
            ))
            .unwrap();
        assert!(b.ok, "{}", b.message);
    }

    let reply = client.send(".dump").unwrap();
    assert!(reply.ok, "{}", reply.message);
    let expected: Vec<String> = svc
        .fingerprint()
        .into_iter()
        .map(|(rel, count, tuple)| format!("dump {rel} {count} {tuple}"))
        .collect();
    assert_eq!(reply.payload, expected, "wire dump equals the fingerprint");

    // Sequential replay of the commit log reproduces that fingerprint.
    let fresh = Service::from_program(&programs::shortest_path("")).unwrap();
    let replayer = fresh.open_session(std::sync::Arc::new(ndlog_serve::NullSink));
    for batch in svc.commit_log() {
        replayer.apply_batch(batch.deltas).unwrap();
    }
    assert_eq!(fresh.fingerprint(), svc.fingerprint());

    client.send(".quit").unwrap();
    other.send(".quit").unwrap();
    server.shutdown();
}
