//! The TCP front end: one thread per connection, all connections sharing
//! one [`Service`](crate::Service).
//!
//! Each connection's writes (command responses *and* asynchronous `delta`
//! pushes) go through a per-connection write lock so lines never
//! interleave. Lock hierarchy: the engine lock is always taken *before* a
//! write lock (event delivery happens inside commits, which hold the
//! engine lock), and connection threads never hold their write lock while
//! calling into the service — so the two locks cannot deadlock.

use crate::protocol;
use crate::session::{DeltaEvent, EventSink, Response, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A sink that pushes `delta` lines down a TCP connection.
struct WireSink {
    write: Arc<Mutex<TcpStream>>,
}

impl EventSink for WireSink {
    fn deliver(&self, event: &DeltaEvent) {
        let mut stream = self.write.lock().unwrap();
        // A dead peer just stops receiving; its reader thread will see
        // EOF and reap the session.
        let _ = writeln!(stream, "{}", protocol::format_event(event));
        let _ = stream.flush();
    }
}

/// A running TCP server. Dropping it (or calling [`Server::shutdown`])
/// stops accepting; established connections run until their clients quit.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// The bound address (useful with a `:0` bind in tests).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting new connections and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_accepting();
        }
    }
}

/// Bind `addr` and serve `service` until shutdown.
pub fn start(service: Arc<Service>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let _ = serve_connection(service, stream);
                });
            }
        })
    };
    Ok(Server {
        addr,
        stop,
        accept: Some(accept),
    })
}

/// A peer that sends nothing for this long is treated as gone: the read
/// loop wakes up, the connection is dropped and the session reaped,
/// instead of a silent dead peer pinning its delta subscription until
/// process exit.
const IDLE_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

fn serve_connection(service: Arc<Service>, stream: TcpStream) -> std::io::Result<()> {
    // Responses are small request/reply lines; Nagle + delayed ACK would
    // add ~40ms to every round trip.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_READ_TIMEOUT))?;
    let write = Arc::new(Mutex::new(stream.try_clone()?));
    let sink = Arc::new(WireSink {
        write: Arc::clone(&write),
    });
    let session = service.open_session(sink);
    // Returns whether the client quit cleanly (`.quit` drops the session
    // state itself).
    let drive = || -> std::io::Result<bool> {
        {
            let mut w = write.lock().unwrap();
            writeln!(w, "hello {}", session.id())?;
            w.flush()?;
        }
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(false), // EOF: client vanished.
                Ok(_) => {}
                // The idle timeout fired: treat the silent peer as gone.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
            // Execute WITHOUT holding the write lock (lock hierarchy).
            let result = session.execute_line(line.trim_end_matches(['\r', '\n']));
            let quitting = matches!(result, Ok(Response::Quit));
            let lines = match &result {
                Ok(resp) => protocol::format_response(resp),
                Err(err) => vec![protocol::format_error(err)],
            };
            {
                let mut w = write.lock().unwrap();
                for out in &lines {
                    writeln!(w, "{out}")?;
                }
                w.flush()?;
            }
            if quitting {
                return Ok(true);
            }
        }
    };
    let outcome = drive();
    // Whatever ended the loop — EOF, idle timeout or a mid-session I/O
    // error — the session and its subscriptions must not outlive the
    // connection. (Dropping an already-quit session is a no-op.)
    if !matches!(outcome, Ok(true)) {
        session.close();
    }
    outcome.map(|_| ())
}
