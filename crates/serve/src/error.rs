//! The one error type the session layer surfaces.

use std::fmt;

/// An error a command produced: a parse error (already rendered with a
/// caret snippet), an evaluation failure, or a violated session rule
/// (duplicate rule label, unknown subscription, ...). Always printable,
/// possibly multi-line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    message: String,
}

impl ServeError {
    /// Wrap any printable error.
    pub fn new(message: impl fmt::Display) -> ServeError {
        ServeError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}
