//! The line protocol the TCP service speaks.
//!
//! Everything is newline-delimited UTF-8 text. On connect the server
//! greets with `hello <session-id>`. Each client line is one interactive
//! command; the server answers with zero or more *payload* lines followed
//! by exactly one *terminator* line:
//!
//! | line                          | meaning                                     |
//! |-------------------------------|---------------------------------------------|
//! | `info <text>`                 | one line of human-readable output           |
//! | `row <rel>(<args>)`           | one query result row                        |
//! | `dump <rel> <count> (<args>)` | one stored tuple with its derivation count  |
//! | `sub <id> <rel>`              | subscription created                        |
//! | `ok <summary>`                | command succeeded (terminator)              |
//! | `err <message>`               | command failed (terminator)                 |
//! | `bye`                         | `.quit` acknowledged; server closes         |
//!
//! Live-query events are pushed asynchronously as
//! `delta <sub-id> <epoch> <±rel(args)>` lines and may appear between a
//! command's payload lines (they are produced by *other* sessions'
//! commits); clients must treat any `delta ` line as out-of-band.
//! Embedded newlines in `err`/`info` text are escaped as `\n` so the
//! line framing survives multi-line caret snippets.

use crate::session::{DeltaEvent, Response};

/// Escape a message onto one line (`\` → `\\`, newline → `\n`).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Undo [`escape`].
pub fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Render a successful response as its wire lines (payload lines then the
/// terminator).
pub fn format_response(resp: &Response) -> Vec<String> {
    match resp {
        Response::Empty => vec!["ok".to_string()],
        Response::Ok(text) => {
            let mut lines: Vec<String> =
                text.lines().skip(1).map(|l| format!("info {l}")).collect();
            let first = text.lines().next().unwrap_or("");
            lines.push(format!("ok {}", escape(first)));
            lines
        }
        Response::Rows {
            relation,
            rows,
            epoch,
        } => {
            let mut lines: Vec<String> =
                rows.iter().map(|t| format!("row {relation}{t}")).collect();
            lines.push(format!("ok {} row(s); epoch {epoch}", rows.len()));
            lines
        }
        Response::Subscribed {
            id,
            relation,
            snapshot,
            epoch,
        } => vec![
            format!("sub {id} {relation}"),
            format!(
                "ok subscribed {relation} as #{id}; {snapshot} tuple(s) in snapshot; epoch {epoch}"
            ),
        ],
        Response::Dump { rows, epoch } => {
            let mut lines: Vec<String> = rows
                .iter()
                .map(|(rel, count, tuple)| format!("dump {rel} {count} {tuple}"))
                .collect();
            lines.push(format!("ok {} stored tuple(s); epoch {epoch}", rows.len()));
            lines
        }
        Response::Quit => vec!["bye".to_string()],
    }
}

/// Render an error terminator line.
pub fn format_error(err: &crate::ServeError) -> String {
    format!("err {}", escape(&err.to_string()))
}

/// Render an asynchronous live-query event line. The delta itself prints
/// as `+rel(args)` / `-rel(args)` (the runtime's signed-tuple `Display`).
pub fn format_event(event: &DeltaEvent) -> String {
    format!(
        "delta {} {} {}",
        event.subscription, event.epoch, event.delta
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;
    use ndlog_runtime::{Tuple, TupleDelta};

    #[test]
    fn escape_round_trips() {
        for text in ["plain", "two\nlines", "back\\slash\nand\\nmore"] {
            let escaped = escape(text);
            assert!(!escaped.contains('\n'));
            assert_eq!(unescape(&escaped), text);
        }
    }

    #[test]
    fn responses_render_payload_then_terminator() {
        let rows = Response::Rows {
            relation: "link".to_string(),
            rows: vec![Tuple::new(vec![
                Value::addr(0u32),
                Value::addr(1u32),
                Value::Float(5.0),
            ])],
            epoch: 3,
        };
        assert_eq!(
            format_response(&rows),
            vec![
                "row link(@n0, @n1, 5.0)".to_string(),
                "ok 1 row(s); epoch 3".to_string(),
            ]
        );

        let multi = Response::Ok("first\nsecond".to_string());
        assert_eq!(
            format_response(&multi),
            vec!["info second".to_string(), "ok first".to_string()]
        );

        let event = DeltaEvent {
            subscription: 2,
            epoch: 7,
            delta: TupleDelta::delete(
                "link",
                Tuple::new(vec![
                    Value::addr(0u32),
                    Value::addr(2u32),
                    Value::Float(1.0),
                ]),
            ),
        };
        assert_eq!(format_event(&event), "delta 2 7 -link(@n0, @n2, 1.0)");
    }
}
