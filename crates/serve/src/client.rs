//! A scripted line-protocol client, used by the CI smoke test, the
//! throughput bench and the integration tests. Not a general-purpose
//! client library: it drives one command at a time and stashes any
//! asynchronous `delta` lines it encounters along the way.

use crate::protocol;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed `delta` push line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaLine {
    /// Subscription id the event matched.
    pub subscription: u64,
    /// Epoch of the producing commit.
    pub epoch: u64,
    /// The rendered signed tuple, e.g. `-shortestPath(@n0, @n1, ..., 2.0)`.
    pub body: String,
}

/// A command's reply: its payload lines and terminator.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Payload lines (`row …`, `dump …`, `info …`, `sub …`), in order.
    pub payload: Vec<String>,
    /// Whether the terminator was `ok`/`bye` (vs `err`).
    pub ok: bool,
    /// The terminator's message (unescaped; empty for a bare `ok`).
    pub message: String,
}

/// A connected scripted client.
pub struct ScriptClient {
    write: TcpStream,
    reader: BufReader<TcpStream>,
    session: u64,
    deltas: Vec<DeltaLine>,
}

fn parse_delta(line: &str) -> Option<DeltaLine> {
    let rest = line.strip_prefix("delta ")?;
    let mut parts = rest.splitn(3, ' ');
    let subscription = parts.next()?.parse().ok()?;
    let epoch = parts.next()?.parse().ok()?;
    let body = parts.next()?.to_string();
    Some(DeltaLine {
        subscription,
        epoch,
        body,
    })
}

impl ScriptClient {
    /// Connect and read the `hello` greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ScriptClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let session = line
            .trim()
            .strip_prefix("hello ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad greeting: {line:?}"),
                )
            })?;
        Ok(ScriptClient {
            write,
            reader,
            session,
            deltas: Vec::new(),
        })
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Send one command line and read its reply. `delta` pushes that
    /// arrive in between are stashed (see [`ScriptClient::take_deltas`]).
    pub fn send(&mut self, command: &str) -> std::io::Result<Reply> {
        writeln!(self.write, "{command}")?;
        self.write.flush()?;
        let mut payload = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if let Some(delta) = parse_delta(trimmed) {
                self.deltas.push(delta);
            } else if trimmed == "bye" {
                return Ok(Reply {
                    payload,
                    ok: true,
                    message: "bye".to_string(),
                });
            } else if let Some(rest) = trimmed.strip_prefix("ok") {
                return Ok(Reply {
                    payload,
                    ok: true,
                    message: protocol::unescape(rest.trim_start()),
                });
            } else if let Some(rest) = trimmed.strip_prefix("err ") {
                return Ok(Reply {
                    payload,
                    ok: false,
                    message: protocol::unescape(rest),
                });
            } else {
                payload.push(trimmed.to_string());
            }
        }
    }

    /// Wait up to `timeout` for one more asynchronous `delta` push.
    /// Returns `Ok(None)` on timeout.
    pub fn recv_delta(&mut self, timeout: Duration) -> std::io::Result<Option<DeltaLine>> {
        if !self.deltas.is_empty() {
            return Ok(Some(self.deltas.remove(0)));
        }
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        let mut line = String::new();
        let outcome = match self.reader.read_line(&mut line) {
            Ok(0) => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed",
            )),
            Ok(_) => Ok(parse_delta(line.trim_end_matches(['\r', '\n']))),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.reader.get_ref().set_read_timeout(None)?;
        outcome
    }

    /// Take every `delta` push stashed so far.
    pub fn take_deltas(&mut self) -> Vec<DeltaLine> {
        std::mem::take(&mut self.deltas)
    }
}
