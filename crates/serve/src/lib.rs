//! Interactive shell and line-protocol network service for NDlog, with
//! live incremental query subscriptions.
//!
//! Two front ends share one [`Service`] — a REPL ([`repl`]) and a TCP
//! line protocol ([`service`], wire format in [`protocol`]). Any number
//! of concurrent [`Session`]s execute the interactive dialect
//! ([`ndlog_lang::interactive`]) against a single incremental engine:
//! every committed update batch is one epoch, reads are
//! snapshot-consistent at epoch boundaries, and `.subscribe` turns the
//! engine's delta-tap into a live stream of exact insert/retract events.
//!
//! # Using the shell
//!
//! `ndlog repl --program examples/programs/...` or interactively:
//!
//! ```text
//! ndlog> materialize(edge, keys(1,2)).
//! materialized edge; epoch 1
//! ndlog> +edge[(1,2), (2,3), (3,4)].
//! applied 3 update(s); epoch 2; 3 derivation(s)
//! ndlog> reach(A,B) :- edge(A,B).
//! added rule r1; epoch 3
//! ndlog> reach(A,C) :- edge(A,B), reach(B,C).
//! added rule r2; epoch 4
//! ndlog> ?- reach(1, _).
//! reach(1, 2)
//! reach(1, 3)
//! reach(1, 4)
//! 3 row(s); epoch 4
//! ndlog> .subscribe reach
//! delta 1 4 +reach(1, 2)
//! delta 1 4 +reach(1, 3)
//! delta 1 4 +reach(1, 4)
//! delta 1 4 +reach(2, 3)
//! delta 1 4 +reach(2, 4)
//! delta 1 4 +reach(3, 4)
//! subscribed reach as #1; 6 tuple(s) in snapshot; epoch 4
//! ndlog> -edge(1,2).
//! delta 1 5 -reach(1, 2)
//! delta 1 5 -reach(1, 3)
//! delta 1 5 -reach(1, 4)
//! applied 1 update(s); epoch 5; 0 derivation(s)
//! ndlog> .quit
//! bye
//! ```
//!
//! Rules added *after* data arrived behave as if they had always existed:
//! the service rebuilds a fresh engine from the extended program and
//! replays its commit log, then streams subscribers the net diff.
//!
//! # Using the service
//!
//! `ndlog serve --listen 127.0.0.1:7090 --program prog.ndlog` serves the
//! same dialect to many clients at once; see [`protocol`] for the wire
//! format and [`client::ScriptClient`] for a scripted driver. All
//! sessions commit into one engine in a global epoch order, and each
//! subscriber receives every matching delta in commit order.
//!
//! `ndlog smoke` runs a scripted end-to-end TCP session (load program,
//! update, query, subscribe, observe a retraction, dump, quit) and exits
//! non-zero on any mismatch — CI runs it on every push. `ndlog bench`
//! measures multi-session update throughput ([`bench`]).

pub mod bench;
pub mod client;
pub mod error;
pub mod protocol;
pub mod repl;
pub mod service;
pub mod session;

pub use error::ServeError;
pub use session::{
    CollectSink, CommittedBatch, DeltaEvent, EventSink, NullSink, Response, Service, Session,
};
