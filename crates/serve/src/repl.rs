//! The interactive shell: the same session layer as the TCP service,
//! rendered for a human on stdout.
//!
//! Statements may span lines (input is buffered until a line ends with
//! `.`); meta commands (leading `.`) always execute immediately. Live
//! subscription deltas print as `delta <sub> <epoch> <±rel(args)>` lines
//! as they happen, interleaved with the prompt like any other async
//! notification.

use crate::session::{DeltaEvent, EventSink, Response, Service};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// A sink that prints live deltas to stdout.
struct StdoutSink;

impl EventSink for StdoutSink {
    fn deliver(&self, event: &DeltaEvent) {
        println!("{}", crate::protocol::format_event(event));
    }
}

/// Render a response for a human.
fn render(resp: &Response) -> String {
    match resp {
        Response::Empty => String::new(),
        Response::Ok(text) => text.clone(),
        Response::Rows {
            relation,
            rows,
            epoch,
        } => {
            let mut out = String::new();
            for row in rows {
                out.push_str(&format!("{relation}{row}\n"));
            }
            out.push_str(&format!("{} row(s); epoch {epoch}", rows.len()));
            out
        }
        Response::Subscribed {
            id,
            relation,
            snapshot,
            epoch,
        } => format!(
            "subscribed {relation} as #{id}; {snapshot} tuple(s) in snapshot; epoch {epoch}"
        ),
        Response::Dump { rows, epoch } => {
            let mut out = String::new();
            for (rel, count, tuple) in rows {
                out.push_str(&format!("{rel} x{count} {tuple}\n"));
            }
            out.push_str(&format!("{} stored tuple(s); epoch {epoch}", rows.len()));
            out
        }
        Response::Quit => "bye".to_string(),
    }
}

/// Is this line a complete statement on its own (a meta command), or does
/// it terminate the buffered statement (ends with `.`)?
fn complete(buffer: &str) -> bool {
    let trimmed = buffer.trim();
    trimmed.starts_with('.') || trimmed.ends_with('.')
}

/// Run the shell until EOF or `.quit`, reading from `input` and writing
/// prompts/results to `output`. Split out from [`run`] so tests can drive
/// it with in-memory buffers.
pub fn run_on(
    service: &Arc<Service>,
    input: impl BufRead,
    mut output: impl Write,
) -> std::io::Result<()> {
    let session = service.open_session(Arc::new(StdoutSink));
    let mut buffer = String::new();
    write!(output, "ndlog> ")?;
    output.flush()?;
    for line in input.lines() {
        let line = line?;
        if !buffer.is_empty() {
            buffer.push('\n');
        }
        buffer.push_str(&line);
        if buffer.trim().is_empty() {
            buffer.clear();
        } else if complete(&buffer) {
            let statement = std::mem::take(&mut buffer);
            match session.execute_line(&statement) {
                Ok(Response::Quit) => {
                    writeln!(output, "bye")?;
                    return Ok(());
                }
                Ok(resp) => {
                    let text = render(&resp);
                    if !text.is_empty() {
                        writeln!(output, "{text}")?;
                    }
                }
                Err(err) => writeln!(output, "error: {err}")?,
            }
        } else {
            write!(output, "  ...> ")?;
            output.flush()?;
            continue;
        }
        write!(output, "ndlog> ")?;
        output.flush()?;
    }
    writeln!(output)?;
    session.close();
    Ok(())
}

/// Run the shell on stdin/stdout.
pub fn run(service: &Arc<Service>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    run_on(service, stdin.lock(), std::io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_executes_multi_line_statements_and_meta_commands() {
        let service = Service::new();
        let script = "\
materialize(edge, keys(1,2)).
+edge[(1,2),
      (2,3)].
reach(A,B) :- edge(A,B).
reach(A,C) :-
    edge(A,B),
    reach(B,C).
?- reach(1, _).
.rel
.quit
";
        let mut out = Vec::new();
        run_on(&service, script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("reach(1, 2)"), "{text}");
        assert!(text.contains("reach(1, 3)"), "{text}");
        assert!(text.contains("2 row(s)"), "{text}");
        assert!(text.contains("edge: 2 tuple(s)"), "{text}");
        assert!(text.contains("  ...> "), "continuation prompt: {text}");
        assert!(text.trim_end().ends_with("bye"), "{text}");
    }

    #[test]
    fn shell_reports_errors_and_keeps_going() {
        let service = Service::new();
        let script = "+edge(1 2).\n.relations\n";
        let mut out = Vec::new();
        run_on(&service, script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains('^'), "caret snippet survives: {text}");
        assert!(text.contains("(no relations)"), "{text}");
    }
}
