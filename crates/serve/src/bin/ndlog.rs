//! The `ndlog` command: interactive shell, network service, CI smoke
//! test and throughput bench over the shared session layer.

use ndlog_serve::client::ScriptClient;
use ndlog_serve::{bench, repl, service, Service};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ndlog <command> [options]

commands:
  repl  [--program FILE]                 interactive shell
  serve --listen ADDR [--program FILE]   TCP line-protocol service
  smoke [--verbose]                      scripted end-to-end TCP session (CI)
  bench [--sessions 1,2,4] [--batches N] [--json PATH] [--baseline PATH]
                                         multi-session update throughput"
    );
    std::process::exit(2)
}

fn service_from(program: Option<&str>) -> Arc<Service> {
    match program {
        None => Service::new(),
        Some(path) => {
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("ndlog: cannot read {path}: {e}");
                std::process::exit(1)
            });
            Service::from_source(&src).unwrap_or_else(|e| {
                eprintln!("ndlog: {path}: {e}");
                std::process::exit(1)
            })
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("repl") => {
            let service = service_from(flag_value(&args, "--program"));
            if let Err(e) = repl::run(&service) {
                eprintln!("ndlog: {e}");
                std::process::exit(1);
            }
        }
        Some("serve") => {
            let Some(listen) = flag_value(&args, "--listen") else {
                usage()
            };
            let svc = service_from(flag_value(&args, "--program"));
            let server = service::start(svc, listen).unwrap_or_else(|e| {
                eprintln!("ndlog: cannot bind {listen}: {e}");
                std::process::exit(1)
            });
            println!("ndlog: serving on {}", server.addr());
            loop {
                std::thread::park();
            }
        }
        Some("smoke") => {
            let verbose = args.iter().any(|a| a == "--verbose");
            if let Err(e) = smoke(verbose) {
                eprintln!("smoke FAILED: {e}");
                std::process::exit(1);
            }
            println!("smoke OK");
        }
        Some("bench") => run_bench(&args),
        _ => usage(),
    }
}

/// The scripted end-to-end session CI runs: load the shortest-path
/// program over the wire, feed the figure-2 graph, query, subscribe,
/// break a link, watch the retraction arrive, dump, quit.
fn smoke(verbose: bool) -> Result<(), String> {
    let service = Service::new();
    let server = service::start(service, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let mut client = ScriptClient::connect(server.addr()).map_err(|e| format!("connect: {e}"))?;

    let program = [
        "materialize(link, keys(1,2)).",
        "materialize(path, keys(1,2,4)).",
        "materialize(spCost, keys(1,2)).",
        "materialize(shortestPath, keys(1,2)).",
        "sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_cons(S, f_cons(D, nil)).",
        "sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2), \
         f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).",
        "sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).",
        "sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).",
    ];
    fn step(
        client: &mut ScriptClient,
        verbose: bool,
        cmd: &str,
    ) -> Result<ndlog_serve::client::Reply, String> {
        let reply = client.send(cmd).map_err(|e| format!("{cmd}: {e}"))?;
        if verbose {
            println!("> {cmd}");
            for line in &reply.payload {
                println!("  {line}");
            }
            println!("  => {}", reply.message);
        }
        if !reply.ok {
            return Err(format!("{cmd}: server said: {}", reply.message));
        }
        Ok(reply)
    }

    for line in program {
        step(&mut client, verbose, line)?;
    }
    step(
        &mut client,
        verbose,
        "+link[(@n0,@n1,5.0),(@n1,@n0,5.0),(@n0,@n2,1.0),(@n2,@n0,1.0),\
         (@n2,@n1,1.0),(@n1,@n2,1.0),(@n1,@n3,1.0),(@n3,@n1,1.0),\
         (@n4,@n0,1.0),(@n0,@n4,1.0)].",
    )?;

    // Figure 2: a's best route to b goes via c at cost 2.
    let reply = step(&mut client, verbose, "?- shortestPath(@n0, @n1, P, C).")?;
    if reply.payload.len() != 1 || !reply.payload[0].contains("2.0") {
        return Err(format!(
            "expected one cost-2.0 row, got {:?}",
            reply.payload
        ));
    }

    let reply = step(&mut client, verbose, ".subscribe shortestPath")?;
    if !reply.payload.iter().any(|l| l.starts_with("sub ")) {
        return Err(format!("no sub line in {:?}", reply.payload));
    }
    let snapshot = client.take_deltas();
    if snapshot.is_empty() || !snapshot.iter().all(|d| d.body.starts_with('+')) {
        return Err(format!("bad subscribe snapshot: {snapshot:?}"));
    }

    // Breaking a—c reroutes a→b; the live stream must carry the exact
    // retraction of the old shortest path.
    step(&mut client, verbose, "-link[(@n0,@n2,1.0),(@n2,@n0,1.0)].")?;
    let mut deltas = client.take_deltas();
    while let Ok(Some(d)) = client.recv_delta(Duration::from_millis(200)) {
        deltas.push(d);
    }
    if !deltas
        .iter()
        .any(|d| d.body.starts_with("-shortestPath(@n0, @n1,") && d.body.contains("2.0"))
    {
        return Err(format!("no retraction of the cost-2 route in {deltas:?}"));
    }
    if !deltas
        .iter()
        .any(|d| d.body.starts_with("+shortestPath(@n0, @n1,") && d.body.contains("5.0"))
    {
        return Err(format!("no rerouted cost-5 path in {deltas:?}"));
    }

    let reply = step(&mut client, verbose, ".dump")?;
    if !reply.payload.iter().any(|l| l.starts_with("dump link ")) {
        return Err(format!("dump has no link rows: {:?}", reply.payload));
    }

    // Parse errors come back rendered with a caret snippet.
    let bad = client
        .send("+link(@n0 @n1).")
        .map_err(|e| format!("bad line: {e}"))?;
    if bad.ok || !bad.message.contains('^') {
        return Err(format!(
            "expected caret-rendered error, got {:?}",
            bad.message
        ));
    }

    step(&mut client, verbose, ".quit")?;
    server.shutdown();
    Ok(())
}

fn run_bench(args: &[String]) {
    let sessions: Vec<usize> = flag_value(args, "--sessions")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
        .collect();
    let batches: usize = flag_value(args, "--batches")
        .unwrap_or("50")
        .parse()
        .unwrap_or_else(|_| usage());

    let result = bench::service_throughput(&sessions, batches);
    for run in &result.runs {
        println!(
            "sessions={:<3} updates={:<6} elapsed={:.3}s throughput={:.0} updates/s (monitor saw {} deltas)",
            run.sessions, run.updates, run.elapsed_seconds, run.updates_per_sec, run.monitor_deltas
        );
    }
    let json = result.to_json();
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("ndlog: cannot write {path}: {e}");
            std::process::exit(1)
        });
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--baseline") {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("ndlog: cannot read baseline {path}: {e}");
            std::process::exit(1)
        });
        let committed = json_number(&baseline, "min_updates_per_sec").unwrap_or_else(|| {
            eprintln!("ndlog: no min_updates_per_sec in {path}");
            std::process::exit(1)
        });
        let measured = result.min_updates_per_sec();
        // Generous slack: CI machines vary, regressions we care about are
        // integer-factor collapses, not noise.
        let floor = committed / 4.0;
        if measured < floor {
            eprintln!(
                "bench gate FAILED: measured {measured:.1} updates/s < floor {floor:.1} \
                 (baseline {committed:.1} / 4)"
            );
            std::process::exit(1);
        }
        println!(
            "bench gate OK: measured {measured:.1} updates/s >= floor {floor:.1} \
             (baseline {committed:.1} / 4)"
        );
    }
}

/// Pull `"field": <number>` out of a JSON text (the repo is offline and
/// has no JSON parser; mirrors the bench harness's convention).
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = text[start..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
