//! The `service_throughput` benchmark: N concurrent TCP sessions feeding
//! link-churn update batches into one shared engine while a monitor
//! session holds a live `shortestPath` subscription.
//!
//! Each worker session owns a private spoke off node `@n0` (worker *i*
//! churns the `@n0 ↔ @n(5+i)` pair) and alternates its cost between
//! batches — every update is a keyed replacement, so every commit does
//! real incremental work (retract the old route, derive the new one) and
//! streams deltas to the monitor. The score is committed updates per
//! second of wall time across all workers.

use crate::client::ScriptClient;
use crate::session::Service;
use ndlog_lang::programs;
use ndlog_lang::Value;
use ndlog_runtime::{Tuple, TupleDelta};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One session-count measurement.
#[derive(Debug, Clone)]
pub struct Run {
    /// Concurrent worker sessions.
    pub sessions: usize,
    /// Total committed update statements across all workers.
    pub updates: usize,
    /// Wall time from releasing the workers to the last one joining.
    pub elapsed_seconds: f64,
    /// `updates / elapsed_seconds`.
    pub updates_per_sec: f64,
    /// Live deltas the monitor subscription received during the run.
    pub monitor_deltas: usize,
}

/// The benchmark's result set.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Update statements each worker sends.
    pub batches_per_session: usize,
    /// One entry per session count.
    pub runs: Vec<Run>,
}

impl BenchResult {
    /// The slowest configuration's throughput — the number the CI gate
    /// compares against the committed baseline.
    pub fn min_updates_per_sec(&self) -> f64 {
        self.runs
            .iter()
            .map(|r| r.updates_per_sec)
            .fold(f64::INFINITY, f64::min)
    }

    /// Render as JSON (the repo is offline, so JSON is built by hand like
    /// the other benches).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"service_throughput\",");
        let _ = writeln!(
            out,
            "  \"batches_per_session\": {},",
            self.batches_per_session
        );
        let _ = writeln!(
            out,
            "  \"min_updates_per_sec\": {:.1},",
            self.min_updates_per_sec()
        );
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"sessions\": {}, \"updates\": {}, \"elapsed_seconds\": {:.6}, \"updates_per_sec\": {:.1}, \"monitor_deltas\": {}}}",
                run.sessions, run.updates, run.elapsed_seconds, run.updates_per_sec, run.monitor_deltas
            );
            out.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Build the benchmark service: the shortest-path program over the
/// figure-2 graph, served on an ephemeral localhost port.
fn bench_service() -> (Arc<Service>, crate::service::Server) {
    let service =
        Service::from_program(&programs::shortest_path("")).expect("canonical program plans");
    let session = service.open_session(Arc::new(crate::session::NullSink));
    let edges: [(u32, u32, f64); 5] = [
        (0, 1, 5.0),
        (0, 2, 1.0),
        (2, 1, 1.0),
        (1, 3, 1.0),
        (4, 0, 1.0),
    ];
    let mut deltas = Vec::new();
    for (a, b, c) in edges {
        for (s, d) in [(a, b), (b, a)] {
            deltas.push(TupleDelta::insert(
                "link",
                Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
            ));
        }
    }
    session.apply_batch(deltas).expect("base graph applies");
    let server = crate::service::start(Arc::clone(&service), "127.0.0.1:0")
        .expect("ephemeral localhost bind");
    (service, server)
}

/// Worker `i`'s update statement for batch `b`: replace the cost of its
/// private spoke (both directions, one atomic batch).
fn churn_statement(worker: usize, batch: usize) -> String {
    let spoke = 5 + worker;
    let cost = if batch.is_multiple_of(2) { 1.0 } else { 2.0 };
    format!("+link[(@n0, @n{spoke}, {cost:.1}), (@n{spoke}, @n0, {cost:.1})].")
}

/// Run the benchmark for each session count.
pub fn service_throughput(session_counts: &[usize], batches: usize) -> BenchResult {
    let mut runs = Vec::new();
    for &sessions in session_counts {
        let (_service, server) = bench_service();
        let addr = server.addr();

        let mut monitor = ScriptClient::connect(addr).expect("monitor connects");
        let reply = monitor
            .send(".subscribe shortestPath")
            .expect("subscribe succeeds");
        assert!(reply.ok, "subscribe failed: {}", reply.message);

        let start = Instant::now();
        let workers: Vec<_> = (0..sessions)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = ScriptClient::connect(addr).expect("worker connects");
                    for b in 0..batches {
                        let reply = client.send(&churn_statement(i, b)).expect("send");
                        assert!(reply.ok, "update failed: {}", reply.message);
                    }
                    let _ = client.send(".quit");
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("worker thread");
        }
        let elapsed = start.elapsed().as_secs_f64();

        // Drain whatever the monitor has already buffered, plus anything
        // still in flight on the socket.
        let mut monitor_deltas = monitor.take_deltas().len();
        while let Ok(Some(_)) = monitor.recv_delta(std::time::Duration::from_millis(50)) {
            monitor_deltas += 1;
        }
        let _ = monitor.send(".quit");
        server.shutdown();

        let updates = sessions * batches;
        runs.push(Run {
            sessions,
            updates,
            elapsed_seconds: elapsed,
            updates_per_sec: updates as f64 / elapsed.max(1e-9),
            monitor_deltas,
        });
    }
    BenchResult {
        batches_per_session: batches,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_bench_runs_and_renders_json() {
        let result = service_throughput(&[1, 2], 5);
        assert_eq!(result.runs.len(), 2);
        assert!(result.min_updates_per_sec() > 0.0);
        // Workers churn spokes off @n0, so shortest paths change and the
        // monitor must have seen live deltas in every configuration.
        for run in &result.runs {
            assert_eq!(run.updates, run.sessions * 5);
            assert!(run.monitor_deltas > 0, "monitor saw no deltas: {run:?}");
        }
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"service_throughput\""), "{json}");
        assert!(json.contains("\"min_updates_per_sec\""), "{json}");
        assert!(json.contains("\"sessions\": 2"), "{json}");
    }
}
