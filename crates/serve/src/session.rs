//! The shared session layer behind both front ends (REPL and TCP).
//!
//! One [`Service`] owns one incremental engine (an
//! [`Evaluator`](ndlog_runtime::Evaluator)) behind a mutex. Any number of
//! [`Session`]s execute interactive commands against it; every committed
//! update batch advances the service **epoch** by one, and everything a
//! command observes — query rows, dumps, subscription snapshots — is read
//! under the engine lock, so reads are snapshot-consistent at epoch
//! boundaries: a query sees either all of a concurrent batch or none of
//! it, never a half-applied state.
//!
//! **Live queries.** `.subscribe rel` registers the session's
//! [`EventSink`] for a relation (optionally with a bound-column filter).
//! The subscriber first receives the relation's current contents as
//! insert events at the current epoch, then the exact insert/retract
//! stream produced by the incremental maintenance machinery (the
//! [`DeltaTap`](ndlog_runtime::DeltaTap) visibility transitions), tagged
//! with the epoch that produced them. Events are delivered while the
//! engine lock is held, so every subscriber observes deltas in commit
//! order.
//!
//! **Commit log.** Every committed batch is appended to a log. This gives
//! the concurrency tests their oracle (replaying the log sequentially
//! must land in the bitwise-identical store), and makes interactive rule
//! addition sound: adding a rule/table rebuilds a fresh engine from the
//! extended program and replays the log — incremental maintenance equals
//! from-scratch evaluation, so the store (counts included) is exactly
//! what it would have been had the rule existed all along. Subscribers
//! are sent the net visibility diff the new rule causes.

use crate::error::ServeError;
use ndlog_lang::ast::{Atom, Program, Rule, TableDecl, Term};
use ndlog_lang::interactive::{
    Command, MetaCommand, Op, SubscribeFilter, UnsubscribeTarget, Update,
};
use ndlog_lang::optimizer::{optimize, Pipeline};
use ndlog_lang::{parse_command, parse_program, Value};
use ndlog_runtime::{Evaluator, Strategy, Tuple, TupleDelta};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// A live-query event: one exact insert/retract delta of a subscribed
/// relation, tagged with the subscription it matched and the epoch of the
/// commit that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaEvent {
    /// The subscription this event matched.
    pub subscription: u64,
    /// The epoch of the producing commit (snapshot events carry the epoch
    /// current at `.subscribe` time).
    pub epoch: u64,
    /// The signed tuple.
    pub delta: TupleDelta,
}

/// Where a session's live-query events go (a TCP connection, stdout, a
/// collecting buffer in tests). Delivery happens under the engine lock:
/// implementations must not call back into the service.
pub trait EventSink: Send + Sync {
    /// Deliver one event. Errors are the sink's problem (a dead TCP peer
    /// just stops seeing deltas; the session is reaped when its reader
    /// returns EOF).
    fn deliver(&self, event: &DeltaEvent);
}

/// A sink that discards events.
pub struct NullSink;

impl EventSink for NullSink {
    fn deliver(&self, _event: &DeltaEvent) {}
}

/// A sink that buffers events for later inspection (tests, examples).
#[derive(Default)]
pub struct CollectSink {
    events: Mutex<Vec<DeltaEvent>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Take everything delivered so far.
    pub fn drain(&self) -> Vec<DeltaEvent> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl EventSink for CollectSink {
    fn deliver(&self, event: &DeltaEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// One committed update batch, in commit order. The log is the replay
/// oracle: applying every batch's deltas in order onto a fresh engine for
/// the same program reproduces the store bit-for-bit.
#[derive(Debug, Clone)]
pub struct CommittedBatch {
    /// The session that committed the batch.
    pub session: u64,
    /// The epoch the commit produced.
    pub epoch: u64,
    /// The batch's deltas, as applied.
    pub deltas: Vec<TupleDelta>,
}

/// What a command returned (the wire/REPL layers render this).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Blank input.
    Empty,
    /// Success with a human-readable summary (may span lines).
    Ok(String),
    /// Query result rows, sorted.
    Rows {
        /// Queried relation.
        relation: String,
        /// Matching tuples.
        rows: Vec<Tuple>,
        /// Epoch the read was consistent at.
        epoch: u64,
    },
    /// `.subscribe` succeeded; the snapshot was already delivered through
    /// the sink.
    Subscribed {
        /// Subscription id (for `.unsubscribe`).
        id: u64,
        /// Subscribed relation.
        relation: String,
        /// Number of snapshot tuples delivered.
        snapshot: usize,
        /// Epoch of the snapshot.
        epoch: u64,
    },
    /// `.dump`: every stored tuple with its derivation count, sorted —
    /// the store fingerprint the consistency tests compare.
    Dump {
        /// `(relation, derivation count, tuple)` rows.
        rows: Vec<(String, u64, Tuple)>,
        /// Epoch the dump was consistent at.
        epoch: u64,
    },
    /// `.quit`: the session is closed.
    Quit,
}

struct Subscription {
    id: u64,
    session: u64,
    relation: String,
    filter: Option<SubscribeFilter>,
    sink: Arc<dyn EventSink>,
}

struct Core {
    /// The user-facing program (as typed/loaded — `.rules` shows this).
    program: Program,
    /// The optimizer pipeline every engine build runs through. Initial
    /// load and every interactive rebuild (rule/table addition, `.load`)
    /// compile `optimize(program, pipeline)` — the same entry the batch
    /// experiments use — so a rule added mid-session executes exactly the
    /// plan it would have had at load time.
    pipeline: Pipeline,
    eval: Evaluator,
    epoch: u64,
    commits: Vec<CommittedBatch>,
    subs: Vec<Subscription>,
    next_sub: u64,
    next_session: u64,
}

/// The shared engine all sessions execute against.
pub struct Service {
    core: Mutex<Core>,
}

/// One client session (a REPL, one TCP connection, one test thread).
pub struct Session {
    service: Arc<Service>,
    id: u64,
    sink: Arc<dyn EventSink>,
}

const HELP: &str = "\
+fact.                      insert one ground fact
-fact.                      delete one ground fact
+rel[(..), (..)].           bulk insert (one atomic batch / epoch)
-rel[(..), (..)].           bulk delete
?- rel(pattern).            query the current fixpoint (constants bind, _ is a wildcard)
head :- body.               add a rule (also with a leading +)
materialize(rel, keys(..)). declare a table (primary key, optional ttl)
.load \"file\"                load an NDlog program file
.subscribe rel[(pattern)]   live insert/retract deltas, optionally filtered
.unsubscribe <id|rel>       cancel subscriptions
.rel                        list relations with tuple counts
.rules                      show the loaded program
.dump                       every stored tuple with its derivation count
.help                       this text
.quit                       close the session";

impl Service {
    /// A service with an empty program (rules and tables arrive
    /// interactively).
    pub fn new() -> Arc<Self> {
        Self::from_program(&Program::new("session")).expect("empty program always plans")
    }

    /// A service preloaded with a program (its facts are in the initial
    /// fixpoint; the epoch starts at 0). No optimizer rewrites are applied.
    pub fn from_program(program: &Program) -> Result<Arc<Self>, ServeError> {
        Self::from_program_with(program, Pipeline::identity())
    }

    /// A service preloaded with a program, compiled through an optimizer
    /// pipeline. The pipeline is sticky: every later program change (rule
    /// or table addition, `.load`) rebuilds through the same pipeline, so
    /// mid-session additions execute the plans they would have had at load
    /// time.
    pub fn from_program_with(
        program: &Program,
        pipeline: Pipeline,
    ) -> Result<Arc<Self>, ServeError> {
        let optimized = optimize(program, &pipeline)
            .map_err(|e| ServeError::new(format!("optimizer failed: {e}")))?;
        let mut eval = Evaluator::new(&optimized.program).map_err(ServeError::new)?;
        eval.run(Strategy::Pipelined)
            .map_err(|e| ServeError::new(format!("initial fixpoint failed: {e}")))?;
        eval.drain_tap();
        Ok(Arc::new(Service {
            core: Mutex::new(Core {
                program: program.clone(),
                pipeline,
                eval,
                epoch: 0,
                commits: Vec::new(),
                subs: Vec::new(),
                next_sub: 1,
                next_session: 1,
            }),
        }))
    }

    /// A service preloaded from program source text.
    pub fn from_source(src: &str) -> Result<Arc<Self>, ServeError> {
        let program = parse_program(src).map_err(|e| ServeError::new(e.render(src)))?;
        Self::from_program(&program)
    }

    /// Open a session whose live-query events go to `sink`.
    pub fn open_session(self: &Arc<Self>, sink: Arc<dyn EventSink>) -> Session {
        let id = {
            let mut core = self.core.lock().unwrap();
            let id = core.next_session;
            core.next_session += 1;
            id
        };
        Session {
            service: Arc::clone(self),
            id,
            sink,
        }
    }

    /// The current epoch (number of committed batches and program
    /// changes).
    pub fn epoch(&self) -> u64 {
        self.core.lock().unwrap().epoch
    }

    /// The commit log, in commit order.
    pub fn commit_log(&self) -> Vec<CommittedBatch> {
        self.core.lock().unwrap().commits.clone()
    }

    /// Live query subscriptions across all sessions. A connection that
    /// drops mid-session must take its subscriptions with it — this is
    /// the observable for that invariant.
    pub fn subscription_count(&self) -> usize {
        self.core.lock().unwrap().subs.len()
    }

    /// The bitwise store fingerprint: every stored tuple with its
    /// derivation count, sorted. Two services whose fingerprints are equal
    /// hold identical visible stores *including* per-tuple derivation
    /// counts.
    pub fn fingerprint(&self) -> Vec<(String, u64, Tuple)> {
        self.core.lock().unwrap().dump_rows()
    }
}

impl Session {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The service this session executes against.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Parse and execute one line of the interactive dialect. Parse errors
    /// come back rendered with a caret snippet pointing at the offending
    /// token.
    pub fn execute_line(&self, line: &str) -> Result<Response, ServeError> {
        match parse_command(line) {
            Err(e) => Err(ServeError::new(e.render(line))),
            Ok(None) => Ok(Response::Empty),
            Ok(Some(cmd)) => self.execute(cmd),
        }
    }

    /// Execute one parsed command.
    pub fn execute(&self, cmd: Command) -> Result<Response, ServeError> {
        let mut core = self.service.core.lock().unwrap();
        match cmd {
            Command::Update(update) => core.apply_update(self.id, update),
            Command::Query(atom) => core.query(&atom),
            Command::Rule(rule) => core.add_rule(rule),
            Command::Table(decl) => core.add_table(decl),
            Command::Meta(meta) => match meta {
                MetaCommand::Load(path) => core.load_file(&path),
                MetaCommand::Subscribe { relation, filter } => {
                    core.subscribe(self.id, Arc::clone(&self.sink), relation, filter)
                }
                MetaCommand::Unsubscribe(target) => core.unsubscribe(self.id, target),
                MetaCommand::Relations => core.relations(),
                MetaCommand::Rules => core.rules(),
                MetaCommand::Dump => {
                    let rows = core.dump_rows();
                    Ok(Response::Dump {
                        rows,
                        epoch: core.epoch,
                    })
                }
                MetaCommand::Help => Ok(Response::Ok(HELP.to_string())),
                MetaCommand::Quit => {
                    core.drop_session(self.id);
                    Ok(Response::Quit)
                }
            },
        }
    }

    /// Commit a pre-built delta batch (one epoch), bypassing the text
    /// dialect. The concurrency tests and the bench drive the engine this
    /// way; it is exactly what an `Update` command does after parsing.
    pub fn apply_batch(&self, deltas: Vec<TupleDelta>) -> Result<Response, ServeError> {
        self.service.core.lock().unwrap().commit(self.id, deltas)
    }

    /// Close the session: drop its subscriptions.
    pub fn close(&self) {
        self.service.core.lock().unwrap().drop_session(self.id);
    }
}

impl Core {
    fn apply_update(&mut self, session: u64, update: Update) -> Result<Response, ServeError> {
        let deltas: Vec<TupleDelta> = update
            .tuples
            .into_iter()
            .map(|values| {
                let tuple = Tuple::new(values);
                match update.op {
                    Op::Insert => TupleDelta::insert(update.relation.clone(), tuple),
                    Op::Delete => TupleDelta::delete(update.relation.clone(), tuple),
                }
            })
            .collect();
        self.commit(session, deltas)
    }

    fn commit(&mut self, session: u64, deltas: Vec<TupleDelta>) -> Result<Response, ServeError> {
        let n = deltas.len();
        let stats = self
            .eval
            .update_batch(deltas.clone())
            .map_err(|e| ServeError::new(format!("evaluation error: {e}")))?;
        self.epoch += 1;
        self.commits.push(CommittedBatch {
            session,
            epoch: self.epoch,
            deltas,
        });
        self.flush_deltas();
        Ok(Response::Ok(format!(
            "applied {n} update(s); epoch {}; {} derivation(s)",
            self.epoch, stats.derivations
        )))
    }

    /// Route the tap's recorded visibility transitions to the matching
    /// subscribers, in store order. Runs under the engine lock, so every
    /// subscriber sees deltas in commit order.
    fn flush_deltas(&mut self) {
        let events = self.eval.drain_tap();
        if events.is_empty() {
            return;
        }
        for delta in &events {
            for sub in &self.subs {
                if sub.relation == delta.relation && filter_matches(&sub.filter, &delta.tuple) {
                    sub.sink.deliver(&DeltaEvent {
                        subscription: sub.id,
                        epoch: self.epoch,
                        delta: delta.clone(),
                    });
                }
            }
        }
    }

    fn query(&self, atom: &Atom) -> Result<Response, ServeError> {
        let mut rows: Vec<Tuple> = self
            .eval
            .results(&atom.name)
            .into_iter()
            .filter(|t| atom_matches(atom, t))
            .collect();
        rows.sort();
        Ok(Response::Rows {
            relation: atom.name.clone(),
            rows,
            epoch: self.epoch,
        })
    }

    fn add_rule(&mut self, mut rule: Rule) -> Result<Response, ServeError> {
        if rule.label.is_empty() {
            rule.label = self.fresh_rule_label();
        } else if self.program.rule(&rule.label).is_some() {
            return Err(ServeError::new(format!(
                "rule label `{}` is already defined (pick another)",
                rule.label
            )));
        }
        let mut program = self.program.clone();
        program.rules.push(rule.clone());
        self.rebuild(program, format!("added rule {}", rule.label))
    }

    fn add_table(&mut self, decl: TableDecl) -> Result<Response, ServeError> {
        if self.program.table_decl(&decl.name).is_some() {
            return Err(ServeError::new(format!(
                "relation `{}` is already materialized",
                decl.name
            )));
        }
        let name = decl.name.clone();
        let mut program = self.program.clone();
        program.tables.push(decl);
        self.rebuild(program, format!("materialized {name}"))
    }

    fn load_file(&mut self, path: &str) -> Result<Response, ServeError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| ServeError::new(format!("cannot read {path}: {e}")))?;
        let loaded = parse_program(&src)
            .map_err(|e| ServeError::new(format!("{path}: {}", e.render(&src))))?;
        let mut program = self.program.clone();
        for decl in loaded.tables {
            if program.table_decl(&decl.name).is_some() {
                return Err(ServeError::new(format!(
                    "{path}: relation `{}` is already materialized",
                    decl.name
                )));
            }
            program.tables.push(decl);
        }
        let (mut rules, mut facts) = (0usize, 0usize);
        for mut rule in loaded.rules {
            if rule.is_fact() {
                facts += 1;
            } else {
                rules += 1;
            }
            if rule.label.is_empty() || program.rule(&rule.label).is_some() {
                rule.label = fresh_label_in(&program);
            }
            program.rules.push(rule);
        }
        program.queries.extend(loaded.queries);
        self.rebuild(
            program,
            format!("loaded {path}: {rules} rule(s), {facts} fact(s)"),
        )
    }

    fn fresh_rule_label(&self) -> String {
        fresh_label_in(&self.program)
    }

    /// Swap in an extended program: re-run the optimizer pipeline over the
    /// whole extended program (the same entry the initial load used, so a
    /// mid-session rule gets the load-time plan), rebuild a fresh engine,
    /// replay the commit log (incremental == from-scratch, so the store
    /// including derivation counts is exactly as if the program had always
    /// been this one), and send subscribers the net visibility diff.
    fn rebuild(&mut self, program: Program, what: String) -> Result<Response, ServeError> {
        let before = self.subscribed_visible();
        let optimized = optimize(&program, &self.pipeline)
            .map_err(|e| ServeError::new(format!("optimizer failed: {e}")))?;
        let mut eval = Evaluator::new(&optimized.program).map_err(ServeError::new)?;
        let watched: Vec<String> = self.eval.tap().subscribed().map(str::to_string).collect();
        for relation in &watched {
            eval.tap_mut().subscribe(relation.clone());
        }
        eval.run(Strategy::Pipelined)
            .map_err(|e| ServeError::new(format!("fixpoint failed: {e}")))?;
        for batch in &self.commits {
            eval.update_batch(batch.deltas.clone())
                .map_err(|e| ServeError::new(format!("replaying the commit log failed: {e}")))?;
        }
        // The replay's transition noise is not what subscribers should
        // see — the net effect of the program change is the before/after
        // diff, delivered below as one epoch.
        eval.drain_tap();
        self.eval = eval;
        self.program = program;
        self.epoch += 1;
        let after = self.subscribed_visible();
        for (relation, tuple) in before.difference(&after) {
            self.deliver_diff(TupleDelta::delete(relation.clone(), tuple.clone()));
        }
        for (relation, tuple) in after.difference(&before) {
            self.deliver_diff(TupleDelta::insert(relation.clone(), tuple.clone()));
        }
        Ok(Response::Ok(format!("{what}; epoch {}", self.epoch)))
    }

    fn deliver_diff(&self, delta: TupleDelta) {
        for sub in &self.subs {
            if sub.relation == delta.relation && filter_matches(&sub.filter, &delta.tuple) {
                sub.sink.deliver(&DeltaEvent {
                    subscription: sub.id,
                    epoch: self.epoch,
                    delta: delta.clone(),
                });
            }
        }
    }

    fn subscribed_visible(&self) -> BTreeSet<(String, Tuple)> {
        let mut set = BTreeSet::new();
        for relation in self.eval.tap().subscribed() {
            for tuple in self.eval.store().tuples(relation) {
                set.insert((relation.to_string(), tuple));
            }
        }
        set
    }

    fn subscribe(
        &mut self,
        session: u64,
        sink: Arc<dyn EventSink>,
        relation: String,
        filter: Option<SubscribeFilter>,
    ) -> Result<Response, ServeError> {
        if let (Some(filter), Some(sample)) =
            (filter.as_ref(), self.eval.store().tuples(&relation).first())
        {
            if filter.len() != sample.values().len() {
                return Err(ServeError::new(format!(
                    "subscribe pattern has {} column(s) but `{relation}` has {}",
                    filter.len(),
                    sample.values().len()
                )));
            }
        }
        let id = self.next_sub;
        self.next_sub += 1;
        self.eval.tap_mut().subscribe(relation.clone());
        // Snapshot: the relation's current matching contents as insert
        // events at the current epoch, before any live delta.
        let mut snapshot: Vec<Tuple> = self
            .eval
            .store()
            .tuples(&relation)
            .into_iter()
            .filter(|t| filter_matches(&filter, t))
            .collect();
        snapshot.sort();
        let count = snapshot.len();
        for tuple in snapshot {
            sink.deliver(&DeltaEvent {
                subscription: id,
                epoch: self.epoch,
                delta: TupleDelta::insert(relation.clone(), tuple),
            });
        }
        self.subs.push(Subscription {
            id,
            session,
            relation: relation.clone(),
            filter,
            sink,
        });
        Ok(Response::Subscribed {
            id,
            relation,
            snapshot: count,
            epoch: self.epoch,
        })
    }

    fn unsubscribe(
        &mut self,
        session: u64,
        target: UnsubscribeTarget,
    ) -> Result<Response, ServeError> {
        let before = self.subs.len();
        match &target {
            UnsubscribeTarget::Id(id) => {
                self.subs.retain(|s| !(s.session == session && s.id == *id));
            }
            UnsubscribeTarget::Relation(relation) => {
                self.subs
                    .retain(|s| !(s.session == session && &s.relation == relation));
            }
        }
        let removed = before - self.subs.len();
        if removed == 0 {
            return Err(ServeError::new(
                "no matching subscription in this session".to_string(),
            ));
        }
        self.gc_tap();
        Ok(Response::Ok(format!(
            "unsubscribed {removed} subscription(s)"
        )))
    }

    fn drop_session(&mut self, session: u64) {
        self.subs.retain(|s| s.session != session);
        self.gc_tap();
    }

    /// Stop tapping relations nobody subscribes to anymore.
    fn gc_tap(&mut self) {
        let active: BTreeSet<&str> = self.subs.iter().map(|s| s.relation.as_str()).collect();
        let stale: Vec<String> = self
            .eval
            .tap()
            .subscribed()
            .filter(|r| !active.contains(r))
            .map(str::to_string)
            .collect();
        for relation in stale {
            self.eval.tap_mut().unsubscribe(&relation);
        }
    }

    fn relations(&self) -> Result<Response, ServeError> {
        let mut lines: Vec<String> = self
            .eval
            .store()
            .relation_names()
            .map(|name| format!("{name}: {} tuple(s)", self.eval.store().count(name)))
            .collect();
        lines.sort();
        if lines.is_empty() {
            lines.push("(no relations)".to_string());
        }
        Ok(Response::Ok(lines.join("\n")))
    }

    fn rules(&self) -> Result<Response, ServeError> {
        let text = self.program.to_string();
        let trimmed = text.trim();
        Ok(Response::Ok(if trimmed.is_empty() {
            "(empty program)".to_string()
        } else {
            trimmed.to_string()
        }))
    }

    fn dump_rows(&self) -> Vec<(String, u64, Tuple)> {
        let store = self.eval.store();
        let mut rows = Vec::new();
        for name in store.relation_names() {
            if let Some(relation) = store.relation(name) {
                for stored in relation.iter() {
                    rows.push((name.to_string(), stored.count, stored.tuple.clone()));
                }
            }
        }
        rows.sort();
        rows
    }
}

fn fresh_label_in(program: &Program) -> String {
    let mut n = program.rules.len() + 1;
    loop {
        let label = format!("r{n}");
        if program.rule(&label).is_none() {
            return label;
        }
        n += 1;
    }
}

/// Does a tuple match a subscribe filter? `None` matches everything; a
/// pattern matches when every bound column equals the tuple's value (a
/// pattern of the wrong arity matches nothing).
fn filter_matches(filter: &Option<SubscribeFilter>, tuple: &Tuple) -> bool {
    match filter {
        None => true,
        Some(pattern) => {
            pattern.len() == tuple.values().len()
                && pattern
                    .iter()
                    .zip(tuple.values())
                    .all(|(slot, value)| slot.as_ref().is_none_or(|bound| bound == value))
        }
    }
}

/// Does a tuple match a query atom? Constants must equal, variables bind
/// (repeated variables must agree), `_`-prefixed variables are wildcards.
fn atom_matches(atom: &Atom, tuple: &Tuple) -> bool {
    if atom.args.len() != tuple.values().len() {
        return false;
    }
    let mut bindings: BTreeMap<&str, &Value> = BTreeMap::new();
    for (term, value) in atom.args.iter().zip(tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => {
                if v.name.starts_with('_') {
                    continue;
                }
                match bindings.get(v.name.as_str()) {
                    Some(bound) => {
                        if *bound != value {
                            return false;
                        }
                    }
                    None => {
                        bindings.insert(v.name.as_str(), value);
                    }
                }
            }
            Term::Agg(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::programs;
    use ndlog_runtime::Sign;

    fn figure2(service: &Arc<Service>) -> Session {
        let session = service.open_session(Arc::new(NullSink));
        let edges: [(u32, u32, f64); 5] = [
            (0, 1, 5.0),
            (0, 2, 1.0),
            (2, 1, 1.0),
            (1, 3, 1.0),
            (4, 0, 1.0),
        ];
        let mut deltas = Vec::new();
        for (a, b, c) in edges {
            for (s, d) in [(a, b), (b, a)] {
                deltas.push(TupleDelta::insert(
                    "link",
                    Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
                ));
            }
        }
        session.apply_batch(deltas).unwrap();
        session
    }

    #[test]
    fn updates_queries_and_epochs() {
        let service = Service::from_program(&programs::shortest_path("")).unwrap();
        let session = figure2(&service);
        assert_eq!(service.epoch(), 1);

        // Bound query: a's shortest path to b goes via c at cost 2.
        let resp = session
            .execute_line("?- shortestPath(@n0, @n1, P, C).")
            .unwrap();
        let Response::Rows { rows, epoch, .. } = resp else {
            panic!("expected rows, got {resp:?}");
        };
        assert_eq!(epoch, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(3), Some(&Value::Float(2.0)));

        // Wildcards and repeated variables.
        let Response::Rows { rows: all, .. } = session
            .execute_line("?- shortestPath(@n0, _, _, _).")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(all.len(), 4);
        let Response::Rows { rows: none, .. } =
            session.execute_line("?- link(@S, @S, _).").unwrap()
        else {
            panic!()
        };
        assert!(none.is_empty(), "no self-links in figure 2");

        // Text updates advance the epoch.
        let resp = session
            .execute_line("+link[(@n2, @n3, 1.0), (@n3, @n2, 1.0)].")
            .unwrap();
        assert!(matches!(resp, Response::Ok(_)));
        assert_eq!(service.epoch(), 2);
        assert_eq!(service.commit_log().len(), 2);
    }

    #[test]
    fn subscriptions_stream_snapshot_then_exact_deltas() {
        let service = Service::from_program(&programs::shortest_path("")).unwrap();
        let session = figure2(&service);
        let sink = CollectSink::new();
        let watcher = service.open_session(sink.clone());

        let resp = watcher
            .execute_line(".subscribe shortestPath(@n0, _, _, _)")
            .unwrap();
        let Response::Subscribed { id, snapshot, .. } = resp else {
            panic!("expected subscribed, got {resp:?}");
        };
        assert_eq!(snapshot, 4, "a reaches b, c, d, e");
        let events = sink.drain();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.subscription == id
            && e.delta.sign == Sign::Insert
            && e.delta.tuple.get(0) == Some(&Value::addr(0u32))));

        // Deleting the cheap a—c edge reroutes a→b: the watcher sees the
        // retract of the cost-2 route and the insert of the cost-5 one.
        session
            .execute_line("-link[(@n0, @n2, 1.0), (@n2, @n0, 1.0)].")
            .unwrap();
        let churn = sink.drain();
        assert!(churn.iter().any(|e| e.delta.sign == Sign::Delete
            && e.delta.tuple.get(1) == Some(&Value::addr(1u32))
            && e.delta.tuple.get(3) == Some(&Value::Float(2.0))));
        assert!(churn.iter().any(|e| e.delta.sign == Sign::Insert
            && e.delta.tuple.get(1) == Some(&Value::addr(1u32))
            && e.delta.tuple.get(3) == Some(&Value::Float(5.0))));
        // The filter holds: only @n0-rooted tuples were delivered.
        assert!(churn
            .iter()
            .all(|e| e.delta.tuple.get(0) == Some(&Value::addr(0u32))));

        // Unsubscribing stops the stream and GCs the tap.
        watcher.execute_line(".unsubscribe shortestPath").unwrap();
        session
            .execute_line("+link[(@n0, @n2, 1.0), (@n2, @n0, 1.0)].")
            .unwrap();
        assert!(sink.drain().is_empty());
        assert!(watcher.execute_line(".unsubscribe 99").is_err());
    }

    #[test]
    fn interactive_program_growth_replays_the_commit_log() {
        let service = Service::new();
        let session = service.open_session(Arc::new(NullSink));
        let sink = CollectSink::new();
        let watcher = service.open_session(sink.clone());

        session
            .execute_line("materialize(edge, keys(1,2)).")
            .unwrap();
        session.execute_line("+edge[(1,2), (2,3), (3,4)].").unwrap();
        watcher.execute_line(".subscribe reach").unwrap();
        assert!(sink.drain().is_empty(), "reach does not exist yet");

        // Adding rules *after* the data arrived must behave as if they had
        // always been there (rebuild + commit-log replay), and the watcher
        // gets the net diff.
        session.execute_line("reach(A,B) :- edge(A,B).").unwrap();
        session
            .execute_line("reach(A,C) :- edge(A,B), reach(B,C).")
            .unwrap();
        let events = sink.drain();
        assert_eq!(
            events.len(),
            6,
            "3 direct + 3 transitive reach tuples, inserts only: {events:?}"
        );
        assert!(events.iter().all(|e| e.delta.sign == Sign::Insert));

        let Response::Rows { rows, .. } = session.execute_line("?- reach(1, _).").unwrap() else {
            panic!()
        };
        assert_eq!(rows.len(), 3);

        // Deleting a base edge retracts the affected closure exactly.
        session.execute_line("-edge(1,2).").unwrap();
        let retracts = sink.drain();
        assert_eq!(retracts.len(), 3, "1→2, 1→3, 1→4 all go: {retracts:?}");
        assert!(retracts.iter().all(|e| e.delta.sign == Sign::Delete));

        // Duplicate labels and tables are rejected.
        assert!(session
            .execute_line("materialize(edge, keys(1,2)).")
            .is_err());
        session
            .execute_line("mine reach2(A,B) :- edge(A,B).")
            .unwrap();
        assert!(session
            .execute_line("mine reach3(A,B) :- edge(A,B).")
            .is_err());
    }

    #[test]
    fn dump_and_fingerprint_agree() {
        let service = Service::from_program(&programs::shortest_path("")).unwrap();
        let session = figure2(&service);
        let Response::Dump { rows, epoch } = session.execute_line(".dump").unwrap() else {
            panic!()
        };
        assert_eq!(epoch, 1);
        assert_eq!(rows, service.fingerprint());
        assert!(rows.iter().any(|(rel, _, _)| rel == "shortestPath"));
        // Ten links, each inserted once.
        assert_eq!(
            rows.iter()
                .filter(|(rel, count, _)| rel == "link" && *count == 1)
                .count(),
            10
        );
    }

    #[test]
    fn rules_added_mid_session_match_load_time_optimization() {
        use ndlog_lang::reorder::BodyOrder;

        // A pipeline that actually rewrites the program: bodies are
        // normalized link-last, so the shortest-path rules plan with a
        // different join order than as written.
        let pipeline = || Pipeline::new(Vec::new(), Some(BodyOrder::LinkLast));
        let full = programs::shortest_path("");

        // Service A: the whole program compiled through the pipeline at
        // load time.
        let at_load = Service::from_program_with(&full, pipeline()).unwrap();
        let a_session = figure2(&at_load);
        let a_sink = CollectSink::new();
        let a_watcher = at_load.open_session(a_sink.clone());
        a_watcher.execute_line(".subscribe shortestPath").unwrap();

        // Service B: same pipeline but only the table declarations at load
        // time; data arrives, a watcher subscribes, and the rules are added
        // mid-session one at a time (each add rebuilds through the same
        // pipeline).
        let mut base = full.clone();
        base.rules.clear();
        let mid_session = Service::from_program_with(&base, pipeline()).unwrap();
        let b_session = figure2(&mid_session);
        let b_sink = CollectSink::new();
        let b_watcher = mid_session.open_session(b_sink.clone());
        b_watcher.execute_line(".subscribe shortestPath").unwrap();
        assert!(b_sink.drain().is_empty(), "no rules yet, nothing derived");
        for rule in &full.rules {
            b_session.execute(Command::Rule(rule.clone())).unwrap();
        }

        // The subscribed sessions saw identical deltas: A's snapshot (the
        // load-time fixpoint) equals the net diff B received from the
        // mid-session additions.
        let key = |e: &DeltaEvent| {
            (
                e.delta.relation.clone(),
                e.delta.sign == Sign::Insert,
                e.delta.tuple.clone(),
            )
        };
        let mut a_events: Vec<_> = a_sink.drain().iter().map(key).collect();
        let mut b_events: Vec<_> = b_sink.drain().iter().map(key).collect();
        a_events.sort();
        b_events.sort();
        assert!(!a_events.is_empty());
        assert_eq!(a_events, b_events);

        // And the stores are bitwise identical, derivation counts included.
        assert_eq!(at_load.fingerprint(), mid_session.fingerprint());

        // Further updates keep agreeing: both engines run the same plans.
        a_session.execute_line("-link(@n0, @n2, 1.0).").unwrap();
        b_session.execute_line("-link(@n0, @n2, 1.0).").unwrap();
        let mut a_churn: Vec<_> = a_sink.drain().iter().map(key).collect();
        let mut b_churn: Vec<_> = b_sink.drain().iter().map(key).collect();
        a_churn.sort();
        b_churn.sort();
        assert!(!a_churn.is_empty());
        assert_eq!(a_churn, b_churn);
    }

    #[test]
    fn parse_errors_render_caret_snippets() {
        let service = Service::new();
        let session = service.open_session(Arc::new(NullSink));
        let err = session.execute_line("+link(@n0 @n1).").unwrap_err();
        assert!(err.to_string().contains('^'), "{err}");
        assert!(matches!(
            session.execute_line("   % comment only").unwrap(),
            Response::Empty
        ));
        let help = session.execute_line(".help").unwrap();
        let Response::Ok(text) = help else { panic!() };
        assert!(text.contains(".subscribe"));
    }
}
