//! Offline stand-in for the `serde` facade crate.
//!
//! The workspace builds in environments without a reachable crates
//! registry, so `serde = { package = "ndlog-compat-serde", ... }` aliases
//! this crate to the upstream name. It preserves source compatibility for
//! the subset the codebase uses — `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` — without implementing any
//! serialization:
//!
//! * `Serialize` / `Deserialize` are empty marker traits with blanket
//!   implementations, so any bound of the form `T: Serialize` holds;
//! * the derive macros (re-exported from `ndlog-compat-serde-derive`)
//!   expand to nothing.
//!
//! Replacing this with the real serde is a one-line edit to the workspace
//! `[workspace.dependencies]` table; no source file needs to change.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

pub use ndlog_compat_serde_derive::{Deserialize, Serialize};
