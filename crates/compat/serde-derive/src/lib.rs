//! No-op derive macros for the offline `serde` stand-in.
//!
//! The companion crate (`ndlog-compat-serde`, aliased to `serde` in the
//! workspace) provides blanket implementations of its marker `Serialize` /
//! `Deserialize` traits, so the derive macros have nothing to generate:
//! they accept the item (including any `#[serde(...)]` helper attributes)
//! and emit an empty token stream. This keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree source-compatible with
//! the real serde while requiring no network access to build.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
