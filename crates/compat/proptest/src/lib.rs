//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the API subset the workspace's property tests use, with the
//! same surface syntax so the test files compile unchanged against either
//! this stand-in or the real crate:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and
//!   `prop_filter`;
//! * strategies for half-open / inclusive integer ranges, tuples (arity
//!   2–4), booleans ([`bool::ANY`]) and vectors
//!   ([`collection::vec`]);
//! * the [`proptest!`] macro (including the inner
//!   `#![proptest_config(...)]` attribute), [`prop_assert!`] and
//!   [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name), and there is **no shrinking** — on failure the harness prints
//! the generated inputs verbatim and re-raises the panic. That keeps
//! failures reproducible and debuggable without proptest's machinery or
//! any network access at build time.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// A generator for one case of one named test: the seed mixes an FNV
    /// hash of the test name with the case number, so every test gets an
    /// independent, stable stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash ^ (u64::from(case) << 32) ^ u64::from(case))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Stand-in for `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate an intermediate value, build a second strategy from it, and
    /// generate from that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Reject generated values for which `f` returns false (bounded retry).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason: reason.into(),
            f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.base.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 candidates in a row",
            self.reason
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = self.end().abs_diff(*self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

pub mod bool {
    //! Boolean strategies.

    /// Strategy generating uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Stand-in for `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut super::TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy generating vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert inside a property (delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (delegates to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests. Supports the real crate's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(test_name, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str("; ");
                    )+
                    s
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || { $body }
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "[proptest stand-in] {test_name} failed at case {case} with inputs: {inputs}"
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (2u32..=5).generate(&mut rng);
            assert!((2..=5).contains(&y));
            let v = prop::collection::vec(0i64..4, 1..=6).generate(&mut rng);
            assert!((1..=6).contains(&v.len()));
            assert!(v.iter().all(|&e| (0..4).contains(&e)));
        }
    }

    #[test]
    fn filter_and_flat_map_compose() {
        let strat = (2u32..=6).prop_flat_map(|n| {
            prop::collection::vec((0..n, 0..n).prop_filter("distinct", |(a, b)| a != b), 1..=4)
        });
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let pairs = strat.generate(&mut rng);
            assert!(!pairs.is_empty() && pairs.len() <= 4);
            assert!(pairs.iter().all(|(a, b)| a != b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..10, flag in prop::bool::ANY) {
            prop_assert!(x < 10);
            let _ = flag;
        }
    }
}
