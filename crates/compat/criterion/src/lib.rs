//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Covers the API subset the bench crate uses — [`Criterion`],
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the per-iteration median,
//! minimum and mean to stdout. Benches therefore still *run* and report
//! usable relative numbers (the perf-trajectory use case) without any
//! external dependency.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (stand-in for
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration for each completed measurement call.
    samples: Vec<f64>,
    /// Target duration of one `iter` measurement window.
    window: Duration,
}

impl Bencher {
    /// Measure `f`, running it enough times to fill the sampling window,
    /// and record the mean nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up / calibration: one untimed run.
        black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.window || iters >= 1 << 20 {
                self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters = (iters * 4).min(1 << 20);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// this harness defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Shrink or grow the per-sample measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.window = window;
        self
    }

    /// Run one benchmark and print its summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            window: self.criterion.window,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut sorted = bencher.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return self;
        }
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{}/{id}: median {} min {} mean {} ({} samples)",
            self.name,
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
            sorted.len()
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Define a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            let _ = std::env::args();
            $($group();)+
        }
    };
}
