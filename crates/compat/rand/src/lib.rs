//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! Aliased to the upstream name via the workspace dependency table, this
//! crate covers exactly what the simulator and experiment harness use:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`];
//! * [`Rng::random_range`] over half-open integer and float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is SplitMix64: deterministic given a seed, statistically
//! solid for simulation workloads, and tiny. It is **not** the upstream
//! StdRng stream, so experiments seeded identically produce different (but
//! equally deterministic and reproducible) topologies than they would with
//! the real crate.

use std::ops::Range;

/// Types that can be sampled uniformly by [`Rng::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add((rng.next_u64() % u64::from(span)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, i8, i16, i32);

macro_rules! wide_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = if span == 0 {
                    // Full-width range: every bit pattern is in range.
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

wide_sample_range!(u64, usize, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// Stand-in for `rand::Rng`.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (0.0..1.0).sample(self)
    }

    /// A random boolean with probability `p` of being true.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_f64() < p
    }
}

/// Stand-in for `rand::SeedableRng` (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// Stand-in for `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(0..17usize);
            assert!(x < 17);
            let f = rng.random_range(1.0..100.0);
            assert!((1.0..100.0).contains(&f));
            let n = rng.random_range(-0.1..0.1);
            assert!((-0.1..0.1).contains(&n));
            let s = rng.random_range(3u32..9);
            assert!((3..9).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
