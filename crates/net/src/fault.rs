//! Deterministic fault injection for the simulator.
//!
//! The paper's robustness story (Section 4.2) is that declarative networks
//! built on soft state absorb loss, churn and failure: lost messages are
//! repaired by the next periodic refresh, and crashed nodes repopulate
//! their state on rejoin. To exercise that story the simulator accepts a
//! [`FaultPlan`]: per-link loss probability, delay jitter, duplication,
//! scheduled partitions and node crash/rejoin waves.
//!
//! # Determinism contract
//!
//! Every *random* fault decision (drop? how much jitter? duplicate?) is
//! drawn from a fresh generator seeded by hashing the plan seed with the
//! `(time, seq, link)` key of the message being sent — not from a shared
//! stream. Two consequences:
//!
//! * **Replayable**: the same plan over the same run produces the same
//!   faults, bit for bit.
//! * **Thread-count invariant**: the parallel epoch executor replays sends
//!   serially in `(time, seq)` order (see `ndlog_core::exec`), so the key
//!   — and therefore every fault decision — is identical at 1, 2 or 4
//!   worker threads. A shared stream would instead depend on the order
//!   decisions were *computed*, which parallel execution does not fix.
//!
//! Partitions and crash windows are scheduled (non-random) and simply
//! compared against simulation time, so they are trivially deterministic.

use crate::address::NodeAddr;
use crate::sim::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Random fault parameters for one directed link (or, as
/// [`FaultPlan::default_faults`], for every link without an override).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a message is dropped in flight.
    pub loss: f64,
    /// Probability in `[0, 1]` that a delivered message arrives twice.
    pub duplicate: f64,
    /// Maximum extra delivery delay in milliseconds; each delivered
    /// message draws uniformly from `[0, jitter_ms)`. Jitter only ever
    /// *adds* delay, so the epoch executor's conservative lookahead bound
    /// (the minimum link propagation delay) remains safe.
    pub jitter_ms: f64,
}

impl LinkFaults {
    /// No faults at all.
    pub const NONE: LinkFaults = LinkFaults {
        loss: 0.0,
        duplicate: 0.0,
        jitter_ms: 0.0,
    };

    /// Whether this configuration injects nothing.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.jitter_ms == 0.0
    }

    fn validate(&self, what: &str) -> Result<(), String> {
        for (name, p) in [("loss", self.loss), ("duplicate", self.duplicate)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{what}: {name} probability {p} not in [0, 1]"));
            }
        }
        if !self.jitter_ms.is_finite() || self.jitter_ms < 0.0 {
            return Err(format!("{what}: jitter {} ms is negative", self.jitter_ms));
        }
        Ok(())
    }
}

/// A scheduled network partition: during `[start, end)` every message
/// crossing the cut between `side_a` and its complement is dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// When the partition begins.
    pub start: SimTime,
    /// When the partition heals (exclusive).
    pub end: SimTime,
    /// One side of the cut; every node not listed is on the other side.
    pub side_a: BTreeSet<NodeAddr>,
}

impl Partition {
    /// Whether a message sent at `now` from `from` to `to` crosses the cut
    /// while the partition is active.
    pub fn blocks(&self, now: SimTime, from: NodeAddr, to: NodeAddr) -> bool {
        now >= self.start
            && now < self.end
            && (self.side_a.contains(&from) != self.side_a.contains(&to))
    }
}

/// A scheduled node crash and its mandatory rejoin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Crash {
    /// The node that crashes.
    pub node: NodeAddr,
    /// When it crashes (loses all soft state; deliveries are dropped).
    pub at: SimTime,
    /// When it rejoins, empty-handed, and starts repopulating from
    /// refreshes. Must be strictly after `at`.
    pub rejoin_at: SimTime,
}

impl Crash {
    /// Whether the node is down at time `t`.
    pub fn down_at(&self, t: SimTime) -> bool {
        t >= self.at && t < self.rejoin_at
    }
}

/// A complete, validated fault schedule for a simulation run.
///
/// Construct with [`FaultPlan::new`] and the `with_*` builders, then attach
/// via `Simulator::set_fault_plan` (which validates). Random faults
/// (loss/jitter/duplication) apply only while `now < active_until`, so a
/// run always has a fault-free tail in which refresh cycles can finish
/// healing and the convergence oracle can be checked. Partitions and
/// crashes apply exactly in their scheduled windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed hashed into every per-message fault decision.
    pub seed: u64,
    /// Faults applied to links without an override.
    pub default_faults: LinkFaults,
    /// Per-directed-link overrides.
    pub overrides: Vec<((NodeAddr, NodeAddr), LinkFaults)>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/rejoin windows.
    pub crashes: Vec<Crash>,
    /// Random faults stop at this time (exclusive); scheduled windows are
    /// unaffected.
    pub active_until: SimTime,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_faults: LinkFaults::NONE,
            overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            active_until: SimTime::MAX,
        }
    }

    /// Set the default per-link faults.
    pub fn with_default_faults(mut self, faults: LinkFaults) -> Self {
        self.default_faults = faults;
        self
    }

    /// Override the faults of one directed link.
    pub fn with_link(mut self, from: NodeAddr, to: NodeAddr, faults: LinkFaults) -> Self {
        self.overrides.push(((from, to), faults));
        self
    }

    /// Add a scheduled partition cutting `side_a` from everything else
    /// during `[start, end)`.
    pub fn with_partition(
        mut self,
        start: SimTime,
        end: SimTime,
        side_a: impl IntoIterator<Item = NodeAddr>,
    ) -> Self {
        self.partitions.push(Partition {
            start,
            end,
            side_a: side_a.into_iter().collect(),
        });
        self
    }

    /// Add a crash/rejoin window for a node.
    pub fn with_crash(mut self, node: NodeAddr, at: SimTime, rejoin_at: SimTime) -> Self {
        self.crashes.push(Crash {
            node,
            at,
            rejoin_at,
        });
        self
    }

    /// Stop drawing random faults at `t` (scheduled windows still apply).
    pub fn with_active_until(mut self, t: SimTime) -> Self {
        self.active_until = t;
        self
    }

    /// Check the plan for internal consistency: probabilities in range,
    /// partition windows non-empty, and — the soft-state contract — every
    /// crash must rejoin (a node that never comes back would leave the
    /// surviving topology ill-defined for the convergence oracle).
    pub fn validate(&self) -> Result<(), String> {
        self.default_faults.validate("default faults")?;
        for ((from, to), f) in &self.overrides {
            f.validate(&format!("link {from} -> {to}"))?;
        }
        for p in &self.partitions {
            if p.start >= p.end {
                return Err(format!(
                    "partition window [{}, {}) is empty",
                    p.start, p.end
                ));
            }
        }
        for c in &self.crashes {
            if c.rejoin_at <= c.at {
                return Err(format!(
                    "node {} crashes at {} but never rejoins (rejoin_at {})",
                    c.node, c.at, c.rejoin_at
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.default_faults.is_none()
            && self.overrides.iter().all(|(_, f)| f.is_none())
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// The faults in force on one directed link (last matching override
    /// wins; otherwise the default).
    pub fn link_faults(&self, from: NodeAddr, to: NodeAddr) -> LinkFaults {
        self.overrides
            .iter()
            .rev()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, faults)| *faults)
            .unwrap_or(self.default_faults)
    }

    /// Whether `node` is inside any crash window at time `t`.
    pub fn node_down_at(&self, node: NodeAddr, t: SimTime) -> bool {
        self.crashes.iter().any(|c| c.node == node && c.down_at(t))
    }

    /// Whether any active partition cuts the `from -> to` link at `now`.
    pub fn partition_blocks(&self, now: SimTime, from: NodeAddr, to: NodeAddr) -> bool {
        self.partitions.iter().any(|p| p.blocks(now, from, to))
    }

    /// Number of partitions whose window has fully elapsed by `now`.
    pub fn partitions_healed_by(&self, now: SimTime) -> u64 {
        self.partitions.iter().filter(|p| p.end <= now).count() as u64
    }

    /// The latest scheduled event in the plan: the end of the last
    /// partition or rejoin window (random faults have no schedule of their
    /// own). Drivers size their refresh horizon past this.
    pub fn last_scheduled_event(&self) -> SimTime {
        let p = self.partitions.iter().map(|p| p.end).max().unwrap_or(0);
        let c = self.crashes.iter().map(|c| c.rejoin_at).max().unwrap_or(0);
        p.max(c)
    }

    /// The per-message decision generator, keyed by `(time, seq, link)`
    /// and the plan seed. Independent of any shared stream — see the
    /// module docs for why this is what makes fault runs thread-count
    /// invariant.
    pub fn decision_rng(&self, time: SimTime, seq: u64, from: NodeAddr, to: NodeAddr) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, time, seq, from.0 as u64, to.0 as u64))
    }
}

/// Hash the decision key into a 64-bit seed (a SplitMix64-style finalizer
/// folded over the key components).
fn mix(seed: u64, time: u64, seq: u64, from: u64, to: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for v in [time, seq, from, to] {
        h ^= v.wrapping_mul(0xff51_afd7_ed55_8ccd).rotate_left(31);
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 29;
    }
    h
}

/// Counts of injected faults, surfaced next to `NetStats` /
/// `DeliveryStats`. The simulator fills the injection counters; the
/// engine's fault report adds the healing side (refresh repairs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped for any reason (loss, partition or crash window).
    pub dropped: u64,
    /// Of `dropped`: random loss draws.
    pub loss_drops: u64,
    /// Of `dropped`: messages cut by an active partition.
    pub partition_drops: u64,
    /// Of `dropped`: messages whose receiver was down on arrival.
    pub crash_drops: u64,
    /// Extra copies delivered by duplication draws.
    pub duplicated: u64,
    /// Messages that drew nonzero jitter.
    pub delayed: u64,
    /// Partitions whose scheduled window has fully elapsed.
    pub partitions_healed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeAddr {
        NodeAddr(i)
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        plan.validate().unwrap();
        assert!(plan.link_faults(n(0), n(1)).is_none());
        assert!(!plan.node_down_at(n(0), 0));
        assert!(!plan.partition_blocks(0, n(0), n(1)));
    }

    #[test]
    fn overrides_shadow_the_default() {
        let plan = FaultPlan::new(1)
            .with_default_faults(LinkFaults {
                loss: 0.1,
                ..LinkFaults::NONE
            })
            .with_link(
                n(0),
                n(1),
                LinkFaults {
                    loss: 0.5,
                    ..LinkFaults::NONE
                },
            );
        assert_eq!(plan.link_faults(n(0), n(1)).loss, 0.5);
        assert_eq!(plan.link_faults(n(1), n(0)).loss, 0.1);
    }

    #[test]
    fn partitions_cut_only_crossing_messages_in_window() {
        let plan = FaultPlan::new(1).with_partition(100, 200, [n(0), n(1)]);
        // Crossing, in window.
        assert!(plan.partition_blocks(100, n(0), n(2)));
        assert!(plan.partition_blocks(199, n(2), n(1)));
        // Same side.
        assert!(!plan.partition_blocks(150, n(0), n(1)));
        assert!(!plan.partition_blocks(150, n(2), n(3)));
        // Out of window (end is exclusive).
        assert!(!plan.partition_blocks(99, n(0), n(2)));
        assert!(!plan.partition_blocks(200, n(0), n(2)));
        assert_eq!(plan.partitions_healed_by(199), 0);
        assert_eq!(plan.partitions_healed_by(200), 1);
    }

    #[test]
    fn crash_windows_are_half_open() {
        let plan = FaultPlan::new(1).with_crash(n(3), 50, 80);
        assert!(!plan.node_down_at(n(3), 49));
        assert!(plan.node_down_at(n(3), 50));
        assert!(plan.node_down_at(n(3), 79));
        assert!(!plan.node_down_at(n(3), 80));
        assert!(!plan.node_down_at(n(2), 60));
        assert_eq!(plan.last_scheduled_event(), 80);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::new(1)
            .with_default_faults(LinkFaults {
                loss: 1.5,
                ..LinkFaults::NONE
            })
            .validate()
            .is_err());
        assert!(FaultPlan::new(1)
            .with_partition(10, 10, [n(0)])
            .validate()
            .is_err());
        // A crash that never rejoins is invalid: soft state can only heal
        // nodes that come back.
        assert!(FaultPlan::new(1).with_crash(n(0), 5, 5).validate().is_err());
        FaultPlan::new(1)
            .with_crash(n(0), 5, 6)
            .with_partition(10, 11, [n(0)])
            .validate()
            .unwrap();
    }

    #[test]
    fn decision_rng_is_keyed_not_streamed() {
        use rand::Rng;
        let plan = FaultPlan::new(42);
        let draw = |time, seq, from, to| plan.decision_rng(time, seq, n(from), n(to)).next_u64();
        // Same key, same draw — regardless of how many other draws happened.
        assert_eq!(draw(10, 3, 0, 1), draw(10, 3, 0, 1));
        // Any component changing changes the draw.
        assert_ne!(draw(10, 3, 0, 1), draw(11, 3, 0, 1));
        assert_ne!(draw(10, 3, 0, 1), draw(10, 4, 0, 1));
        assert_ne!(draw(10, 3, 0, 1), draw(10, 3, 1, 0));
        // And a different plan seed shifts everything.
        let other = FaultPlan::new(43);
        assert_ne!(
            draw(10, 3, 0, 1),
            other.decision_rng(10, 3, n(0), n(1)).next_u64()
        );
    }
}
