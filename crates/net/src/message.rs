//! Messages exchanged between nodes in the simulated network.

use crate::address::NodeAddr;
use serde::{Deserialize, Serialize};

/// Marker trait for payload types the simulator can carry.
///
/// Any clonable type works; the blanket impl keeps call sites tidy.
pub trait Payload: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> Payload for T {}

/// A message in flight (or delivered) between two directly connected nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message<P> {
    /// Sending node.
    pub from: NodeAddr,
    /// Receiving node. Must be a (overlay) link neighbor of `from`; the
    /// declarative networking engine only ever sends along links, which is
    /// exactly the guarantee provided by link-restricted rules.
    pub to: NodeAddr,
    /// Size on the wire, in bytes, used for bandwidth accounting and for
    /// the transmission-delay component of delivery latency.
    pub bytes: usize,
    /// The application payload (e.g. a batch of NDlog tuples).
    pub payload: P,
}

impl<P> Message<P> {
    /// Construct a message.
    pub fn new(from: NodeAddr, to: NodeAddr, bytes: usize, payload: P) -> Self {
        Message {
            from,
            to,
            bytes,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_construction() {
        let m = Message::new(NodeAddr(1), NodeAddr(2), 64, "hello".to_string());
        assert_eq!(m.from, NodeAddr(1));
        assert_eq!(m.to, NodeAddr(2));
        assert_eq!(m.bytes, 64);
        assert_eq!(m.payload, "hello");
    }
}
