//! Network substrate for the declarative networking engine.
//!
//! This crate stands in for the physical infrastructure used in the paper's
//! evaluation (100 machines on the Emulab testbed over GT-ITM transit-stub
//! topologies). It provides:
//!
//! * [`NodeAddr`] — network addresses used as NDlog location specifiers.
//! * [`Topology`] — an undirected, weighted network graph with per-link
//!   latency, reliability, bandwidth and a random metric.
//! * [`gtitm`] — a transit-stub topology generator with the paper's
//!   parameters (4 transit nodes, 3 stubs per transit node, 8 nodes per
//!   stub, 50 ms / 10 ms / 2 ms latencies, 10 Mbps links).
//! * [`overlay`] — overlay construction: each overlay node picks `k` random
//!   neighbors and derives link metrics from the underlying topology.
//! * [`sim`] — a deterministic discrete-event simulator with per-link FIFO
//!   delivery (the precondition of Theorem 4) and latency modelling.
//! * [`stats`] — communication accounting: per-node bandwidth time series,
//!   aggregate transfer volume and convergence bookkeeping, matching the
//!   metrics reported in Section 6 of the paper.
//!
//! * [`fault`] — deterministic fault injection: a [`FaultPlan`] attached
//!   to the simulator applies per-link loss, delay jitter, duplication,
//!   scheduled partitions and node crash/rejoin waves. Every random
//!   decision is drawn from a generator seeded by `(plan seed, time, seq,
//!   link)` — keyed, not streamed — so fault runs are replayable from the
//!   seed and bit-identical across executor thread counts; see the module
//!   docs for the full determinism contract.
//!
//! The simulator is deterministic given a seed, which makes every
//! experiment in `ndlog-bench` repeatable bit-for-bit. Events can be
//! consumed one at a time ([`sim::Simulator::next_event`]) or drained in
//! *epochs* ([`sim::Simulator::drain_epoch`]): all events sharing the next
//! timestamp, or within a conservative lookahead window bounded by the
//! minimum link propagation delay ([`sim::Simulator::min_link_delay`]).
//! Epochs are what the parallel executor in `ndlog-core::exec` shards
//! across worker threads; each drained event carries its `(time, seq)` key
//! so concurrently computed effects can be merged back into exactly the
//! sequential order, keeping multi-threaded runs bit-for-bit identical to
//! single-threaded ones.

pub mod address;
pub mod fault;
pub mod gtitm;
pub mod message;
pub mod overlay;
pub mod sim;
pub mod stats;
pub mod topology;

pub use address::NodeAddr;
pub use fault::{Crash, FaultPlan, FaultStats, LinkFaults, Partition};
pub use message::{Message, Payload};
pub use overlay::{Overlay, OverlayConfig, OverlayLink};
pub use sim::{Event, EventKind, SimConfig, SimTime, Simulator, TimedEvent};
pub use stats::{BandwidthSeries, NetStats};
pub use topology::{LinkMetrics, Topology, TopologyError};
