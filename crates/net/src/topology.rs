//! Network topologies: undirected weighted graphs with per-link metrics.
//!
//! A [`Topology`] models the *underlying* physical network (what GT-ITM
//! generates in the paper) as well as overlay graphs built on top of it.
//! Links are bidirectional, matching the paper's assumption (Section 2.1);
//! the topology stores one [`LinkMetrics`] record per unordered node pair and
//! exposes it in both directions.

use crate::address::NodeAddr;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Metrics attached to a network link.
///
/// These are the link attributes used by the paper's four shortest-path
/// query variants: hop count (implicitly 1 per link), latency, reliability
/// (modelled as a loss-derived cost correlated with latency) and a random
/// metric that is uncorrelated with latency (the paper's stress case).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// One-way propagation latency in milliseconds.
    pub latency_ms: f64,
    /// Reliability cost (higher is worse); correlated with latency.
    pub reliability: f64,
    /// A uniformly random cost, uncorrelated with latency.
    pub random: f64,
    /// Link capacity in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkMetrics {
    /// A uniform default link: 1 ms latency, 10 Mbps.
    pub fn uniform() -> Self {
        LinkMetrics {
            latency_ms: 1.0,
            reliability: 1.0,
            random: 1.0,
            bandwidth_bps: 10_000_000.0,
        }
    }

    /// Retrieve a metric by [`Metric`] selector.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::HopCount => 1.0,
            Metric::Latency => self.latency_ms,
            Metric::Reliability => self.reliability,
            Metric::Random => self.random,
        }
    }
}

/// Which link metric a query minimizes. Labels match the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Every link costs 1.
    HopCount,
    /// Link latency in milliseconds.
    Latency,
    /// Loss-derived reliability cost.
    Reliability,
    /// A random cost uncorrelated with latency (the paper's stress case).
    Random,
}

impl Metric {
    /// All four metrics in the order the paper lists them.
    pub const ALL: [Metric; 4] = [
        Metric::HopCount,
        Metric::Latency,
        Metric::Reliability,
        Metric::Random,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::HopCount => "Hop-Count",
            Metric::Latency => "Latency",
            Metric::Reliability => "Reliability",
            Metric::Random => "Random",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The referenced node does not exist.
    UnknownNode(NodeAddr),
    /// A link was added between a node and itself.
    SelfLoop(NodeAddr),
    /// The link already exists.
    DuplicateLink(NodeAddr, NodeAddr),
    /// The link does not exist.
    NoSuchLink(NodeAddr, NodeAddr),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a} <-> {b}"),
            TopologyError::NoSuchLink(a, b) => write!(f, "no link {a} <-> {b}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected network graph with per-link metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    node_count: u32,
    /// Adjacency: node -> sorted neighbor set.
    adjacency: BTreeMap<NodeAddr, BTreeSet<NodeAddr>>,
    /// Link metrics keyed by the canonical (min, max) node pair.
    links: BTreeMap<(NodeAddr, NodeAddr), LinkMetrics>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a topology with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut t = Self::new();
        for _ in 0..n {
            t.add_node();
        }
        t
    }

    /// Add a new node, returning its address.
    pub fn add_node(&mut self) -> NodeAddr {
        let addr = NodeAddr(self.node_count);
        self.node_count += 1;
        self.adjacency.entry(addr).or_default();
        addr
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Number of (undirected) links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterator over node addresses.
    pub fn nodes(&self) -> impl Iterator<Item = NodeAddr> + '_ {
        (0..self.node_count).map(NodeAddr)
    }

    /// Whether the node exists.
    pub fn contains(&self, node: NodeAddr) -> bool {
        node.0 < self.node_count
    }

    fn canonical(a: NodeAddr, b: NodeAddr) -> (NodeAddr, NodeAddr) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Add a bidirectional link between `a` and `b`.
    pub fn add_link(
        &mut self,
        a: NodeAddr,
        b: NodeAddr,
        metrics: LinkMetrics,
    ) -> Result<(), TopologyError> {
        if !self.contains(a) {
            return Err(TopologyError::UnknownNode(a));
        }
        if !self.contains(b) {
            return Err(TopologyError::UnknownNode(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        let key = Self::canonical(a, b);
        if self.links.contains_key(&key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        self.links.insert(key, metrics);
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        Ok(())
    }

    /// Remove the link between `a` and `b`.
    pub fn remove_link(&mut self, a: NodeAddr, b: NodeAddr) -> Result<LinkMetrics, TopologyError> {
        let key = Self::canonical(a, b);
        let m = self
            .links
            .remove(&key)
            .ok_or(TopologyError::NoSuchLink(a, b))?;
        if let Some(s) = self.adjacency.get_mut(&a) {
            s.remove(&b);
        }
        if let Some(s) = self.adjacency.get_mut(&b) {
            s.remove(&a);
        }
        Ok(m)
    }

    /// Metrics of the link between `a` and `b`, if it exists.
    pub fn link(&self, a: NodeAddr, b: NodeAddr) -> Option<&LinkMetrics> {
        self.links.get(&Self::canonical(a, b))
    }

    /// Mutable metrics of the link between `a` and `b`, if it exists.
    pub fn link_mut(&mut self, a: NodeAddr, b: NodeAddr) -> Option<&mut LinkMetrics> {
        self.links.get_mut(&Self::canonical(a, b))
    }

    /// Whether a link between `a` and `b` exists.
    pub fn has_link(&self, a: NodeAddr, b: NodeAddr) -> bool {
        self.links.contains_key(&Self::canonical(a, b))
    }

    /// Neighbors of a node (empty iterator for unknown nodes).
    pub fn neighbors(&self, node: NodeAddr) -> impl Iterator<Item = NodeAddr> + '_ {
        self.adjacency
            .get(&node)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Degree (number of neighbors) of a node.
    pub fn degree(&self, node: NodeAddr) -> usize {
        self.adjacency.get(&node).map_or(0, |s| s.len())
    }

    /// All links as `(a, b, metrics)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (NodeAddr, NodeAddr, &LinkMetrics)> + '_ {
        self.links.iter().map(|(&(a, b), m)| (a, b, m))
    }

    /// Whether the graph is connected (empty graphs are connected).
    pub fn is_connected(&self) -> bool {
        if self.node_count == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count as usize];
        let mut stack = vec![NodeAddr(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for nb in self.neighbors(n) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.node_count as usize
    }

    /// Single-source shortest-path distances over a given metric
    /// (Dijkstra). Returns a vector indexed by node, `f64::INFINITY` for
    /// unreachable nodes.
    pub fn shortest_distances(&self, source: NodeAddr, metric: Metric) -> Vec<f64> {
        let n = self.node_count as usize;
        let mut dist = vec![f64::INFINITY; n];
        if !self.contains(source) {
            return dist;
        }
        dist[source.index()] = 0.0;
        // Max-heap on Reverse of ordered-by-bits distance; f64 distances are
        // non-negative so bit ordering matches numeric ordering.
        #[derive(PartialEq)]
        struct Entry(f64, NodeAddr);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse order: smallest distance first.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Entry(0.0, source));
        while let Some(Entry(d, node)) = heap.pop() {
            if d > dist[node.index()] {
                continue;
            }
            for nb in self.neighbors(node) {
                let w = self
                    .link(node, nb)
                    .map(|m| m.get(metric))
                    .unwrap_or(f64::INFINITY);
                let nd = d + w;
                if nd < dist[nb.index()] {
                    dist[nb.index()] = nd;
                    heap.push(Entry(nd, nb));
                }
            }
        }
        dist
    }

    /// The neighborhood function N(x, r): number of distinct nodes within
    /// `r` hops of `x` (Section 5.3 of the paper). `N(x, 0) == 1` when the
    /// node exists.
    pub fn neighborhood(&self, node: NodeAddr, radius: usize) -> usize {
        if !self.contains(node) {
            return 0;
        }
        let mut seen = vec![false; self.node_count as usize];
        seen[node.index()] = true;
        let mut frontier = vec![node];
        let mut count = 1;
        for _ in 0..radius {
            let mut next = Vec::new();
            for n in frontier {
                for nb in self.neighbors(n) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        count += 1;
                        next.push(nb);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        count
    }

    /// Hop-count distance between two nodes (BFS). `None` if unreachable.
    pub fn hop_distance(&self, a: NodeAddr, b: NodeAddr) -> Option<usize> {
        if !self.contains(a) || !self.contains(b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        let mut seen = vec![false; self.node_count as usize];
        seen[a.index()] = true;
        let mut frontier = vec![a];
        let mut hops = 0;
        while !frontier.is_empty() {
            hops += 1;
            let mut next = Vec::new();
            for n in frontier {
                for nb in self.neighbors(n) {
                    if nb == b {
                        return Some(hops);
                    }
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        next.push(nb);
                    }
                }
            }
            frontier = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::with_nodes(3);
        let m = LinkMetrics::uniform();
        t.add_link(NodeAddr(0), NodeAddr(1), m).unwrap();
        t.add_link(NodeAddr(1), NodeAddr(2), m).unwrap();
        t.add_link(NodeAddr(2), NodeAddr(0), m).unwrap();
        t
    }

    #[test]
    fn add_and_query_links() {
        let t = triangle();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert!(t.has_link(NodeAddr(0), NodeAddr(1)));
        assert!(
            t.has_link(NodeAddr(1), NodeAddr(0)),
            "links are bidirectional"
        );
        assert_eq!(t.degree(NodeAddr(0)), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut t = Topology::with_nodes(2);
        let m = LinkMetrics::uniform();
        assert_eq!(
            t.add_link(NodeAddr(0), NodeAddr(0), m),
            Err(TopologyError::SelfLoop(NodeAddr(0)))
        );
        t.add_link(NodeAddr(0), NodeAddr(1), m).unwrap();
        assert_eq!(
            t.add_link(NodeAddr(1), NodeAddr(0), m),
            Err(TopologyError::DuplicateLink(NodeAddr(1), NodeAddr(0)))
        );
        assert_eq!(
            t.add_link(NodeAddr(0), NodeAddr(5), m),
            Err(TopologyError::UnknownNode(NodeAddr(5)))
        );
    }

    #[test]
    fn remove_link_updates_adjacency() {
        let mut t = triangle();
        t.remove_link(NodeAddr(0), NodeAddr(1)).unwrap();
        assert!(!t.has_link(NodeAddr(0), NodeAddr(1)));
        assert_eq!(t.degree(NodeAddr(0)), 1);
        assert!(
            t.is_connected(),
            "triangle minus one edge is still connected"
        );
        assert!(t.remove_link(NodeAddr(0), NodeAddr(1)).is_err());
    }

    #[test]
    fn disconnected_detection() {
        let mut t = Topology::with_nodes(4);
        let m = LinkMetrics::uniform();
        t.add_link(NodeAddr(0), NodeAddr(1), m).unwrap();
        t.add_link(NodeAddr(2), NodeAddr(3), m).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn dijkstra_latency() {
        let mut t = Topology::with_nodes(4);
        let mk = |l: f64| LinkMetrics {
            latency_ms: l,
            reliability: l,
            random: 1.0,
            bandwidth_bps: 1e7,
        };
        t.add_link(NodeAddr(0), NodeAddr(1), mk(5.0)).unwrap();
        t.add_link(NodeAddr(0), NodeAddr(2), mk(1.0)).unwrap();
        t.add_link(NodeAddr(2), NodeAddr(1), mk(1.0)).unwrap();
        t.add_link(NodeAddr(1), NodeAddr(3), mk(1.0)).unwrap();
        let d = t.shortest_distances(NodeAddr(0), Metric::Latency);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[2], 1.0);
        assert_eq!(d[1], 2.0, "via node 2 is cheaper than the direct 5ms link");
        assert_eq!(d[3], 3.0);
        let dh = t.shortest_distances(NodeAddr(0), Metric::HopCount);
        assert_eq!(dh[1], 1.0, "hop-count prefers the direct link");
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut t = Topology::with_nodes(3);
        t.add_link(NodeAddr(0), NodeAddr(1), LinkMetrics::uniform())
            .unwrap();
        let d = t.shortest_distances(NodeAddr(0), Metric::HopCount);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn neighborhood_function() {
        // Path graph 0 - 1 - 2 - 3
        let mut t = Topology::with_nodes(4);
        let m = LinkMetrics::uniform();
        t.add_link(NodeAddr(0), NodeAddr(1), m).unwrap();
        t.add_link(NodeAddr(1), NodeAddr(2), m).unwrap();
        t.add_link(NodeAddr(2), NodeAddr(3), m).unwrap();
        assert_eq!(t.neighborhood(NodeAddr(0), 0), 1);
        assert_eq!(t.neighborhood(NodeAddr(0), 1), 2);
        assert_eq!(t.neighborhood(NodeAddr(0), 2), 3);
        assert_eq!(t.neighborhood(NodeAddr(0), 10), 4);
        assert_eq!(t.neighborhood(NodeAddr(1), 1), 3);
    }

    #[test]
    fn hop_distance() {
        let mut t = Topology::with_nodes(4);
        let m = LinkMetrics::uniform();
        t.add_link(NodeAddr(0), NodeAddr(1), m).unwrap();
        t.add_link(NodeAddr(1), NodeAddr(2), m).unwrap();
        assert_eq!(t.hop_distance(NodeAddr(0), NodeAddr(0)), Some(0));
        assert_eq!(t.hop_distance(NodeAddr(0), NodeAddr(2)), Some(2));
        assert_eq!(t.hop_distance(NodeAddr(0), NodeAddr(3)), None);
    }

    #[test]
    fn metric_labels() {
        assert_eq!(Metric::HopCount.label(), "Hop-Count");
        assert_eq!(Metric::Random.to_string(), "Random");
        assert_eq!(Metric::ALL.len(), 4);
    }
}
