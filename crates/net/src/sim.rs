//! A deterministic discrete-event network simulator.
//!
//! The simulator plays the role of the Emulab testbed in the paper's
//! evaluation. It models:
//!
//! * per-link propagation latency (from [`LinkMetrics::latency_ms`]),
//! * per-link transmission delay (`bytes * 8 / bandwidth`),
//! * **FIFO delivery per directed link** — the precondition of Theorem 4
//!   (distributed eventual consistency). FIFO can be disabled to exercise
//!   the negative case in tests,
//! * timers, used by the engine for periodic aggregate-selection flushes,
//!   message-sharing delays, soft-state refresh and update bursts.
//!
//! The simulator is a passive priority queue of events: the driver (the
//! distributed engine in `ndlog-core`) schedules messages and timers and
//! pops events in timestamp order. Time is in integer microseconds, so
//! event ordering is exact and runs are reproducible.
//!
//! [`LinkMetrics::latency_ms`]: crate::topology::LinkMetrics::latency_ms

use crate::address::NodeAddr;
use crate::fault::{FaultPlan, FaultStats};
use crate::message::Message;
use crate::stats::NetStats;
use crate::topology::Topology;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulation time in microseconds since the start of the run.
pub type SimTime = u64;

/// Convert milliseconds to [`SimTime`] microseconds.
pub fn ms(milliseconds: f64) -> SimTime {
    (milliseconds * 1000.0).round() as SimTime
}

/// Convert a [`SimTime`] to seconds (for reporting).
pub fn to_seconds(t: SimTime) -> f64 {
    t as f64 / 1_000_000.0
}

/// What a popped event contains.
#[derive(Debug, Clone)]
pub enum EventKind<P> {
    /// A message arriving at `message.to`.
    Delivery(Message<P>),
    /// A timer registered by the driver firing at a node. The `token`
    /// disambiguates different timer purposes.
    Timer { node: NodeAddr, token: u64 },
}

/// An event popped from the simulator.
#[derive(Debug, Clone)]
pub struct Event<P> {
    /// The time at which the event occurs.
    pub time: SimTime,
    /// The event itself.
    pub kind: EventKind<P>,
}

/// An event drained as part of an epoch, carrying its queue sequence
/// number. `(time, seq)` is a unique, totally ordered key that reproduces
/// exactly the order [`Simulator::next_event`] would have popped the event
/// in — parallel drivers use it to merge concurrently computed effects back
/// into the sequential order (see `ndlog_core::exec`).
#[derive(Debug, Clone)]
pub struct TimedEvent<P> {
    /// The time at which the event occurs.
    pub time: SimTime,
    /// The simulator-wide sequence number assigned when the event was
    /// scheduled (the tie-breaker for events sharing a timestamp).
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind<P>,
}

/// Configuration of the simulator.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Enforce FIFO ordering per directed link (default true). Disabling it
    /// models a network that can reorder messages, which breaks the
    /// precondition of Theorem 4.
    pub fifo_links: bool,
    /// If set, messages between nodes that are *not* linked in the overlay
    /// are rejected with a panic. Link-restricted NDlog programs never do
    /// this; catching it is a correctness check on the engine.
    pub enforce_link_restriction: bool,
    /// Fixed per-message protocol overhead in bytes (headers), added to the
    /// payload size for both delay and bandwidth accounting.
    pub header_bytes: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fifo_links: true,
            enforce_link_restriction: true,
            header_bytes: 28,
        }
    }
}

#[derive(Debug)]
struct QueuedEvent<P> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

impl<P> PartialEq for QueuedEvent<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for QueuedEvent<P> {}
impl<P> PartialOrd for QueuedEvent<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for QueuedEvent<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The discrete-event simulator.
///
/// `P` is the message payload type (the engine uses a batch of tuple
/// deltas).
pub struct Simulator<P> {
    config: SimConfig,
    topology: Topology,
    queue: BinaryHeap<Reverse<QueuedEvent<P>>>,
    /// Earliest time the next message on a directed link may arrive, used to
    /// enforce FIFO.
    link_clock: HashMap<(NodeAddr, NodeAddr), SimTime>,
    now: SimTime,
    seq: u64,
    stats: NetStats,
    dropped: u64,
    fault: Option<FaultPlan>,
    fault_stats: FaultStats,
}

impl<P: Clone> Simulator<P> {
    /// Create a simulator over an overlay/underlay graph. Message latency is
    /// taken from `topology`'s link metrics.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        Simulator {
            config,
            topology,
            queue: BinaryHeap::new(),
            link_clock: HashMap::new(),
            now: 0,
            seq: 0,
            stats: NetStats::new(),
            dropped: 0,
            fault: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// Attach a fault plan (validated), replacing any existing one. Fault
    /// decisions are drawn per message from the plan's `(time, seq, link)`
    /// keyed generator — see [`crate::fault`] for the determinism
    /// contract.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), String> {
        plan.validate()?;
        self.fault = Some(plan);
        Ok(())
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Injection counters so far, with `partitions_healed` computed from
    /// the current simulation time.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.fault_stats;
        if let Some(plan) = &self.fault {
            stats.partitions_healed = plan.partitions_healed_by(self.now);
        }
        stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The graph messages travel over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the graph (used by dynamic-network experiments to
    /// change link costs mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of messages dropped because they were sent over a missing
    /// link while `enforce_link_restriction` was disabled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, time: SimTime, kind: EventKind<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { time, seq, kind }));
    }

    /// Send a message from `message.from` to `message.to` at the current
    /// simulation time. Returns the scheduled delivery time, or `None` if
    /// the message was dropped — over a missing link (with enforcement
    /// disabled) or by the attached fault plan (loss draw, active
    /// partition, or receiver down on arrival). Dropped messages still
    /// appear in the send trace: the sender paid for the bytes, and the
    /// trace must stay identical across thread counts.
    pub fn send(&mut self, message: Message<P>) -> Option<SimTime> {
        let Message {
            from, to, bytes, ..
        } = message;
        let wire_bytes = bytes + self.config.header_bytes;
        let Some(metrics) = self.topology.link(from, to).copied() else {
            if self.config.enforce_link_restriction {
                panic!(
                    "message sent over non-existent link {from} -> {to}: \
                     link-restriction violated by the engine"
                );
            }
            self.dropped += 1;
            return None;
        };
        let propagation = ms(metrics.latency_ms);
        let transmission =
            ((wire_bytes as f64 * 8.0 / metrics.bandwidth_bps) * 1_000_000.0).round() as SimTime;

        // Fault decisions. `send` runs on the serial replay path even under
        // the parallel epoch executor, and the generator is keyed by
        // `(time, seq, link)`, so every draw is thread-count invariant.
        let mut jitter: SimTime = 0;
        let mut duplicate = false;
        if let Some(plan) = &self.fault {
            if plan.partition_blocks(self.now, from, to) {
                self.stats.record_send(self.now, from, wire_bytes);
                self.stats.record_drop();
                self.fault_stats.dropped += 1;
                self.fault_stats.partition_drops += 1;
                return None;
            }
            if self.now < plan.active_until {
                let faults = plan.link_faults(from, to);
                if !faults.is_none() {
                    let mut rng = plan.decision_rng(self.now, self.seq, from, to);
                    if faults.loss > 0.0 && rng.random_bool(faults.loss) {
                        self.stats.record_send(self.now, from, wire_bytes);
                        self.stats.record_drop();
                        self.fault_stats.dropped += 1;
                        self.fault_stats.loss_drops += 1;
                        return None;
                    }
                    if faults.jitter_ms > 0.0 {
                        jitter = ms(rng.random_range(0.0..faults.jitter_ms));
                        if jitter > 0 {
                            self.fault_stats.delayed += 1;
                        }
                    }
                    duplicate = faults.duplicate > 0.0 && rng.random_bool(faults.duplicate);
                }
            }
        }

        // Jitter only ever *adds* delay, so the epoch executor's
        // conservative lookahead bound (min link propagation) stays safe.
        let mut arrival = self.now + propagation + transmission + jitter;
        if self.config.fifo_links {
            let clock = self.link_clock.entry((from, to)).or_insert(0);
            if arrival < *clock {
                arrival = *clock;
                if jitter > 0 {
                    // The jittered message would have overtaken an earlier
                    // one; FIFO clamped it back into order.
                    self.stats.record_reorder();
                }
            }
            // Strictly increasing so two messages on a link never tie.
            *clock = arrival + 1;
        }
        if let Some(plan) = &self.fault {
            if plan.node_down_at(to, arrival) || plan.node_down_at(from, self.now) {
                self.stats.record_send(self.now, from, wire_bytes);
                self.stats.record_drop();
                self.fault_stats.dropped += 1;
                self.fault_stats.crash_drops += 1;
                return None;
            }
        }
        self.stats.record_send(self.now, from, wire_bytes);
        if duplicate {
            let copy = message.clone();
            self.push(arrival, EventKind::Delivery(message));
            // The extra copy trails the original on the same link, subject
            // to the same FIFO clock and crash windows.
            let mut dup_arrival = arrival;
            if self.config.fifo_links {
                let clock = self.link_clock.entry((from, to)).or_insert(0);
                if dup_arrival < *clock {
                    dup_arrival = *clock;
                }
                *clock = dup_arrival + 1;
            }
            let receiver_down = self
                .fault
                .as_ref()
                .is_some_and(|plan| plan.node_down_at(to, dup_arrival));
            if !receiver_down {
                self.stats.record_duplicate();
                self.fault_stats.duplicated += 1;
                self.push(dup_arrival, EventKind::Delivery(copy));
            }
        } else {
            self.push(arrival, EventKind::Delivery(message));
        }
        Some(arrival)
    }

    /// Schedule a timer to fire at absolute time `at` on `node`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeAddr, token: u64) {
        let at = at.max(self.now);
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedule a timer to fire `delay` after the current time.
    pub fn schedule_timer_in(&mut self, delay: SimTime, node: NodeAddr, token: u64) {
        self.push(self.now + delay, EventKind::Timer { node, token });
    }

    /// Pop the next event, advancing simulation time. Returns `None` when
    /// the simulation has quiesced (no events remain).
    pub fn next_event(&mut self) -> Option<Event<P>> {
        let Reverse(ev) = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "time must be monotonic");
        self.now = ev.time;
        Some(Event {
            time: ev.time,
            kind: ev.kind,
        })
    }

    /// Peek at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Drain an *epoch*: every queued event whose timestamp falls in the
    /// half-open window `[t0, t0 + window)` — where `t0` is the earliest
    /// queued timestamp — and is not past `limit`. Events are returned in
    /// exactly the `(time, seq)` order [`Simulator::next_event`] would have
    /// popped them, and simulation time advances to `t0`.
    ///
    /// A `window` of `0` or `1` yields single-timestamp epochs (all events
    /// sharing the next timestamp). Larger windows implement conservative
    /// lookahead: as long as `window` does not exceed the minimum delay of
    /// any event the drained events can generate (for messages, the minimum
    /// link propagation delay — see [`Simulator::min_link_delay`]), every
    /// event *caused by* this epoch lands at or after the window end, so
    /// per-node event orderings are unaffected by the batching. Events the
    /// epoch generates at the drained timestamps (possible only with
    /// zero-latency links) carry higher sequence numbers than everything
    /// drained here and are therefore picked up by a later epoch in the
    /// same relative order the sequential loop would have processed them.
    pub fn drain_epoch(&mut self, window: SimTime, limit: SimTime) -> Vec<TimedEvent<P>> {
        #[cfg(debug_assertions)]
        if window > 1 {
            if let Some(min_delay) = self.min_link_delay() {
                debug_assert!(
                    window <= min_delay,
                    "epoch window {window} exceeds the minimum link delay {min_delay}: \
                     a message sent inside the window could arrive inside it, breaking \
                     the conservative-lookahead precondition"
                );
            }
        }
        let mut out = Vec::new();
        let Some(t0) = self.peek_time() else {
            return out;
        };
        if t0 > limit {
            return out;
        }
        let end = t0.saturating_add(window.max(1));
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time >= end || head.time > limit {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            out.push(TimedEvent {
                time: ev.time,
                seq: ev.seq,
                kind: ev.kind,
            });
        }
        debug_assert!(t0 >= self.now, "time must be monotonic");
        self.now = t0;
        out
    }

    /// Advance simulation time to `t` (monotonic; earlier times are
    /// ignored). Drivers replaying the effects of a drained epoch call this
    /// with each event's timestamp before re-injecting its sends and
    /// timers, so arrival times and statistics are computed exactly as the
    /// sequential loop would have.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// The minimum propagation delay over all links, in microseconds — the
    /// safe conservative lookahead for [`Simulator::drain_epoch`]: a
    /// message sent at time `t` can arrive no earlier than `t` plus this
    /// delay. `None` when the topology has no links.
    pub fn min_link_delay(&self) -> Option<SimTime> {
        self.topology
            .links()
            .map(|(_, _, m)| ms(m.latency_ms))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkMetrics;

    fn two_node_topology(latency_ms: f64) -> Topology {
        let mut t = Topology::with_nodes(2);
        t.add_link(
            NodeAddr(0),
            NodeAddr(1),
            LinkMetrics {
                latency_ms,
                reliability: 1.0,
                random: 1.0,
                bandwidth_bps: 8_000_000.0, // 1 byte per microsecond
            },
        )
        .unwrap();
        t
    }

    #[test]
    fn delivery_includes_propagation_and_transmission() {
        let mut sim: Simulator<u32> = Simulator::new(
            two_node_topology(10.0),
            SimConfig {
                header_bytes: 0,
                ..Default::default()
            },
        );
        // 1000 bytes at 8 Mbps = 1 ms transmission; 10 ms propagation.
        let at = sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 1000, 7))
            .unwrap();
        assert_eq!(at, ms(11.0));
        let ev = sim.next_event().unwrap();
        assert_eq!(ev.time, ms(11.0));
        match ev.kind {
            EventKind::Delivery(m) => assert_eq!(m.payload, 7),
            _ => panic!("expected delivery"),
        }
        assert_eq!(sim.now(), ms(11.0));
    }

    #[test]
    fn fifo_ordering_is_preserved_per_link() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        // Send a large message then a small one; without FIFO the small one
        // would overtake because its transmission delay is smaller... here
        // both have the same delay, so instead verify monotone arrival times
        // and in-order payloads.
        for i in 0..10 {
            sim.send(Message::new(NodeAddr(0), NodeAddr(1), 100, i));
        }
        let mut last = 0;
        let mut payloads = Vec::new();
        while let Some(ev) = sim.next_event() {
            assert!(ev.time >= last);
            last = ev.time;
            if let EventKind::Delivery(m) = ev.kind {
                payloads.push(m.payload);
            }
        }
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_prevents_overtaking_of_large_messages() {
        // First message is huge (long transmission), second is tiny. With
        // FIFO the tiny one must not arrive before the huge one.
        let mut sim: Simulator<&'static str> = Simulator::new(
            two_node_topology(1.0),
            SimConfig {
                header_bytes: 0,
                ..Default::default()
            },
        );
        let t_big = sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 1_000_000, "big"))
            .unwrap();
        let t_small = sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 1, "small"))
            .unwrap();
        assert!(t_small > t_big, "FIFO must prevent overtaking");

        // Same scenario without FIFO: the small message may overtake.
        let mut sim2: Simulator<&'static str> = Simulator::new(
            two_node_topology(1.0),
            SimConfig {
                fifo_links: false,
                header_bytes: 0,
                ..Default::default()
            },
        );
        let t_big = sim2
            .send(Message::new(NodeAddr(0), NodeAddr(1), 1_000_000, "big"))
            .unwrap();
        let t_small = sim2
            .send(Message::new(NodeAddr(0), NodeAddr(1), 1, "small"))
            .unwrap();
        assert!(t_small < t_big, "without FIFO the small message overtakes");
    }

    #[test]
    #[should_panic(expected = "link-restriction violated")]
    fn sending_over_missing_link_panics_when_enforced() {
        let mut sim: Simulator<u32> = Simulator::new(Topology::with_nodes(3), SimConfig::default());
        sim.send(Message::new(NodeAddr(0), NodeAddr(2), 10, 1));
    }

    #[test]
    fn sending_over_missing_link_drops_when_not_enforced() {
        let mut sim: Simulator<u32> = Simulator::new(
            Topology::with_nodes(3),
            SimConfig {
                enforce_link_restriction: false,
                ..Default::default()
            },
        );
        assert!(sim
            .send(Message::new(NodeAddr(0), NodeAddr(2), 10, 1))
            .is_none());
        assert_eq!(sim.dropped(), 1);
    }

    #[test]
    fn timers_fire_in_order_with_messages() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        sim.schedule_timer(ms(2.0), NodeAddr(0), 42);
        sim.send(Message::new(NodeAddr(0), NodeAddr(1), 10, 9));
        sim.schedule_timer(ms(100.0), NodeAddr(1), 43);

        let e1 = sim.next_event().unwrap();
        assert!(matches!(e1.kind, EventKind::Timer { token: 42, .. }));
        let e2 = sim.next_event().unwrap();
        assert!(matches!(e2.kind, EventKind::Delivery(_)));
        let e3 = sim.next_event().unwrap();
        assert!(matches!(e3.kind, EventKind::Timer { token: 43, .. }));
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn stats_account_for_header_bytes() {
        let mut sim: Simulator<u32> = Simulator::new(
            two_node_topology(1.0),
            SimConfig {
                header_bytes: 28,
                ..Default::default()
            },
        );
        sim.send(Message::new(NodeAddr(0), NodeAddr(1), 100, 0));
        assert_eq!(sim.stats().total_bytes(), 128);
        assert_eq!(sim.stats().message_count(), 1);
    }

    #[test]
    fn time_units_convert() {
        assert_eq!(ms(1.5), 1500);
        assert!((to_seconds(2_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drain_epoch_matches_next_event_order() {
        // Two identical simulators: one drained in epochs, one popped one
        // event at a time. The concatenated epochs must reproduce the
        // sequential pop order exactly.
        let build = || {
            let mut sim: Simulator<u32> =
                Simulator::new(two_node_topology(5.0), SimConfig::default());
            sim.schedule_timer(ms(2.0), NodeAddr(0), 7);
            sim.schedule_timer(ms(2.0), NodeAddr(1), 8);
            for i in 0..4 {
                sim.send(Message::new(NodeAddr(0), NodeAddr(1), 100, i));
            }
            sim.schedule_timer(ms(9.0), NodeAddr(0), 9);
            sim
        };
        let mut sequential = build();
        let mut popped = Vec::new();
        while let Some(ev) = sequential.next_event() {
            popped.push(ev.time);
        }

        let mut epochal = build();
        let mut drained = Vec::new();
        let mut epochs = 0;
        while epochal.peek_time().is_some() {
            let epoch = epochal.drain_epoch(ms(5.0), SimTime::MAX);
            assert!(!epoch.is_empty(), "an epoch always drains something");
            assert!(
                epoch
                    .windows(2)
                    .all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)),
                "epoch events are (time, seq)-ordered"
            );
            drained.extend(epoch.iter().map(|e| e.time));
            epochs += 1;
        }
        assert_eq!(drained, popped);
        assert!(epochs >= 2, "the window must not swallow the whole run");
        assert_eq!(epochal.pending(), 0);
    }

    #[test]
    fn drain_epoch_respects_window_and_limit() {
        // Timer-only (linkless) topology: wide windows are trivially
        // conservative, so the lookahead assert stays out of the way.
        let mut sim: Simulator<u32> = Simulator::new(Topology::with_nodes(2), SimConfig::default());
        sim.schedule_timer(ms(1.0), NodeAddr(0), 1);
        sim.schedule_timer(ms(1.0), NodeAddr(1), 2);
        sim.schedule_timer(ms(3.0), NodeAddr(0), 3);
        sim.schedule_timer(ms(10.0), NodeAddr(0), 4);

        // Single-timestamp epoch: only the two t=1 ms events.
        let epoch = sim.drain_epoch(1, SimTime::MAX);
        assert_eq!(epoch.len(), 2);
        assert_eq!(sim.now(), ms(1.0));

        // A 5 ms window takes t=3 ms but leaves t=10 ms for later.
        let epoch = sim.drain_epoch(ms(5.0), SimTime::MAX);
        assert_eq!(epoch.len(), 1);
        assert_eq!(epoch[0].time, ms(3.0));

        // The limit caps the drain even within the window.
        let epoch = sim.drain_epoch(ms(50.0), ms(8.0));
        assert!(epoch.is_empty(), "next event is past the limit");
        let epoch = sim.drain_epoch(ms(50.0), ms(10.0));
        assert_eq!(epoch.len(), 1);
        assert_eq!(sim.now(), ms(10.0));
        assert!(sim.drain_epoch(1, SimTime::MAX).is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the minimum link delay")]
    fn drain_epoch_rejects_non_conservative_windows() {
        // A 50 ms window over 5 ms links: a message sent inside the window
        // could arrive inside it, so debug builds must refuse.
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        sim.schedule_timer(ms(1.0), NodeAddr(0), 1);
        sim.drain_epoch(ms(50.0), SimTime::MAX);
    }

    #[test]
    fn fault_loss_is_deterministic_and_traced() {
        use crate::fault::{FaultPlan, LinkFaults};
        let build = || {
            let mut sim: Simulator<u32> = Simulator::new(
                two_node_topology(5.0),
                SimConfig {
                    header_bytes: 0,
                    ..Default::default()
                },
            );
            sim.set_fault_plan(FaultPlan::new(0xfa17).with_default_faults(LinkFaults {
                loss: 0.5,
                ..LinkFaults::NONE
            }))
            .unwrap();
            sim
        };
        let run = |mut sim: Simulator<u32>| {
            let mut delivered = Vec::new();
            for i in 0..64 {
                if sim
                    .send(Message::new(NodeAddr(0), NodeAddr(1), 100, i))
                    .is_some()
                {
                    delivered.push(i);
                }
            }
            (delivered, sim.fault_stats(), sim.stats().clone())
        };
        let (delivered_a, fault_a, net_a) = run(build());
        let (delivered_b, fault_b, net_b) = run(build());
        assert_eq!(
            delivered_a, delivered_b,
            "loss draws must replay from the seed"
        );
        assert_eq!(fault_a, fault_b);
        assert_eq!(net_a, net_b, "fault counters participate in the trace");
        assert!(fault_a.dropped > 0 && fault_a.dropped < 64, "~50% loss");
        assert_eq!(fault_a.dropped, fault_a.loss_drops);
        assert_eq!(net_a.drops(), fault_a.dropped);
        // Dropped messages still appear in the send trace: sender paid.
        assert_eq!(net_a.message_count(), 64);
    }

    #[test]
    fn fault_duplication_delivers_an_extra_copy() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        sim.set_fault_plan(FaultPlan::new(9).with_default_faults(LinkFaults {
            duplicate: 1.0,
            ..LinkFaults::NONE
        }))
        .unwrap();
        sim.send(Message::new(NodeAddr(0), NodeAddr(1), 100, 7))
            .unwrap();
        let mut payloads = Vec::new();
        while let Some(ev) = sim.next_event() {
            if let EventKind::Delivery(m) = ev.kind {
                payloads.push(m.payload);
            }
        }
        assert_eq!(payloads, vec![7, 7]);
        assert_eq!(sim.fault_stats().duplicated, 1);
        assert_eq!(sim.stats().duplicates(), 1);
        // The duplicate is network-level: the sender paid for one message.
        assert_eq!(sim.stats().message_count(), 1);
    }

    #[test]
    fn fault_jitter_only_adds_delay() {
        use crate::fault::{FaultPlan, LinkFaults};
        let mut sim: Simulator<u32> = Simulator::new(
            two_node_topology(5.0),
            SimConfig {
                header_bytes: 0,
                ..Default::default()
            },
        );
        sim.set_fault_plan(FaultPlan::new(3).with_default_faults(LinkFaults {
            jitter_ms: 20.0,
            ..LinkFaults::NONE
        }))
        .unwrap();
        let base = ms(5.0) + 100; // propagation + transmission at 1 B/µs
        for i in 0..32 {
            let at = sim
                .send(Message::new(NodeAddr(0), NodeAddr(1), 100, i))
                .unwrap();
            assert!(at >= base, "jitter never delivers early");
        }
        assert!(sim.fault_stats().delayed > 0);
    }

    #[test]
    fn fault_partition_cuts_and_heals() {
        use crate::fault::FaultPlan;
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        sim.set_fault_plan(FaultPlan::new(1).with_partition(0, ms(100.0), [NodeAddr(0)]))
            .unwrap();
        assert!(sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 10, 1))
            .is_none());
        assert_eq!(sim.fault_stats().partition_drops, 1);
        assert_eq!(sim.fault_stats().partitions_healed, 0);
        sim.advance_to(ms(100.0));
        assert!(sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 10, 2))
            .is_some());
        assert_eq!(sim.fault_stats().partitions_healed, 1);
    }

    #[test]
    fn fault_crash_window_drops_arrivals() {
        use crate::fault::FaultPlan;
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        // Node 1 is down for arrivals in [0, 20 ms); a 5 ms link puts the
        // first send's arrival inside the window.
        sim.set_fault_plan(FaultPlan::new(1).with_crash(NodeAddr(1), 0, ms(20.0)))
            .unwrap();
        assert!(sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 10, 1))
            .is_none());
        assert_eq!(sim.fault_stats().crash_drops, 1);
        sim.advance_to(ms(30.0));
        assert!(sim
            .send(Message::new(NodeAddr(0), NodeAddr(1), 10, 2))
            .is_some());
    }

    #[test]
    fn fault_plan_validation_is_enforced_on_attach() {
        use crate::fault::FaultPlan;
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        assert!(sim
            .set_fault_plan(FaultPlan::new(1).with_crash(NodeAddr(0), 10, 5))
            .is_err());
        assert!(sim.fault_plan().is_none());
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        sim.advance_to(ms(4.0));
        assert_eq!(sim.now(), ms(4.0));
        sim.advance_to(ms(2.0));
        assert_eq!(sim.now(), ms(4.0), "earlier times are ignored");
    }

    #[test]
    fn min_link_delay_is_the_lookahead_bound() {
        let sim: Simulator<u32> = Simulator::new(two_node_topology(5.0), SimConfig::default());
        assert_eq!(sim.min_link_delay(), Some(ms(5.0)));
        let empty: Simulator<u32> = Simulator::new(Topology::with_nodes(3), SimConfig::default());
        assert_eq!(empty.min_link_delay(), None);
    }
}
