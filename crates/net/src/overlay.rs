//! Overlay network construction.
//!
//! In the paper's experiments an overlay network is constructed on top of the
//! GT-ITM base topology: every overlay node picks four randomly selected
//! neighbors, and each overlay link carries metrics (latency, reliability,
//! random) derived from the underlying topology. The NDlog `link` relation
//! of the shortest-path queries is populated from this overlay.

use crate::address::NodeAddr;
use crate::topology::{LinkMetrics, Metric, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration for overlay construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Number of random neighbors each node picks (the paper uses 4).
    pub neighbors_per_node: usize,
    /// Seed for neighbor selection and random metrics.
    pub seed: u64,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            neighbors_per_node: 4,
            seed: 0xda7a,
        }
    }
}

/// A directed view of an overlay link together with its metrics.
///
/// Overlay links are bidirectional; `links()` reports each link once per
/// direction so that callers can directly populate a `link(@src, @dst, ...)`
/// relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayLink {
    /// Source overlay node.
    pub src: NodeAddr,
    /// Destination overlay node.
    pub dst: NodeAddr,
    /// Metrics of the overlay link (latency is the underlay shortest-path
    /// latency between the endpoints).
    pub metrics: LinkMetrics,
}

impl OverlayLink {
    /// Cost of this link under a given metric.
    pub fn cost(&self, metric: Metric) -> f64 {
        self.metrics.get(metric)
    }
}

/// An overlay graph over an underlying topology.
#[derive(Debug, Clone)]
pub struct Overlay {
    /// The overlay graph itself (nodes are the same addresses as the
    /// underlay's).
    pub graph: Topology,
}

impl Overlay {
    /// Build an overlay where every node picks `neighbors_per_node` distinct
    /// random neighbors (union of both directions, so degrees may exceed the
    /// configured value). Overlay link latency is the underlay shortest-path
    /// latency between the two endpoints; reliability is correlated with the
    /// latency; the random metric is uniform in `[1, 100)`.
    ///
    /// The construction retries neighbor selection until the overlay is
    /// connected (bounded number of attempts), matching the implicit
    /// assumption in the paper that all-pairs paths exist.
    pub fn random_neighbors(underlay: &Topology, config: &OverlayConfig) -> Overlay {
        let n = underlay.node_count();
        assert!(n >= 2, "overlay requires at least two nodes");
        let k = config.neighbors_per_node.min(n - 1);

        for attempt in 0..32u64 {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(attempt));
            let mut graph = Topology::with_nodes(n);
            let mut chosen: BTreeSet<(NodeAddr, NodeAddr)> = BTreeSet::new();
            let all: Vec<NodeAddr> = underlay.nodes().collect();
            for &node in &all {
                let mut candidates: Vec<NodeAddr> =
                    all.iter().copied().filter(|&x| x != node).collect();
                candidates.shuffle(&mut rng);
                for &nb in candidates.iter().take(k) {
                    let key = if node <= nb { (node, nb) } else { (nb, node) };
                    chosen.insert(key);
                }
            }
            // Precompute underlay latency distances lazily per source.
            let mut latency_cache: Vec<Option<Vec<f64>>> = vec![None; n];
            for (a, b) in chosen {
                if latency_cache[a.index()].is_none() {
                    latency_cache[a.index()] =
                        Some(underlay.shortest_distances(a, Metric::Latency));
                }
                let lat = latency_cache[a.index()].as_ref().unwrap()[b.index()];
                let lat = if lat.is_finite() { lat } else { 1000.0 };
                let metrics = LinkMetrics {
                    latency_ms: lat,
                    reliability: lat * (1.0 + rng.random_range(0.0..0.2)),
                    random: rng.random_range(1.0..100.0),
                    bandwidth_bps: 10_000_000.0,
                };
                graph
                    .add_link(a, b, metrics)
                    .expect("chosen set has no duplicates or self-loops");
            }
            if graph.is_connected() {
                return Overlay { graph };
            }
        }
        panic!("failed to build a connected overlay after 32 attempts");
    }

    /// All directed overlay links (each undirected link reported twice).
    pub fn links(&self) -> Vec<OverlayLink> {
        let mut out = Vec::with_capacity(self.graph.link_count() * 2);
        for (a, b, m) in self.graph.links() {
            out.push(OverlayLink {
                src: a,
                dst: b,
                metrics: *m,
            });
            out.push(OverlayLink {
                src: b,
                dst: a,
                metrics: *m,
            });
        }
        out
    }

    /// Number of overlay nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtitm::{generate, TransitStubConfig};

    #[test]
    fn overlay_is_connected_and_sized() {
        let ts = generate(&TransitStubConfig::small());
        let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        assert_eq!(overlay.node_count(), ts.topology.node_count());
        assert!(overlay.graph.is_connected());
        // Every node has at least the configured number of neighbors.
        for node in overlay.graph.nodes() {
            assert!(overlay.graph.degree(node) >= 4);
        }
    }

    #[test]
    fn links_reported_in_both_directions() {
        let ts = generate(&TransitStubConfig::small());
        let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        let links = overlay.links();
        assert_eq!(links.len(), overlay.graph.link_count() * 2);
        for l in &links {
            assert!(links
                .iter()
                .any(|r| r.src == l.dst && r.dst == l.src && r.metrics == l.metrics));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ts = generate(&TransitStubConfig::small());
        let a = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        let b = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        let la = a.links();
        let lb = b.links();
        assert_eq!(la.len(), lb.len());
        for (x, y) in la.iter().zip(lb.iter()) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert_eq!(x.metrics.random, y.metrics.random);
        }
    }

    #[test]
    fn overlay_latency_reflects_underlay() {
        let ts = generate(&TransitStubConfig::small());
        let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        for l in overlay.links() {
            let d = ts.topology.shortest_distances(l.src, Metric::Latency);
            assert!((l.metrics.latency_ms - d[l.dst.index()]).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_scale_overlay() {
        let ts = generate(&TransitStubConfig::paper());
        let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        assert_eq!(overlay.node_count(), 100);
        assert!(overlay.graph.is_connected());
    }

    #[test]
    fn cost_selector_matches_metrics() {
        let l = OverlayLink {
            src: NodeAddr(0),
            dst: NodeAddr(1),
            metrics: LinkMetrics {
                latency_ms: 7.0,
                reliability: 8.0,
                random: 9.0,
                bandwidth_bps: 1e7,
            },
        };
        assert_eq!(l.cost(Metric::HopCount), 1.0);
        assert_eq!(l.cost(Metric::Latency), 7.0);
        assert_eq!(l.cost(Metric::Reliability), 8.0);
        assert_eq!(l.cost(Metric::Random), 9.0);
    }
}
