//! Network addresses.
//!
//! An address identifies a node in the (simulated) network and is the value
//! type carried by NDlog location specifiers (`@S`, `@D`, ...). Addresses are
//! small copyable integers; a human-readable dotted form is provided for
//! display and parsing so NDlog programs can mention literal addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A node address in the network.
///
/// Addresses are dense small integers assigned by the topology builder.
/// `NodeAddr(0)` is a valid address; [`NodeAddr::NONE`] is reserved as a
/// sentinel for "no address".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// Sentinel meaning "no node".
    pub const NONE: NodeAddr = NodeAddr(u32::MAX);

    /// Create an address from a raw index.
    pub fn new(id: u32) -> Self {
        NodeAddr(id)
    }

    /// The raw index of this address.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`NodeAddr::NONE`] sentinel.
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl fmt::Debug for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "@none")
        } else {
            write!(f, "@n{}", self.0)
        }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for NodeAddr {
    fn from(v: u32) -> Self {
        NodeAddr(v)
    }
}

impl From<usize> for NodeAddr {
    fn from(v: usize) -> Self {
        NodeAddr(v as u32)
    }
}

/// Error returned when parsing a [`NodeAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid node address: {:?}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for NodeAddr {
    type Err = AddrParseError;

    /// Parse addresses of the form `@n12`, `n12`, or a bare integer `12`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.strip_prefix('@').unwrap_or(s);
        let t = t.strip_prefix('n').unwrap_or(t);
        t.parse::<u32>()
            .map(NodeAddr)
            .map_err(|_| AddrParseError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let a = NodeAddr(7);
        assert_eq!(a.to_string(), "@n7");
        assert_eq!("@n7".parse::<NodeAddr>().unwrap(), a);
        assert_eq!("n7".parse::<NodeAddr>().unwrap(), a);
        assert_eq!("7".parse::<NodeAddr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("@nx".parse::<NodeAddr>().is_err());
        assert!("".parse::<NodeAddr>().is_err());
        assert!("node7".parse::<NodeAddr>().is_err());
    }

    #[test]
    fn none_sentinel() {
        assert!(NodeAddr::NONE.is_none());
        assert!(!NodeAddr(0).is_none());
        assert_eq!(NodeAddr::NONE.to_string(), "@none");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeAddr(1) < NodeAddr(2));
        assert_eq!(NodeAddr::from(3usize), NodeAddr(3));
        assert_eq!(NodeAddr::from(3u32).index(), 3);
    }
}
