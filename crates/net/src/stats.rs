//! Communication statistics.
//!
//! The paper's evaluation reports two families of metrics (Section 6):
//!
//! * **Communication overhead** — aggregate bytes transferred (MB) and
//!   per-node bandwidth over time (kBps),
//! * **Convergence time** — the time until all query results are produced.
//!
//! [`NetStats`] accumulates per-send records and produces both: a
//! [`BandwidthSeries`] of per-node kBps bucketed over time, and aggregate
//! totals. Convergence bookkeeping (when each result first became final) is
//! kept by the engine; this module only deals with traffic.

use crate::address::NodeAddr;
use crate::sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A time series of average per-node bandwidth, in kilobytes per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSeries {
    /// Width of each bucket in seconds.
    pub bucket_seconds: f64,
    /// `points[i]` is the average per-node bandwidth (kBps) during bucket
    /// `i`, i.e. the interval `[i * bucket_seconds, (i+1) * bucket_seconds)`.
    pub points: Vec<f64>,
}

impl BandwidthSeries {
    /// The peak bucket value (0 for an empty series).
    pub fn peak(&self) -> f64 {
        self.points.iter().copied().fold(0.0, f64::max)
    }

    /// The bucket midpoints in seconds, for plotting.
    pub fn times(&self) -> Vec<f64> {
        (0..self.points.len())
            .map(|i| (i as f64 + 0.5) * self.bucket_seconds)
            .collect()
    }
}

/// Accumulated traffic statistics for a simulation run.
///
/// `PartialEq` compares the full per-send trace (time, sender and bytes of
/// every message, in send order), which is how the determinism tests prove
/// a parallel epoch run produced a byte-identical message trace to the
/// sequential engine. The fault counters (drops, duplicates, reorders)
/// participate in the comparison too, so fault-injected runs are
/// fingerprintable exactly like reliable ones.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    sends: Vec<SendRecord>,
    total_bytes: u64,
    per_node_bytes: HashMap<NodeAddr, u64>,
    #[serde(default)]
    dropped: u64,
    #[serde(default)]
    duplicated: u64,
    #[serde(default)]
    reordered: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SendRecord {
    time: SimTime,
    /// Sending node; recorded for per-node breakdowns even though the
    /// current reports only aggregate over time.
    #[allow(dead_code)]
    node: NodeAddr,
    bytes: u64,
}

impl NetStats {
    /// Create empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `node` put `bytes` on the wire at `time`.
    pub fn record_send(&mut self, time: SimTime, node: NodeAddr, bytes: usize) {
        self.total_bytes += bytes as u64;
        *self.per_node_bytes.entry(node).or_insert(0) += bytes as u64;
        self.sends.push(SendRecord {
            time,
            node,
            bytes: bytes as u64,
        });
    }

    /// Record a message dropped in flight (fault injection: loss,
    /// partition cut or crashed receiver).
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Record an extra in-flight copy created by a duplication fault.
    pub fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    /// Record a delivery whose jittered arrival had to be clamped by the
    /// per-link FIFO clock (it would otherwise have overtaken an earlier
    /// message).
    pub fn record_reorder(&mut self) {
        self.reordered += 1;
    }

    /// Messages dropped in flight by fault injection.
    pub fn drops(&self) -> u64 {
        self.dropped
    }

    /// Extra copies created by duplication faults.
    pub fn duplicates(&self) -> u64 {
        self.duplicated
    }

    /// Jittered deliveries clamped by the FIFO link clock.
    pub fn reorders(&self) -> u64 {
        self.reordered
    }

    /// Total bytes sent by all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total megabytes sent by all nodes (the unit of Figure 11).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes as f64 / 1_000_000.0
    }

    /// Number of messages sent.
    pub fn message_count(&self) -> usize {
        self.sends.len()
    }

    /// Bytes sent by one node.
    pub fn node_bytes(&self, node: NodeAddr) -> u64 {
        self.per_node_bytes.get(&node).copied().unwrap_or(0)
    }

    /// The time of the last send, in seconds.
    pub fn last_send_seconds(&self) -> f64 {
        self.sends
            .iter()
            .map(|s| s.time)
            .max()
            .map(crate::sim::to_seconds)
            .unwrap_or(0.0)
    }

    /// Average per-node bandwidth over time, in kBps, for `node_count`
    /// nodes, bucketed into `bucket_seconds`-wide bins (the series shown in
    /// Figures 7, 9, 12, 13 and 14 of the paper).
    pub fn per_node_bandwidth_kbps(
        &self,
        node_count: usize,
        bucket_seconds: f64,
    ) -> BandwidthSeries {
        assert!(node_count > 0, "node_count must be positive");
        assert!(bucket_seconds > 0.0, "bucket width must be positive");
        let mut buckets: Vec<f64> = Vec::new();
        for s in &self.sends {
            let t = crate::sim::to_seconds(s.time);
            let idx = (t / bucket_seconds).floor() as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0.0);
            }
            buckets[idx] += s.bytes as f64;
        }
        let scale = 1.0 / (node_count as f64 * bucket_seconds * 1000.0);
        for b in &mut buckets {
            *b *= scale;
        }
        BandwidthSeries {
            bucket_seconds,
            points: buckets,
        }
    }

    /// Total megabytes sent within a time window `[start_s, end_s)` seconds.
    pub fn mb_in_window(&self, start_s: f64, end_s: f64) -> f64 {
        self.sends
            .iter()
            .filter(|s| {
                let t = crate::sim::to_seconds(s.time);
                t >= start_s && t < end_s
            })
            .map(|s| s.bytes as f64)
            .sum::<f64>()
            / 1_000_000.0
    }

    /// Merge another statistics object into this one (used when several
    /// queries run in separate simulations and their traffic is summed,
    /// e.g. the No-Share line of Figure 12).
    pub fn merge(&mut self, other: &NetStats) {
        self.total_bytes += other.total_bytes;
        for (node, bytes) in &other.per_node_bytes {
            *self.per_node_bytes.entry(*node).or_insert(0) += bytes;
        }
        self.sends.extend_from_slice(&other.sends);
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ms;

    #[test]
    fn totals_accumulate() {
        let mut s = NetStats::new();
        s.record_send(ms(0.0), NodeAddr(0), 500);
        s.record_send(ms(10.0), NodeAddr(1), 1500);
        assert_eq!(s.total_bytes(), 2000);
        assert_eq!(s.message_count(), 2);
        assert_eq!(s.node_bytes(NodeAddr(0)), 500);
        assert_eq!(s.node_bytes(NodeAddr(2)), 0);
        assert!((s.total_mb() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_series_buckets_and_scales() {
        let mut s = NetStats::new();
        // 2 nodes, 1-second buckets. 10_000 bytes in bucket 0, 20_000 in bucket 2.
        s.record_send(ms(100.0), NodeAddr(0), 10_000);
        s.record_send(ms(2500.0), NodeAddr(1), 20_000);
        let series = s.per_node_bandwidth_kbps(2, 1.0);
        assert_eq!(series.points.len(), 3);
        // bucket 0: 10_000 bytes / (2 nodes * 1 s * 1000) = 5 kBps
        assert!((series.points[0] - 5.0).abs() < 1e-9);
        assert_eq!(series.points[1], 0.0);
        assert!((series.points[2] - 10.0).abs() < 1e-9);
        assert!((series.peak() - 10.0).abs() < 1e-9);
        assert_eq!(series.times().len(), 3);
        assert!((series.times()[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_sums() {
        let mut s = NetStats::new();
        s.record_send(ms(500.0), NodeAddr(0), 1_000_000);
        s.record_send(ms(1500.0), NodeAddr(0), 2_000_000);
        assert!((s.mb_in_window(0.0, 1.0) - 1.0).abs() < 1e-9);
        assert!((s.mb_in_window(1.0, 2.0) - 2.0).abs() < 1e-9);
        assert!((s.mb_in_window(0.0, 10.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = NetStats::new();
        a.record_send(ms(0.0), NodeAddr(0), 100);
        let mut b = NetStats::new();
        b.record_send(ms(0.0), NodeAddr(0), 50);
        b.record_send(ms(5.0), NodeAddr(1), 25);
        a.merge(&b);
        assert_eq!(a.total_bytes(), 175);
        assert_eq!(a.message_count(), 3);
        assert_eq!(a.node_bytes(NodeAddr(0)), 150);
    }

    #[test]
    fn fault_counters_participate_in_equality_and_merge() {
        let mut a = NetStats::new();
        let mut b = NetStats::new();
        assert_eq!(a, b);
        a.record_drop();
        a.record_duplicate();
        a.record_reorder();
        assert_ne!(a, b, "fault counters must fingerprint the trace");
        b.record_drop();
        b.record_duplicate();
        b.record_reorder();
        assert_eq!(a, b);
        a.merge(&b);
        assert_eq!(a.drops(), 2);
        assert_eq!(a.duplicates(), 2);
        assert_eq!(a.reorders(), 2);
    }

    #[test]
    fn last_send_time() {
        let mut s = NetStats::new();
        assert_eq!(s.last_send_seconds(), 0.0);
        s.record_send(ms(1234.0), NodeAddr(0), 1);
        assert!((s.last_send_seconds() - 1.234).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "node_count must be positive")]
    fn bandwidth_rejects_zero_nodes() {
        NetStats::new().per_node_bandwidth_kbps(0, 1.0);
    }
}
