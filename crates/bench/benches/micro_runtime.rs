//! Micro-benchmarks of the runtime primitives: relation insertion with
//! primary keys, strand firing (join + project), indexed-vs-scan joins at
//! increasing relation sizes, and incremental aggregate maintenance.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_lang::seminaive::delta_rewrite_full;
use ndlog_lang::{parse_program, Value};
use ndlog_runtime::batch::{BatchOutput, BatchScratch, BatchTrigger};
use ndlog_runtime::strand::JoinStats;
use ndlog_runtime::{AggregateView, CompiledStrand, Store, Tuple, TupleDelta};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_runtime");

    group.bench_function("store_insert_1000_keyed", |b| {
        b.iter(|| {
            let mut store = Store::new();
            for i in 0..1000u32 {
                store.apply(&TupleDelta::insert(
                    "r",
                    Tuple::new(vec![Value::addr(i % 50), Value::Int(i as i64)]),
                ));
            }
            store.total_tuples()
        })
    });

    let program = parse_program(
        "sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2), \
         f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).",
    )
    .unwrap();
    let strands: Vec<CompiledStrand> = delta_rewrite_full(&program)
        .into_iter()
        .map(CompiledStrand::new)
        .collect();
    let link_strand = strands
        .iter()
        .find(|s| s.trigger_relation() == "link")
        .unwrap();
    let mut store = Store::new();
    for d in 2..102u32 {
        store.apply(&TupleDelta::insert(
            "path",
            Tuple::new(vec![
                Value::addr(1u32),
                Value::addr(d),
                Value::addr(d),
                Value::list(vec![Value::addr(1u32), Value::addr(d)]),
                Value::Float(1.0),
            ]),
        ));
    }
    let trigger = TupleDelta::insert(
        "link",
        Tuple::new(vec![
            Value::addr(0u32),
            Value::addr(1u32),
            Value::Float(1.0),
        ]),
    );
    group.bench_function("strand_fire_join_100_paths", |b| {
        b.iter(|| {
            let out = link_strand.fire(&store, &trigger, u64::MAX).unwrap();
            assert_eq!(out.len(), 100);
            out.len()
        })
    });

    // Indexed probe vs. residual scan on a bound join, with the stored
    // `link` relation sized 10^2..10^4: the per-trigger cost of the scan
    // grows linearly with the relation while the probe stays O(matches).
    let reach_program = parse_program("rc2 reach(@S,@D) :- #link(@S,@Z,C), reach(@Z,@D).").unwrap();
    let reach_strands: Vec<CompiledStrand> = delta_rewrite_full(&reach_program)
        .into_iter()
        .map(CompiledStrand::new)
        .collect();
    let reach_strand = reach_strands
        .iter()
        .find(|s| s.trigger_relation() == "reach")
        .unwrap();
    for n in [100u32, 1_000, 10_000] {
        // `link` holds n tuples; the strand triggered by reach(@Z,@D)
        // probes link(@S,@Z,C) on its Z column, and exactly 10 links point
        // at node 1 (the probe's match set).
        let build_store = |indexed: bool| -> Store {
            let mut store = Store::new();
            if indexed {
                store.declare_indexes(reach_strands.iter());
            }
            for i in 0..n {
                let dst = if i % (n / 10) == 0 { 1 } else { 2 + (i % 97) };
                store.apply(&TupleDelta::insert(
                    "link",
                    Tuple::new(vec![
                        Value::addr(1000 + i),
                        Value::addr(dst),
                        Value::Float(1.0),
                    ]),
                ));
            }
            store
        };
        let trigger = TupleDelta::insert(
            "reach",
            Tuple::new(vec![Value::addr(1u32), Value::addr(500u32)]),
        );
        let indexed_store = build_store(true);
        let scan_store = build_store(false);
        group.bench_function(format!("join_link{n}_indexed"), |b| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                let out = reach_strand
                    .fire_counted(&indexed_store, &trigger, u64::MAX, &mut stats)
                    .unwrap();
                assert_eq!(out.len(), 10);
                assert_eq!(stats.logical_probes, 1);
                out.len()
            })
        });
        group.bench_function(format!("join_link{n}_scan"), |b| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                let out = reach_strand
                    .fire_counted(&scan_store, &trigger, u64::MAX, &mut stats)
                    .unwrap();
                assert_eq!(out.len(), 10);
                assert_eq!(stats.tuples_examined as u32, n);
                out.len()
            })
        });
    }

    // Batch-delta vs tuple-at-a-time on the indexed join: a batch of 64
    // reach triggers, each probing the 10-match link bucket, fired through
    // the flat-buffer batch path and the per-tuple reference path.
    {
        let mut store = Store::new();
        store.declare_indexes(reach_strands.iter());
        for i in 0..10_000u32 {
            let dst = if i % 1_000 == 0 { 1 } else { 2 + (i % 97) };
            store.apply(&TupleDelta::insert(
                "link",
                Tuple::new(vec![
                    Value::addr(1000 + i),
                    Value::addr(dst),
                    Value::Float(1.0),
                ]),
            ));
        }
        let deltas: Vec<TupleDelta> = (0..64u32)
            .map(|d| {
                TupleDelta::insert(
                    "reach",
                    Tuple::new(vec![Value::addr(1u32), Value::addr(20_000 + d)]),
                )
            })
            .collect();
        group.bench_function("join_link10000_batch64_tuple_at_a_time", |b| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                let mut total = 0usize;
                for delta in &deltas {
                    total += reach_strand
                        .fire_counted(&store, delta, u64::MAX, &mut stats)
                        .unwrap()
                        .len();
                }
                assert_eq!(total, 640);
                total
            })
        });
        let triggers: Vec<BatchTrigger> = deltas
            .iter()
            .map(|delta| BatchTrigger {
                delta,
                seq_limit: u64::MAX,
            })
            .collect();
        let mut scratch = BatchScratch::default();
        let mut out = BatchOutput::default();
        group.bench_function("join_link10000_batch64_fire_batch", |b| {
            b.iter(|| {
                let mut stats = JoinStats::default();
                reach_strand
                    .fire_batch(&store, &triggers, &mut stats, &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(out.all().len(), 640);
                out.all().len()
            })
        });
    }

    let agg_program = parse_program("sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).").unwrap();
    group.bench_function("aggregate_view_1000_updates", |b| {
        b.iter(|| {
            let mut view = AggregateView::from_rule(&agg_program.rules[0]).unwrap();
            let store = Store::new();
            let mut changes = 0usize;
            for i in 0..1000u32 {
                let delta = TupleDelta::insert(
                    "path",
                    Tuple::new(vec![
                        Value::addr(0u32),
                        Value::addr(i % 20),
                        Value::addr(1u32),
                        Value::nil(),
                        Value::Float(f64::from(1000 - i)),
                    ]),
                );
                changes += view.apply(&store, &delta).len();
            }
            changes
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
