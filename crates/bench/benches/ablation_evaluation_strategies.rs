//! Ablation: the three centralized evaluation strategies of Section 3
//! (semi-naive, buffered semi-naive, pipelined semi-naive) on the same
//! workload, plus the cost of incremental updates versus re-running.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_lang::{programs, Value};
use ndlog_runtime::{Evaluator, Strategy, Tuple, TupleDelta};

fn load_ring(eval: &mut Evaluator, n: u32) {
    for i in 0..n {
        let j = (i + 1) % n;
        for (a, b) in [(i, j), (j, i)] {
            eval.insert_fact(
                "link",
                Tuple::new(vec![Value::addr(a), Value::addr(b), Value::Float(1.0)]),
            );
        }
    }
}

fn run(strategy: Strategy, n: u32) -> usize {
    let program = programs::shortest_path("");
    let mut eval = Evaluator::new(&program).unwrap();
    load_ring(&mut eval, n);
    eval.run(strategy).unwrap();
    eval.results("shortestPath").len()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_evaluation_strategies");
    group.sample_size(10);
    for (name, strategy) in [
        ("semi_naive", Strategy::SemiNaive),
        ("buffered_batch4", Strategy::Buffered { batch: 4 }),
        ("pipelined", Strategy::Pipelined),
    ] {
        // Report the computation overhead of each strategy alongside its
        // wall-clock time: tuples examined is the per-strategy work metric
        // that indexes cut from O(n) per join to O(matches).
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        load_ring(&mut eval, 16);
        let stats = eval.run(strategy).unwrap();
        println!(
            "{name}_ring16 computation: {} tuples examined, {} probes ({} distinct), \
             {} scans, {} derivations ({} redundant)",
            stats.tuples_examined,
            stats.logical_probes,
            stats.distinct_probes,
            stats.scans,
            stats.derivations,
            stats.redundant_derivations
        );
        group.bench_function(format!("{name}_ring16"), |b| {
            b.iter(|| {
                let results = run(strategy, 16);
                assert_eq!(results, 16 * 15);
                results
            })
        });
    }
    group.bench_function("incremental_update_vs_rerun_ring16", |b| {
        b.iter(|| {
            let program = programs::shortest_path("");
            let mut eval = Evaluator::new(&program).unwrap();
            load_ring(&mut eval, 16);
            eval.run(Strategy::Pipelined).unwrap();
            // One link update handled incrementally.
            eval.update(TupleDelta::delete(
                "link",
                Tuple::new(vec![
                    Value::addr(0u32),
                    Value::addr(1u32),
                    Value::Float(1.0),
                ]),
            ))
            .unwrap();
            eval.update(TupleDelta::insert(
                "link",
                Tuple::new(vec![
                    Value::addr(0u32),
                    Value::addr(1u32),
                    Value::Float(2.0),
                ]),
            ))
            .unwrap();
            eval.results("shortestPath").len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
