//! Figure 7/8 bench: the four metric shortest-path queries with aggregate
//! selections on the small testbed (the paper-scale run is produced by the
//! `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::aggregate_selections;
use ndlog_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_aggregate_selections");
    group.sample_size(10);
    group.bench_function("four_metric_queries_small", |b| {
        b.iter(|| {
            let result = aggregate_selections(Scale::Small);
            assert_eq!(result.runs.len(), 4);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
