//! Scaling bench for the parallel epoch executor: the same distributed
//! shortest-path run at 1 / 2 / 4 executor threads, plus the end-to-end
//! scaling experiment that also verifies bit-for-bit identity.
//!
//! The per-thread-count numbers are the perf trajectory for the executor:
//! compare the `quiescence_*_threads` medians across commits to see the
//! speedup, and run `experiments scaling large --json` for the full
//! ≥256-node measurement (too slow for the default bench loop).

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::parallel_scaling;
use ndlog_bench::{Scale, Testbed};
use ndlog_core::EngineConfig;
use ndlog_net::topology::Metric;

fn quiescence_run(testbed: &Testbed, threads: usize) -> usize {
    let metric = Metric::HopCount;
    let plan = Testbed::shortest_path_plan(metric);
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.parallelism = threads;
    let mut engine = testbed.engine(&[plan], config);
    testbed
        .load_links(&mut engine, &Testbed::link_relation(metric), metric)
        .expect("link loading");
    let report = engine.run_to_quiescence().expect("run");
    assert!(report.quiesced);
    report.messages
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let testbed = Testbed::new(Scale::Small);
    let mut baseline_messages = None;
    for threads in [1usize, 2, 4] {
        let tb = testbed.clone();
        let mut messages = None;
        group.bench_function(format!("quiescence_{threads}_threads"), |b| {
            b.iter(|| {
                let m = quiescence_run(&tb, threads);
                messages = Some(m);
                m
            })
        });
        // The workload is deterministic: every thread count must send
        // exactly the same messages.
        if let Some(base) = baseline_messages {
            assert_eq!(messages.unwrap(), base, "thread count changed the run");
        } else {
            baseline_messages = messages;
        }
    }

    group.bench_function("scaling_experiment_small", |b| {
        b.iter(|| {
            let result = parallel_scaling(Scale::Small, &[2]);
            assert!(result.runs.iter().all(|r| r.identical));
            result.runs.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
