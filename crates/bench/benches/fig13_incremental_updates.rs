//! Figure 13/14 bench: incremental evaluation under bursty link updates.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::incremental_updates_with_intervals;
use ndlog_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_incremental_updates");
    group.sample_size(10);
    group.bench_function("bursts_every_5s_small", |b| {
        b.iter(|| incremental_updates_with_intervals(Scale::Small, &[5.0], 30.0))
    });
    group.bench_function("interleaved_2s_8s_small", |b| {
        b.iter(|| incremental_updates_with_intervals(Scale::Small, &[2.0, 8.0], 30.0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
