//! Figure 12 bench: opportunistic message sharing across three concurrent
//! metric queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::message_sharing;
use ndlog_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_message_sharing");
    group.sample_size(10);
    group.bench_function("share_vs_no_share_small", |b| {
        b.iter(|| {
            let result = message_sharing(Scale::Small);
            assert!(result.share_mb <= result.no_share_mb);
            result
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
