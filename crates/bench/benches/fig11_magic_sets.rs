//! Figure 11 bench: magic sets + predicate reordering + result caching.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::magic_sets;
use ndlog_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_magic_sets");
    group.sample_size(10);
    group.bench_function("eight_queries_small", |b| {
        b.iter(|| magic_sets(Scale::Small, 8, &[4, 8]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
