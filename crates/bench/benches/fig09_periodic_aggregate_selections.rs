//! Figure 9/10 bench: periodic aggregate selections vs the eager variant.

use criterion::{criterion_group, criterion_main, Criterion};
use ndlog_bench::experiments::{aggregate_selections, periodic_aggregate_selections};
use ndlog_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_periodic_aggregate_selections");
    group.sample_size(10);
    group.bench_function("eager_small", |b| {
        b.iter(|| aggregate_selections(Scale::Small))
    });
    group.bench_function("periodic_small", |b| {
        b.iter(|| periodic_aggregate_selections(Scale::Small))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
