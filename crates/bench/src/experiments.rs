//! One function per evaluation figure.
//!
//! Each function runs the real distributed engine over the simulated
//! testbed and returns a result struct whose `render()` method prints the
//! same rows/series the paper reports. Absolute numbers differ from the
//! paper (different hardware, a simulator instead of Emulab, a Rust engine
//! instead of C++ P2); the *shape* — which technique wins, by roughly what
//! factor, where the crossover falls — is what these experiments reproduce
//! (see EXPERIMENTS.md for the side-by-side comparison).

use crate::testbed::{Scale, SourceRoutingSetup, Testbed};
use ndlog_core::caching::QueryCache;
use ndlog_core::{sharing, EngineConfig, RefreshConfig, UpdateWorkload};
use ndlog_lang::{PassSet, Value};
use ndlog_net::sim::ms;
use ndlog_net::stats::{BandwidthSeries, NetStats};
use ndlog_net::topology::Metric;
use ndlog_net::{FaultPlan, LinkFaults, NodeAddr};
use ndlog_runtime::{Tuple, TupleDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Bucket width (seconds) for per-node bandwidth series.
const BANDWIDTH_BUCKET_S: f64 = 0.5;
/// Step (seconds) for completion series.
const COMPLETION_STEP_S: f64 = 0.25;
/// Flush interval for the periodic aggregate-selections variant.
const PERIODIC_FLUSH_MS: f64 = 500.0;
/// Outbound delay used by the message-sharing experiment (the paper's
/// value).
const SHARING_DELAY_MS: f64 = 300.0;

// ---------------------------------------------------------------------------
// Figures 7 & 8 (and 9 & 10): aggregate selections.
// ---------------------------------------------------------------------------

/// The outcome of one metric's shortest-path query run.
#[derive(Debug, Clone)]
pub struct MetricRun {
    /// Which link metric the query minimized.
    pub metric: Metric,
    /// Time until all results reached their final value (seconds).
    pub convergence_seconds: f64,
    /// Aggregate communication overhead (MB).
    pub total_mb: f64,
    /// Peak average per-node bandwidth (kBps).
    pub peak_kbps: f64,
    /// Per-node bandwidth over time (kBps, 0.5 s buckets) — Figure 7 / 9.
    pub bandwidth: BandwidthSeries,
    /// Fraction of eventual results completed over time — Figure 8 / 10.
    pub completion: Vec<(f64, f64)>,
    /// Insertions pruned by aggregate selections.
    pub pruned: u64,
    /// Messages sent.
    pub messages: usize,
    /// Aggregate computation overhead across all nodes (probe/scan and
    /// tuples-examined counters), complementing the communication metrics.
    pub computation: ndlog_runtime::EvalStats,
}

/// Results of the aggregate-selections experiment (one run per metric).
#[derive(Debug, Clone)]
pub struct AggregateSelectionsResult {
    /// Whether the periodic variant was used.
    pub periodic: bool,
    /// Optimizer pass level the plans were compiled at (`--optimize`).
    pub optimizer: String,
    /// One run per metric, in the paper's order.
    pub runs: Vec<MetricRun>,
}

fn run_metric_query(
    testbed: &Testbed,
    metric: Metric,
    periodic: bool,
    passes: PassSet,
) -> MetricRun {
    let plan = Testbed::shortest_path_plan_with(metric, passes);
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    if periodic {
        config.node.periodic_flush = Some(ms(PERIODIC_FLUSH_MS));
    }
    config.max_seconds = 120.0;
    let mut engine = testbed.engine(&[plan], config);
    testbed
        .load_links(&mut engine, &Testbed::link_relation(metric), metric)
        .expect("link loading");
    engine.run_to_quiescence().expect("run");

    let relation = Testbed::shortest_path_relation(metric);
    let conv = engine.convergence(&relation);
    let bandwidth = engine
        .stats()
        .per_node_bandwidth_kbps(testbed.node_count(), BANDWIDTH_BUCKET_S);
    MetricRun {
        metric,
        convergence_seconds: conv.convergence_seconds,
        total_mb: engine.stats().total_mb(),
        peak_kbps: bandwidth.peak(),
        bandwidth,
        completion: conv.completion_series(COMPLETION_STEP_S),
        pruned: engine.pruned_total(),
        messages: engine.stats().message_count(),
        computation: engine.computation_stats(),
    }
}

/// Figures 7 and 8: the four metric queries with (eager) aggregate
/// selections, fully optimized.
pub fn aggregate_selections(scale: Scale) -> AggregateSelectionsResult {
    aggregate_selections_with(scale, PassSet::ALL)
}

/// Figures 7 and 8 at an explicit optimizer pass level.
pub fn aggregate_selections_with(scale: Scale, passes: PassSet) -> AggregateSelectionsResult {
    let testbed = Testbed::new(scale);
    AggregateSelectionsResult {
        periodic: false,
        optimizer: passes.label().to_string(),
        runs: Metric::ALL
            .iter()
            .map(|&m| run_metric_query(&testbed, m, false, passes))
            .collect(),
    }
}

/// Figures 9 and 10: the same queries with *periodic* aggregate selections.
pub fn periodic_aggregate_selections(scale: Scale) -> AggregateSelectionsResult {
    periodic_aggregate_selections_with(scale, PassSet::ALL)
}

/// Figures 9 and 10 at an explicit optimizer pass level.
pub fn periodic_aggregate_selections_with(
    scale: Scale,
    passes: PassSet,
) -> AggregateSelectionsResult {
    let testbed = Testbed::new(scale);
    AggregateSelectionsResult {
        periodic: true,
        optimizer: passes.label().to_string(),
        runs: Metric::ALL
            .iter()
            .map(|&m| run_metric_query(&testbed, m, true, passes))
            .collect(),
    }
}

impl AggregateSelectionsResult {
    /// Render the per-metric summary table plus the two series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let title = if self.periodic {
            "Figures 9 & 10: periodic aggregate selections"
        } else {
            "Figures 7 & 8: aggregate selections"
        };
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "optimizer passes: {}", self.optimizer);
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "metric",
            "converge(s)",
            "MB",
            "peak kBps",
            "messages",
            "pruned",
            "probes",
            "distinct",
            "scans",
            "examined"
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{:<14} {:>12.2} {:>10.2} {:>12.2} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
                r.metric.label(),
                r.convergence_seconds,
                r.total_mb,
                r.peak_kbps,
                r.messages,
                r.pruned,
                r.computation.logical_probes,
                r.computation.distinct_probes,
                r.computation.scans,
                r.computation.tuples_examined
            );
        }
        let _ = writeln!(
            out,
            "\nPer-node bandwidth (kBps) over time ({}s buckets):",
            BANDWIDTH_BUCKET_S
        );
        let buckets = self
            .runs
            .iter()
            .map(|r| r.bandwidth.points.len())
            .max()
            .unwrap_or(0);
        let _ = write!(out, "{:<8}", "t(s)");
        for r in &self.runs {
            let _ = write!(out, "{:>14}", r.metric.label());
        }
        let _ = writeln!(out);
        for i in 0..buckets {
            let _ = write!(out, "{:<8.2}", (i as f64 + 0.5) * BANDWIDTH_BUCKET_S);
            for r in &self.runs {
                let v = r.bandwidth.points.get(i).copied().unwrap_or(0.0);
                let _ = write!(out, "{:>14.2}", v);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "\n%% of eventual results completed over time:");
        let steps = self
            .runs
            .iter()
            .map(|r| r.completion.len())
            .max()
            .unwrap_or(0);
        let _ = write!(out, "{:<8}", "t(s)");
        for r in &self.runs {
            let _ = write!(out, "{:>14}", r.metric.label());
        }
        let _ = writeln!(out);
        for i in 0..steps {
            let t = i as f64 * COMPLETION_STEP_S;
            let _ = write!(out, "{:<8.2}", t);
            for r in &self.runs {
                let v = r.completion.get(i).map(|(_, c)| *c).unwrap_or(1.0);
                let _ = write!(out, "{:>14.3}", v);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The run for a given metric.
    pub fn run_for(&self, metric: Metric) -> &MetricRun {
        self.runs
            .iter()
            .find(|r| r.metric == metric)
            .expect("all metrics present")
    }
}

// ---------------------------------------------------------------------------
// Figure 11: magic sets, predicate reordering and result caching.
// ---------------------------------------------------------------------------

/// One line of Figure 11 (cumulative MB as a function of query count).
#[derive(Debug, Clone)]
pub struct MagicLine {
    /// Line label (`MS`, `MSC`, `MSC-30%`, `MSC-10%`).
    pub label: String,
    /// Cumulative megabytes after each query.
    pub cumulative_mb: Vec<f64>,
}

impl MagicLine {
    /// Cumulative MB after `count` queries.
    pub fn at(&self, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let idx = count.min(self.cumulative_mb.len());
        self.cumulative_mb[idx - 1]
    }
}

/// Results of the Figure 11 experiment.
#[derive(Debug, Clone)]
pub struct MagicSetsResult {
    /// Query counts at which the paper samples the x-axis.
    pub query_counts: Vec<usize>,
    /// Communication of the unoptimized all-pairs query (independent of the
    /// number of queries).
    pub no_ms_mb: f64,
    /// The optimized lines.
    pub lines: Vec<MagicLine>,
    /// The optimizer pipeline the per-query plans were compiled with
    /// (`Report::describe()` of the applied rewrites).
    pub optimizer: String,
}

impl MagicSetsResult {
    /// Render the table (rows = query counts, columns = lines, plus the
    /// saving of the best caching line over the unoptimized baseline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 11: aggregate communication (MB) vs number of queries"
        );
        let _ = writeln!(out, "optimizer: {}", self.optimizer);
        let _ = write!(out, "{:<10} {:>10}", "queries", "No-MS");
        for line in &self.lines {
            let _ = write!(out, " {:>10}", line.label);
        }
        let delta_line = self.lines.iter().find(|l| l.label == "MSC");
        if delta_line.is_some() {
            let _ = write!(out, " {:>10}", "Δ(MSC)");
        }
        let _ = writeln!(out);
        for &count in &self.query_counts {
            let _ = write!(out, "{:<10} {:>10.3}", count, self.no_ms_mb);
            for line in &self.lines {
                let _ = write!(out, " {:>10.3}", line.at(count));
            }
            if let Some(line) = delta_line {
                let _ = write!(out, " {:>+10.3}", self.no_ms_mb - line.at(count));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// The query count (if any) at which a line's cumulative traffic first
    /// exceeds the No-MS baseline — the crossover the paper highlights at
    /// ~170 queries for the MS line.
    pub fn crossover(&self, label: &str) -> Option<usize> {
        let line = self.lines.iter().find(|l| l.label == label)?;
        line.cumulative_mb
            .iter()
            .position(|&mb| mb > self.no_ms_mb)
            .map(|idx| idx + 1)
    }
}

/// The result tuple a completed query ships back to its source:
/// `shortestPath(@D, @S, P, C)` with the path vector and hop-count cost.
/// This is the same wire artifact [`sharing::result_wire_bytes`] sizes and
/// [`QueryCache::record_result_delta`] caches, so byte accounting and cache
/// population consume one object.
fn result_delta(path: &[NodeAddr]) -> TupleDelta {
    let hops = path.len() - 1;
    TupleDelta::insert(
        "shortestPath",
        Tuple::new(vec![
            Value::Addr(*path.last().expect("non-empty path")),
            Value::Addr(path[0]),
            Value::list(path.iter().map(|&n| Value::Addr(n)).collect()),
            Value::Float(hops as f64),
        ]),
    )
}

/// Run one magic (source-routing) path query from `src` to `dst`, with
/// exploration blocked at `blocked` nodes (cache hits). The plan and the
/// magic seed tuples both come from the optimizer pipeline carried by
/// `setup` — with magic disabled the pipeline yields no seeds and the query
/// explores all-pairs. Returns the bytes spent, the discovered path (source
/// first) if any, and the exploration state (`pathDst` tuples per node)
/// used to combine partial explorations with cached suffixes.
fn run_magic_query(
    testbed: &Testbed,
    setup: &SourceRoutingSetup,
    src: NodeAddr,
    dst: NodeAddr,
    blocked: BTreeMap<String, std::collections::BTreeSet<NodeAddr>>,
) -> (f64, Option<Vec<NodeAddr>>, Vec<(NodeAddr, Tuple)>) {
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.blocked_propagation = blocked;
    config.max_seconds = 60.0;
    let mut engine = testbed.engine(std::slice::from_ref(&setup.plan), config);
    testbed
        .load_links(&mut engine, "link", Metric::HopCount)
        .expect("link loading");
    for (relation, values) in setup
        .pipeline
        .seeds_for("pathDst", Value::Addr(src))
        .into_iter()
        .chain(setup.pipeline.seeds_for("shortestPath", Value::Addr(dst)))
    {
        let at = values[0].as_addr().expect("magic seeds are addresses");
        engine
            .insert_base(at, &relation, Tuple::new(values))
            .expect("magic seed");
    }
    engine.run_to_quiescence().expect("run");

    let bytes = engine.stats().total_bytes() as f64;
    // The result lives at the destination: shortestPath(@D, @S, P, C).
    let path = engine
        .results("shortestPath")
        .into_iter()
        .find(|(node, t)| {
            *node == dst
                && t.get(0) == Some(&Value::Addr(dst))
                && t.get(1) == Some(&Value::Addr(src))
        })
        .and_then(|(_, t)| {
            t.get(2).and_then(|v| {
                v.as_list().map(|l| {
                    l.iter()
                        .filter_map(|x| x.as_addr())
                        .collect::<Vec<NodeAddr>>()
                })
            })
        });
    let exploration = engine.results("pathDst");
    (bytes, path, exploration)
}

/// When exploration was cut short by the cache, reconstruct the answer from
/// the best (explored prefix + cached suffix) combination over the cache
/// nodes that the exploration actually reached. The resulting path may be a
/// *false positive* (the best path through a cache node rather than the
/// best path overall), which is exactly the caching overhead the paper
/// observes for small query counts.
fn reconstruct_from_cache(
    exploration: &[(NodeAddr, Tuple)],
    cache: &mut QueryCache,
    src: NodeAddr,
    dst: NodeAddr,
) -> Option<Vec<NodeAddr>> {
    let mut best: Option<(f64, Vec<NodeAddr>)> = None;
    for node in cache.nodes_with_entry_for(dst) {
        // Did the exploration reach this cache node? Look for a pathDst
        // tuple for our source stored at it.
        let Some((_, prefix_tuple)) = exploration
            .iter()
            .find(|(n, t)| *n == node && t.get(1) == Some(&Value::Addr(src)))
        else {
            continue;
        };
        let prefix: Vec<NodeAddr> = prefix_tuple
            .get(3)
            .and_then(|v| {
                v.as_list()
                    .map(|l| l.iter().filter_map(|x| x.as_addr()).collect())
            })
            .unwrap_or_default();
        let prefix_cost = prefix_tuple
            .get(4)
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::INFINITY);
        let Some(entry) = cache.lookup(node, dst) else {
            continue;
        };
        let total = prefix_cost + entry.cost;
        let mut full = prefix;
        full.extend(entry.suffix.iter().skip(1));
        match &best {
            Some((cost, _)) if *cost <= total => {}
            _ => best = Some((total, full)),
        }
    }
    best.map(|(_, p)| p)
}

/// Figure 11: magic sets + predicate reordering + result caching, with the
/// full optimizer pipeline.
///
/// `max_queries` queries with random sources; destinations drawn from the
/// full node set (MS / MSC), or from 30% / 10% of nodes (MSC-30% / MSC-10%).
pub fn magic_sets(scale: Scale, max_queries: usize, sample_counts: &[usize]) -> MagicSetsResult {
    magic_sets_with(scale, max_queries, sample_counts, PassSet::ALL)
}

/// Figure 11 with an explicit optimizer pass set. The per-query plan is
/// compiled once through [`Testbed::source_routing_setup`]; the same
/// pipeline then derives the magic seed tuples for each concrete query.
pub fn magic_sets_with(
    scale: Scale,
    max_queries: usize,
    sample_counts: &[usize],
    passes: PassSet,
) -> MagicSetsResult {
    let testbed = Testbed::new(scale);
    let n = testbed.node_count();
    let setup = Testbed::source_routing_setup(passes);

    // Baseline: the unoptimized query computes all-pairs least-hop-count.
    let no_ms_mb = {
        let plan = Testbed::shortest_path_plan(Metric::HopCount);
        let mut config = EngineConfig::default();
        config.node.aggregate_selections = true;
        config.max_seconds = 120.0;
        let mut engine = testbed.engine(&[plan], config);
        testbed
            .load_links(
                &mut engine,
                &Testbed::link_relation(Metric::HopCount),
                Metric::HopCount,
            )
            .expect("link loading");
        engine.run_to_quiescence().expect("run");
        engine.stats().total_mb()
    };

    // Query workloads: (label, fraction of nodes eligible as destinations,
    // caching enabled).
    let workloads: Vec<(&str, f64, bool)> = vec![
        ("MS", 1.0, false),
        ("MSC", 1.0, true),
        ("MSC-30%", 0.3, true),
        ("MSC-10%", 0.1, true),
    ];

    let mut lines = Vec::new();
    for (label, dst_fraction, caching) in workloads {
        let mut rng = StdRng::seed_from_u64(0xf1611);
        let dst_pool = ((n as f64 * dst_fraction).round() as usize).max(1);
        let mut cache = QueryCache::new();
        let mut cumulative = Vec::with_capacity(max_queries);
        let mut total_bytes = 0.0f64;
        for _ in 0..max_queries {
            let src = NodeAddr(rng.random_range(0..n) as u32);
            let mut dst = NodeAddr(rng.random_range(0..dst_pool) as u32);
            if dst == src {
                dst = NodeAddr(((dst.0 as usize + 1) % n) as u32);
            }
            let blocked = if caching {
                cache.blocked_map("pathDst", dst)
            } else {
                BTreeMap::new()
            };
            let (bytes, direct_path, exploration) =
                run_magic_query(&testbed, &setup, src, dst, blocked);
            total_bytes += bytes;

            // Determine the answer path: either the exploration reached the
            // destination directly, or (with caching) a cache node on the
            // way answers with its cached suffix. Account the reverse-path
            // result return, which is also what populates the caches — both
            // from the same wire-format delta the engine would ship.
            let path = if let Some(p) = direct_path {
                Some(p)
            } else if caching {
                reconstruct_from_cache(&exploration, &mut cache, src, dst)
            } else {
                None
            };
            if let Some(path) = &path {
                if path.len() >= 2 {
                    let delta = result_delta(path);
                    let header = ndlog_net::sim::SimConfig::default().header_bytes;
                    total_bytes +=
                        (path.len() - 1) as f64 * sharing::result_wire_bytes(&delta, header) as f64;
                    if caching {
                        cache.record_result_delta(&delta, 2, 3);
                    }
                }
            }
            cumulative.push(total_bytes / 1_000_000.0);
        }
        lines.push(MagicLine {
            label: label.to_string(),
            cumulative_mb: cumulative,
        });
    }

    MagicSetsResult {
        query_counts: sample_counts.to_vec(),
        no_ms_mb,
        lines,
        optimizer: setup.description,
    }
}

// ---------------------------------------------------------------------------
// Figure 12: opportunistic message sharing.
// ---------------------------------------------------------------------------

/// Results of the message-sharing experiment.
#[derive(Debug, Clone)]
pub struct SharingResult {
    /// Per-metric individual bandwidth series (Latency, Reliability, Random).
    pub individual: Vec<(Metric, BandwidthSeries, f64)>,
    /// Summed bandwidth of the three queries run separately (No-Share).
    pub no_share: BandwidthSeries,
    /// Bandwidth of the three queries run concurrently with sharing.
    pub share: BandwidthSeries,
    /// Total MB without sharing.
    pub no_share_mb: f64,
    /// Total MB with sharing.
    pub share_mb: f64,
    /// Optimizer pass level the plans were compiled at (`--optimize`).
    pub optimizer: String,
}

impl SharingResult {
    /// Relative reduction in total communication from sharing.
    pub fn reduction(&self) -> f64 {
        if self.no_share_mb == 0.0 {
            0.0
        } else {
            1.0 - self.share_mb / self.no_share_mb
        }
    }

    /// Render the summary and the bandwidth series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 12: opportunistic message sharing (300 ms delay)"
        );
        let _ = writeln!(out, "optimizer passes: {}", self.optimizer);
        let _ = writeln!(
            out,
            "No-Share: {:.2} MB, peak {:.2} kBps | Share: {:.2} MB, peak {:.2} kBps | reduction {:.0}%",
            self.no_share_mb,
            self.no_share.peak(),
            self.share_mb,
            self.share.peak(),
            self.reduction() * 100.0
        );
        let _ = writeln!(out, "{:<8} {:>12} {:>12}", "t(s)", "No-Share", "Share");
        let buckets = self.no_share.points.len().max(self.share.points.len());
        for i in 0..buckets {
            let _ = writeln!(
                out,
                "{:<8.2} {:>12.2} {:>12.2}",
                (i as f64 + 0.5) * BANDWIDTH_BUCKET_S,
                self.no_share.points.get(i).copied().unwrap_or(0.0),
                self.share.points.get(i).copied().unwrap_or(0.0)
            );
        }
        out
    }
}

/// Figure 12: run the Latency, Reliability and Random queries individually
/// (No-Share) and concurrently with a 300 ms sharing delay (Share), fully
/// optimized.
pub fn message_sharing(scale: Scale) -> SharingResult {
    message_sharing_with(scale, PassSet::ALL)
}

/// Figure 12 at an explicit optimizer pass level.
pub fn message_sharing_with(scale: Scale, passes: PassSet) -> SharingResult {
    let testbed = Testbed::new(scale);
    let metrics = [Metric::Latency, Metric::Reliability, Metric::Random];

    // Individual runs (no sharing).
    let mut individual = Vec::new();
    let mut merged = NetStats::new();
    for &metric in &metrics {
        let plan = Testbed::shortest_path_plan_with(metric, passes);
        let mut config = EngineConfig::default();
        config.node.aggregate_selections = true;
        let mut engine = testbed.engine(&[plan], config);
        testbed
            .load_links(&mut engine, &Testbed::link_relation(metric), metric)
            .expect("link loading");
        engine.run_to_quiescence().expect("run");
        let series = engine
            .stats()
            .per_node_bandwidth_kbps(testbed.node_count(), BANDWIDTH_BUCKET_S);
        individual.push((metric, series, engine.stats().total_mb()));
        merged.merge(engine.stats());
    }
    let no_share = merged.per_node_bandwidth_kbps(testbed.node_count(), BANDWIDTH_BUCKET_S);

    // Concurrent run with sharing.
    let plans: Vec<_> = metrics
        .iter()
        .map(|&m| Testbed::shortest_path_plan_with(m, passes))
        .collect();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.node.sharing_delay = Some(ms(SHARING_DELAY_MS));
    let mut engine = testbed.engine(&plans, config);
    for &metric in &metrics {
        testbed
            .load_links(&mut engine, &Testbed::link_relation(metric), metric)
            .expect("link loading");
    }
    engine.run_to_quiescence().expect("run");
    let share = engine
        .stats()
        .per_node_bandwidth_kbps(testbed.node_count(), BANDWIDTH_BUCKET_S);

    SharingResult {
        individual,
        no_share_mb: merged.total_mb(),
        share_mb: engine.stats().total_mb(),
        no_share,
        share,
        optimizer: passes.label().to_string(),
    }
}

// ---------------------------------------------------------------------------
// Figures 13 & 14: incremental evaluation under bursty updates.
// ---------------------------------------------------------------------------

/// Results of the incremental-update experiments.
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// Per-node bandwidth over the whole run (1 s buckets).
    pub bandwidth: BandwidthSeries,
    /// Peak bandwidth during the initial from-scratch computation (kBps).
    pub initial_peak_kbps: f64,
    /// Peak bandwidth during any update burst (kBps).
    pub burst_peak_kbps: f64,
    /// MB spent on the initial computation.
    pub initial_mb: f64,
    /// Average MB per burst.
    pub avg_burst_mb: f64,
    /// Number of bursts applied.
    pub bursts: usize,
    /// Total run length (seconds).
    pub duration_seconds: f64,
    /// Time the initial computation took to converge (seconds).
    pub initial_convergence_seconds: f64,
    /// Computation overhead of the initial from-scratch run.
    pub initial_computation: ndlog_runtime::EvalStats,
    /// Additional computation overhead across all update bursts.
    pub burst_computation: ndlog_runtime::EvalStats,
    /// Optimizer pass level the plan was compiled at (`--optimize`).
    pub optimizer: String,
}

impl IncrementalResult {
    /// Burst peak as a fraction of the initial peak (the paper reports
    /// ~32%).
    pub fn peak_ratio(&self) -> f64 {
        if self.initial_peak_kbps == 0.0 {
            0.0
        } else {
            self.burst_peak_kbps / self.initial_peak_kbps
        }
    }

    /// Average burst traffic as a fraction of the initial computation (the
    /// paper reports ~26%).
    pub fn traffic_ratio(&self) -> f64 {
        if self.initial_mb == 0.0 {
            0.0
        } else {
            self.avg_burst_mb / self.initial_mb
        }
    }

    /// Render the summary and the bandwidth-over-time series.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "optimizer passes: {}", self.optimizer);
        let _ = writeln!(
            out,
            "initial: {:.2} MB, peak {:.2} kBps, converged in {:.2} s",
            self.initial_mb, self.initial_peak_kbps, self.initial_convergence_seconds
        );
        let _ = writeln!(
            out,
            "bursts: {} applied, avg {:.3} MB each, burst peak {:.2} kBps \
             ({:.0}% of initial peak, {:.0}% of initial traffic per burst)",
            self.bursts,
            self.avg_burst_mb,
            self.burst_peak_kbps,
            self.peak_ratio() * 100.0,
            self.traffic_ratio() * 100.0
        );
        let _ = writeln!(
            out,
            "computation: initial {} tuples examined ({} probes, {} distinct, \
             {} scans); bursts added {} examined ({} probes, {} distinct, {} scans)",
            self.initial_computation.tuples_examined,
            self.initial_computation.logical_probes,
            self.initial_computation.distinct_probes,
            self.initial_computation.scans,
            self.burst_computation.tuples_examined,
            self.burst_computation.logical_probes,
            self.burst_computation.distinct_probes,
            self.burst_computation.scans
        );
        let _ = writeln!(out, "{:<8} {:>14}", "t(s)", "kBps/node");
        for (i, v) in self.bandwidth.points.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<8.1} {:>14.2}",
                (i as f64 + 0.5) * self.bandwidth.bucket_seconds,
                v
            );
        }
        out
    }
}

/// Shared driver for Figures 13 and 14: run the Random-metric query to
/// convergence, then apply update bursts separated by the given intervals
/// (cycled) until `total_seconds` of simulated time have elapsed.
pub fn incremental_updates_with_intervals(
    scale: Scale,
    intervals: &[f64],
    total_seconds: f64,
) -> IncrementalResult {
    incremental_updates_with_intervals_and_passes(scale, intervals, total_seconds, PassSet::ALL)
}

/// [`incremental_updates_with_intervals`] at an explicit optimizer pass
/// level.
pub fn incremental_updates_with_intervals_and_passes(
    scale: Scale,
    intervals: &[f64],
    total_seconds: f64,
    passes: PassSet,
) -> IncrementalResult {
    assert!(!intervals.is_empty());
    let testbed = Testbed::new(scale);
    let metric = Metric::Random;
    let plan = Testbed::shortest_path_plan_with(metric, passes);
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.max_seconds = total_seconds + 60.0;
    let mut engine = testbed.engine(&[plan], config);
    let link_relation = Testbed::link_relation(metric);
    testbed
        .load_links(&mut engine, &link_relation, metric)
        .expect("link loading");
    engine.run_to_quiescence().expect("initial run");

    let initial_convergence = engine
        .convergence(&Testbed::shortest_path_relation(metric))
        .convergence_seconds;
    let initial_mb = engine.stats().total_mb();
    let initial_computation = engine.computation_stats();
    let initial_peak = engine
        .stats()
        .per_node_bandwidth_kbps(testbed.node_count(), 1.0)
        .peak();

    let mut workload = UpdateWorkload::paper(&testbed.links, metric, 0xf1613);
    let mut burst_mb = Vec::new();
    let mut t = engine.now_seconds().max(1.0).ceil();
    let mut interval_idx = 0;
    while t < total_seconds {
        t += intervals[interval_idx % intervals.len()];
        interval_idx += 1;
        if t >= total_seconds {
            break;
        }
        engine.run_until(t).expect("run to burst time");
        let before = engine.stats().total_mb();
        for update in workload.burst() {
            engine
                .apply_link_update(&link_relation, &update)
                .expect("apply update");
        }
        // Let the burst's consequences propagate until the next burst; the
        // traffic is attributed to this burst when we sample right before
        // the next one.
        let next = (t + intervals[interval_idx % intervals.len()]).min(total_seconds);
        engine.run_until(next).expect("run after burst");
        burst_mb.push(engine.stats().total_mb() - before);
    }
    engine.run_until(total_seconds).expect("final run");

    let bandwidth = engine
        .stats()
        .per_node_bandwidth_kbps(testbed.node_count(), 1.0);
    // Burst peak: the highest bucket after the initial convergence window.
    let skip = (initial_convergence + 1.0).ceil() as usize;
    let burst_peak = bandwidth
        .points
        .iter()
        .skip(skip)
        .copied()
        .fold(0.0, f64::max);

    IncrementalResult {
        bandwidth,
        initial_peak_kbps: initial_peak,
        burst_peak_kbps: burst_peak,
        initial_mb,
        avg_burst_mb: if burst_mb.is_empty() {
            0.0
        } else {
            burst_mb.iter().sum::<f64>() / burst_mb.len() as f64
        },
        bursts: burst_mb.len(),
        duration_seconds: total_seconds,
        initial_convergence_seconds: initial_convergence,
        initial_computation,
        burst_computation: engine.computation_stats() - initial_computation,
        optimizer: passes.label().to_string(),
    }
}

// ---------------------------------------------------------------------------
// Parallel scaling: the epoch executor across thread counts.
// ---------------------------------------------------------------------------

/// One parallel-scaling measurement: the same workload at one executor
/// thread count.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// Executor threads (1 = epochs evaluated inline on the caller).
    pub threads: usize,
    /// Wall-clock time of the run, in seconds.
    pub wall_seconds: f64,
    /// Simulated time at quiescence, in seconds.
    pub sim_seconds: f64,
    /// Messages sent (must be identical across thread counts).
    pub messages: usize,
    /// Megabytes sent (must be identical across thread counts).
    pub total_mb: f64,
    /// Whether the run quiesced before the time cap — a `false` here means
    /// the workload was truncated and the wall/speedup numbers are not a
    /// convergence measurement.
    pub quiesced: bool,
    /// Whether this run's stores, statistics and message trace were
    /// bit-for-bit identical to the 1-thread baseline.
    pub identical: bool,
    /// Mean number of deliveries merged into one receive batch by the
    /// delivery coalescer (schedule-invariant across thread counts).
    pub receive_batch_width: f64,
    /// Bytes a per-message allocator would have needed for wire buffers.
    pub arena_demand_bytes: u64,
    /// Backing capacity the wire-buffer arenas actually allocated.
    pub arena_allocated_bytes: u64,
}

impl ScalingRun {
    /// Simulated messages processed per wall-clock second.
    pub fn messages_per_sec(&self) -> f64 {
        self.messages as f64 / self.wall_seconds.max(f64::MIN_POSITIVE)
    }

    /// Mean wire bytes per message (payload + headers).
    pub fn bytes_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_mb * 1e6 / self.messages as f64
        }
    }

    /// Buffer-churn reduction achieved by the wire-buffer arenas:
    /// per-message allocation demand over actual allocation.
    pub fn arena_reduction(&self) -> f64 {
        if self.arena_allocated_bytes == 0 {
            if self.arena_demand_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.arena_demand_bytes as f64 / self.arena_allocated_bytes as f64
        }
    }
}

/// Results of the parallel-scaling experiment.
#[derive(Debug, Clone)]
pub struct ParallelScalingResult {
    /// Scale label (for reports).
    pub scale: Scale,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// CPUs available to this process — wall-clock speedup is bounded by
    /// this, so a reader can tell a 1-core CI measurement (which only
    /// demonstrates that epoch overhead is negligible) from a real
    /// multicore one.
    pub cpus: usize,
    /// Human-readable context for the numbers (most importantly: whether
    /// the host was CPU-pinned below the thread count, which caps speedup
    /// at ~1.0 regardless of the executor). Serialized into the JSON
    /// report so trajectory comparisons across commits stay honest.
    pub note: String,
    /// One run per thread count, 1 first.
    pub runs: Vec<ScalingRun>,
}

impl ParallelScalingResult {
    /// Wall-clock speedup of the run at `threads` over the 1-thread run.
    /// Only meaningful when the host has at least `threads` CPUs; the
    /// render and JSON annotate the `cpus < threads` case.
    pub fn speedup(&self, threads: usize) -> f64 {
        let base = self.runs.iter().find(|r| r.threads == 1);
        let run = self.runs.iter().find(|r| r.threads == threads);
        match (base, run) {
            (Some(b), Some(r)) if r.wall_seconds > 0.0 => b.wall_seconds / r.wall_seconds,
            _ => 0.0,
        }
    }

    /// Per-thread efficiency of the run at `threads`: speedup divided by
    /// the thread count (1.0 = perfect scaling). This is the honest
    /// scaling framing — raw speedup flatters high thread counts.
    pub fn efficiency(&self, threads: usize) -> f64 {
        self.speedup(threads) / threads.max(1) as f64
    }

    /// Render the scaling table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Parallel epoch executor scaling ({} nodes, scale {}, to quiescence)",
            self.nodes,
            self.scale.label()
        );
        let max_threads = self.runs.iter().map(|r| r.threads).max().unwrap_or(1);
        if self.cpus < max_threads {
            let _ = writeln!(
                out,
                "note: only {} CPU(s) available — wall-clock speedup/efficiency are capped \
                 by the host, not the executor",
                self.cpus
            );
        }
        if self.runs.iter().any(|r| !r.quiesced) {
            let _ = writeln!(
                out,
                "WARNING: some runs hit the time cap before quiescing — wall/speedup numbers \
                 are truncated, not convergence measurements"
            );
        }
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8} {:>8} {:>10} {:>8} {:>7} {:>9} {:>10}",
            "threads",
            "wall (s)",
            "speedup",
            "eff/thr",
            "msg/s",
            "B/msg",
            "width",
            "MB",
            "identical"
        );
        for r in &self.runs {
            let _ = writeln!(
                out,
                "{:<8} {:>10.3} {:>7.2}x {:>8.2} {:>10.0} {:>8.1} {:>7.2} {:>9.2} {:>10}",
                r.threads,
                r.wall_seconds,
                self.speedup(r.threads),
                self.efficiency(r.threads),
                r.messages_per_sec(),
                r.bytes_per_message(),
                r.receive_batch_width,
                r.total_mb,
                r.identical
            );
        }
        if let Some(r) = self.runs.first() {
            let _ = writeln!(
                out,
                "wire-buffer arena: {:.2} MB demanded, {:.2} MB allocated ({:.1}x reduction)",
                r.arena_demand_bytes as f64 / 1e6,
                r.arena_allocated_bytes as f64 / 1e6,
                r.arena_reduction()
            );
        }
        out
    }

    /// Serialize as a machine-readable JSON report (one entry of the
    /// `BENCH_parallel_scaling.json` trajectory format: topology size,
    /// threads, wall time, messages, throughput and the coalescing/arena
    /// counters).
    pub fn to_json(&self) -> String {
        self.to_json_indented("")
    }

    fn to_json_indented(&self, pad: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{pad}  \"bench\": \"parallel_scaling\",");
        let _ = writeln!(out, "{pad}  \"scale\": \"{}\",", self.scale.label());
        let _ = writeln!(out, "{pad}  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "{pad}  \"cpus\": {},", self.cpus);
        let _ = writeln!(out, "{pad}  \"note\": \"{}\",", self.note);
        let _ = writeln!(out, "{pad}  \"runs\": [");
        for (i, r) in self.runs.iter().enumerate() {
            let comma = if i + 1 < self.runs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{pad}    {{\"threads\": {}, \"wall_seconds\": {:.6}, \"sim_seconds\": {:.6}, \
                 \"messages\": {}, \"total_mb\": {:.6}, \"speedup\": {:.4}, \
                 \"efficiency\": {:.4}, \"messages_per_sec\": {:.1}, \
                 \"bytes_per_message\": {:.2}, \"receive_batch_width\": {:.4}, \
                 \"arena_demand_bytes\": {}, \"arena_allocated_bytes\": {}, \
                 \"arena_reduction\": {:.4}, \"quiesced\": {}, \"identical\": {}}}{comma}",
                r.threads,
                r.wall_seconds,
                r.sim_seconds,
                r.messages,
                r.total_mb,
                self.speedup(r.threads),
                self.efficiency(r.threads),
                r.messages_per_sec(),
                r.bytes_per_message(),
                r.receive_batch_width,
                r.arena_demand_bytes,
                r.arena_allocated_bytes,
                r.arena_reduction(),
                r.quiesced,
                r.identical
            );
        }
        let _ = writeln!(out, "{pad}  ]");
        let _ = writeln!(out, "{pad}}}");
        out
    }
}

/// A multi-scale scaling trajectory: the same thread ladder measured at
/// several topology sizes (the committed `BENCH_parallel_scaling.json`
/// carries `large` first — downstream flat-scanner consumers read the
/// first `wall_seconds`/`messages` occurrence, i.e. large at 1 thread —
/// followed by the bigger Zipf-driven scales).
#[derive(Debug, Clone)]
pub struct ScalingTrajectory {
    /// One scaling result per scale, in measurement order.
    pub entries: Vec<ParallelScalingResult>,
}

impl ScalingTrajectory {
    /// Render every entry's table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(out);
            }
            out.push_str(&entry.render());
        }
        out
    }

    /// Serialize the trajectory. The top level keeps the
    /// `"bench": "parallel_scaling"` marker and a single entry keeps the
    /// flat single-scale layout, so existing consumers (CI greps, the
    /// vectorization `--reference` scanner) read both shapes unchanged.
    pub fn to_json(&self) -> String {
        if self.entries.len() == 1 {
            return self.entries[0].to_json();
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"parallel_scaling\",");
        let _ = writeln!(out, "  \"trajectory\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            let block = entry.to_json_indented("    ");
            if i + 1 < self.entries.len() {
                out.push_str(block.trim_end());
                out.push_str(",\n");
            } else {
                out.push_str(&block);
            }
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Number of Zipf-skewed source-routing queries driving the scales where
/// all-pairs is infeasible.
fn traffic_flows(scale: Scale) -> usize {
    match scale {
        Scale::OneK => 48,
        Scale::FourK => 24,
        Scale::TenK => 12,
        _ => 0,
    }
}

/// Run the scaling workload to quiescence once per thread count, measuring
/// wall-clock time and verifying that every parallel run is bit-for-bit
/// identical to the 1-thread baseline.
///
/// At all-pairs-feasible scales (≤ 264 nodes) the workload is the
/// Hop-Count shortest-path query over the whole overlay. At the 1k/4k/10k
/// scales all-pairs is infeasible, so the workload becomes a Zipf-skewed
/// traffic matrix of source-routing (magic) queries — the bounded,
/// popularity-weighted query set such an overlay would actually serve.
pub fn parallel_scaling(scale: Scale, thread_counts: &[usize]) -> ParallelScalingResult {
    let testbed = Testbed::new(scale);
    let metric = Metric::HopCount;
    let flows = if scale.all_pairs_feasible() {
        Vec::new()
    } else {
        let nodes: Vec<NodeAddr> = testbed.overlay.graph.nodes().collect();
        ndlog_net::gtitm::zipf_traffic_matrix(&nodes, traffic_flows(scale), 1.0, 0x5ca1e)
    };
    let routing = (!flows.is_empty()).then(|| Testbed::source_routing_setup(PassSet::ALL));

    let execute = |threads: usize| {
        let mut config = EngineConfig::default();
        config.node.aggregate_selections = true;
        config.max_seconds = 300.0;
        config.parallelism = threads;
        let mut engine = match &routing {
            None => {
                let plan = Testbed::shortest_path_plan(metric);
                let mut engine = testbed.engine(&[plan], config);
                testbed
                    .load_links(&mut engine, &Testbed::link_relation(metric), metric)
                    .expect("link loading");
                engine
            }
            Some(setup) => {
                let mut engine = testbed.engine(std::slice::from_ref(&setup.plan), config);
                testbed
                    .load_links(&mut engine, "link", metric)
                    .expect("link loading");
                for flow in &flows {
                    for (relation, values) in setup
                        .pipeline
                        .seeds_for("pathDst", Value::Addr(flow.src))
                        .into_iter()
                        .chain(
                            setup
                                .pipeline
                                .seeds_for("shortestPath", Value::Addr(flow.dst)),
                        )
                    {
                        let at = values[0].as_addr().expect("magic seeds are addresses");
                        engine
                            .insert_base(at, &relation, Tuple::new(values))
                            .expect("magic seed");
                    }
                }
                engine
            }
        };
        let start = std::time::Instant::now();
        let report = engine.run_to_quiescence().expect("run");
        (engine, report, start.elapsed().as_secs_f64())
    };

    let mut counts: Vec<usize> = thread_counts.to_vec();
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts.sort_unstable();
    counts.dedup();

    let mut baseline: Option<ndlog_core::DistributedEngine> = None;
    let mut runs = Vec::new();
    for &threads in &counts {
        let (engine, report, wall) = execute(threads);
        let identical = match &baseline {
            None => true,
            Some(base) => ndlog_core::consistency::check_bitwise_identical(base, &engine).is_ok(),
        };
        let delivery = engine.delivery_stats();
        let arena = engine.arena_stats();
        runs.push(ScalingRun {
            threads,
            wall_seconds: wall,
            sim_seconds: report.seconds,
            messages: report.messages,
            total_mb: report.total_mb,
            quiesced: report.quiesced,
            identical,
            receive_batch_width: delivery.mean_batch_width(),
            arena_demand_bytes: arena.demand_bytes,
            arena_allocated_bytes: arena.allocated_bytes(),
        });
        if threads == 1 {
            baseline = Some(engine);
        }
    }

    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let max_threads = counts.iter().copied().max().unwrap_or(1);
    let note = if cpus < max_threads {
        format!(
            "host pinned to {cpus} CPU(s) (CI containers are 1-CPU-pinned): wall-clock speedup \
             is capped by the host, so these numbers demonstrate only that epoch/steal overhead \
             is negligible; re-measure on a multicore host for real scaling"
        )
    } else {
        format!("measured on a host with {cpus} CPU(s) for up to {max_threads} executor threads")
    };
    ParallelScalingResult {
        scale,
        nodes: testbed.node_count(),
        cpus,
        note,
        runs,
    }
}

// ---------------------------------------------------------------------------
// Adversity: lossy links + crash/rejoin waves healed by soft-state refresh.
// ---------------------------------------------------------------------------

/// Soft-state TTL (seconds) declared by the adversity grid's program.
const ADVERSITY_TTL_S: f64 = 5.0;
/// Refresh (re-announcement) interval for the adversity grid, seconds.
const ADVERSITY_REFRESH_S: f64 = 2.0;
/// When the random link faults (loss/duplication/jitter) switch off.
const ADVERSITY_FAULTS_END_S: f64 = 8.0;
/// Default fault-plan seed used by the committed `BENCH_adversity.json`
/// and the CI smoke run; any other seed replays a different but equally
/// deterministic fault schedule.
pub const ADVERSITY_SEED: u64 = 0xad5eed;

/// One cell of the adversity grid: a loss-rate × crash-wave combination
/// run to quiescence under soft-state refresh, then judged against the
/// Dijkstra oracle on the (fully healed) topology.
#[derive(Debug, Clone)]
pub struct AdversityCell {
    /// Per-message loss probability while faults are active.
    pub loss: f64,
    /// Number of crash/rejoin waves in the schedule.
    pub crash_waves: usize,
    /// Total nodes crashed across all waves.
    pub crashed_nodes: usize,
    /// Whether the post-quiescence routing state equals the Dijkstra
    /// oracle at every node (and the run actually quiesced).
    pub converged: bool,
    /// Whether the 2-thread run was bit-for-bit identical to 1-thread.
    pub identical: bool,
    /// Whether the run quiesced before the time cap.
    pub quiesced: bool,
    /// Time at which the last result reached its final value (seconds).
    pub convergence_seconds: f64,
    /// Messages sent over the whole run (includes refresh traffic).
    pub messages: usize,
    /// Total communication (MB).
    pub total_mb: f64,
    /// Traffic sent after the last scheduled fault (MB) — the sustained
    /// soft-state refresh overhead, no longer doing repair work.
    pub refresh_mb: f64,
    /// Messages dropped by the fault plan (loss + partition + crash).
    pub dropped: u64,
    /// Of `dropped`: random loss draws.
    pub loss_drops: u64,
    /// Of `dropped`: messages whose receiver was down on arrival.
    pub crash_drops: u64,
    /// Extra copies delivered by duplication draws.
    pub duplicated: u64,
    /// Messages that drew nonzero jitter.
    pub delayed: u64,
    /// Distinct insertions the fault plan dropped in flight.
    pub dropped_inserts: usize,
    /// Of `dropped_inserts`: present at their destination at the end
    /// (healed by a later refresh cycle; obsolete insertions — replaced,
    /// pruned as non-best or expired — legitimately stay unrepaired).
    pub repaired: usize,
    /// Refresh tasks executed across all nodes.
    pub refresh_ticks: u64,
    /// Seed facts re-announced by those tasks.
    pub refresh_reannounced: u64,
}

/// Results of the adversity experiment: the full grid at one scale.
#[derive(Debug, Clone)]
pub struct AdversityResult {
    /// Scale label (for reports).
    pub scale: Scale,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Fault-plan seed (the whole grid is replayable from it).
    pub seed: u64,
    /// Soft-state TTL declared by the program (seconds).
    pub ttl_seconds: f64,
    /// Refresh interval driving re-announcement (seconds).
    pub refresh_interval_seconds: f64,
    /// One cell per loss × crash-wave combination.
    pub cells: Vec<AdversityCell>,
}

impl AdversityResult {
    /// Render the grid table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Adversity grid ({} nodes, scale {}, seed {:#x}): loss × crash waves under \
             soft-state refresh (TTL {} s, refresh every {} s)",
            self.nodes,
            self.scale.label(),
            self.seed,
            self.ttl_seconds,
            self.refresh_interval_seconds
        );
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>7} {:>8} {:>8} {:>8} {:>10} {:>8} {:>14} {:>6} {:>9} {:>9}",
            "loss",
            "waves",
            "crashed",
            "conv(s)",
            "msgs",
            "MB",
            "refresh MB",
            "dropped",
            "repaired/ins",
            "ticks",
            "converged",
            "identical"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<6.2} {:>5} {:>7} {:>8.2} {:>8} {:>8.2} {:>10.2} {:>8} {:>8}/{:<5} {:>6} {:>9} {:>9}",
                c.loss,
                c.crash_waves,
                c.crashed_nodes,
                c.convergence_seconds,
                c.messages,
                c.total_mb,
                c.refresh_mb,
                c.dropped,
                c.repaired,
                c.dropped_inserts,
                c.refresh_ticks,
                c.converged,
                c.identical
            );
        }
        out
    }

    /// Serialize as the `BENCH_adversity.json` machine-readable report.
    /// The `"converged"` / `"identical"` booleans are what the CI smoke
    /// step greps for.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"adversity\",");
        let _ = writeln!(out, "  \"scale\": \"{}\",", self.scale.label());
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"ttl_seconds\": {},", self.ttl_seconds);
        let _ = writeln!(
            out,
            "  \"refresh_interval_seconds\": {},",
            self.refresh_interval_seconds
        );
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"loss\": {:.2}, \"crash_waves\": {}, \"crashed_nodes\": {}, \
                 \"converged\": {}, \"identical\": {}, \"quiesced\": {}, \
                 \"convergence_seconds\": {:.6}, \"messages\": {}, \"total_mb\": {:.6}, \
                 \"refresh_mb\": {:.6}, \"dropped\": {}, \"loss_drops\": {}, \
                 \"crash_drops\": {}, \"duplicated\": {}, \"delayed\": {}, \
                 \"dropped_inserts\": {}, \"repaired\": {}, \"refresh_ticks\": {}, \
                 \"refresh_reannounced\": {}}}{comma}",
                c.loss,
                c.crash_waves,
                c.crashed_nodes,
                c.converged,
                c.identical,
                c.quiesced,
                c.convergence_seconds,
                c.messages,
                c.total_mb,
                c.refresh_mb,
                c.dropped,
                c.loss_drops,
                c.crash_drops,
                c.duplicated,
                c.delayed,
                c.dropped_inserts,
                c.repaired,
                c.refresh_ticks,
                c.refresh_reannounced
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Whether every node's routing state equals the Dijkstra oracle on the
/// overlay: each node holds exactly one shortest-path tuple per reachable
/// destination, with the oracle's cost, and nothing else.
fn adversity_converged(
    engine: &ndlog_core::DistributedEngine,
    testbed: &Testbed,
    relation: &str,
    metric: Metric,
) -> bool {
    let mut per_node: BTreeMap<NodeAddr, BTreeMap<NodeAddr, f64>> = BTreeMap::new();
    for (node, tuple) in engine.results(relation) {
        let (Some(src), Some(dst), Some(cost)) = (
            tuple.get(0).and_then(|v| v.as_addr()),
            tuple.get(1).and_then(|v| v.as_addr()),
            tuple.get(3).and_then(|v| v.as_f64()),
        ) else {
            return false;
        };
        // Results must live at their own source (`@S` locality).
        if src != node {
            return false;
        }
        per_node.entry(node).or_default().insert(dst, cost);
    }
    for src in testbed.overlay.graph.nodes() {
        let oracle = testbed.overlay.graph.shortest_distances(src, metric);
        let mut found = per_node.remove(&src).unwrap_or_default();
        for dst in testbed.overlay.graph.nodes() {
            if dst == src {
                continue;
            }
            let want = oracle[dst.index()];
            match found.remove(&dst) {
                Some(got) => {
                    if !want.is_finite() || (got - want).abs() > 1e-6 {
                        return false;
                    }
                }
                None => {
                    if want.is_finite() {
                        return false;
                    }
                }
            }
        }
        // Tuples for destinations the oracle can't reach at all.
        if !found.is_empty() {
            return false;
        }
    }
    per_node.is_empty()
}

/// Run the soft-state shortest-path query across a loss-rate × churn grid
/// of deterministic fault plans: every cell suffers random message loss,
/// duplication and jitter until [`ADVERSITY_FAULTS_END_S`], plus zero or
/// more crash/rejoin waves taking down ~10% of the overlay, while periodic
/// refresh re-announces seed facts so lost state heals by TTL turnover.
/// Each cell runs at 1 and 2 executor threads and checks bitwise identity,
/// then compares the post-quiescence routing state against the Dijkstra
/// oracle on the (fully healed) topology.
pub fn adversity(scale: Scale, seed: u64) -> AdversityResult {
    let testbed = Testbed::new(scale);
    let metric = Metric::Reliability;
    let nodes = testbed.node_count();
    let link_rel = Testbed::link_relation(metric);
    let sp_rel = Testbed::shortest_path_relation(metric);
    let program =
        ndlog_lang::programs::shortest_path_soft(Testbed::metric_suffix(metric), ADVERSITY_TTL_S);
    let query = ndlog_core::plan(&program).expect("soft shortest-path plans");
    let addrs: Vec<NodeAddr> = testbed.overlay.graph.nodes().collect();

    let mut cells = Vec::new();
    for &loss in &[0.10, 0.25] {
        for &crash_waves in &[0usize, 1] {
            // Deterministic crash roster: each wave takes down ~10% of the
            // overlay (at least one node), staggered 1.5 s apart, each node
            // rejoining 1.5 s after it went down.
            let wave_size = (nodes / 10).max(1);
            let mut picked: BTreeSet<usize> = BTreeSet::new();
            let mut crashes: Vec<(NodeAddr, f64, f64)> = Vec::new();
            for wave in 0..crash_waves {
                let at = 3.0 + 1.5 * wave as f64;
                for i in 0..wave_size {
                    let mut idx = (1 + wave * 5 + i * 7) % nodes;
                    while picked.contains(&idx) {
                        idx = (idx + 1) % nodes;
                    }
                    picked.insert(idx);
                    crashes.push((addrs[idx], at, at + 1.5));
                }
            }
            let last_fault_s = crashes
                .iter()
                .map(|c| c.2)
                .fold(ADVERSITY_FAULTS_END_S, f64::max);
            // Refresh must outlive the faults by TTL (so stale remote state
            // expires) plus a few cycles (so live state is re-announced
            // after the last expiry pass).
            let horizon_s = last_fault_s + ADVERSITY_TTL_S + 4.0 * ADVERSITY_REFRESH_S;
            let cell_seed = seed ^ (((loss * 1000.0) as u64) << 8) ^ crash_waves as u64;

            let fault_for_run = || {
                let mut plan = FaultPlan::new(cell_seed)
                    .with_default_faults(LinkFaults {
                        loss,
                        duplicate: 0.05,
                        jitter_ms: 2.0,
                    })
                    .with_active_until(ms(ADVERSITY_FAULTS_END_S * 1000.0));
                for &(node, at, rejoin) in &crashes {
                    plan = plan.with_crash(node, ms(at * 1000.0), ms(rejoin * 1000.0));
                }
                plan
            };
            let execute = |threads: usize| {
                let mut config = EngineConfig::default();
                config.node.aggregate_selections = true;
                config.parallelism = threads;
                config.max_seconds = horizon_s + 30.0;
                config.fault = Some(fault_for_run());
                config.refresh = Some(RefreshConfig {
                    interval_seconds: ADVERSITY_REFRESH_S,
                    horizon_seconds: horizon_s,
                });
                let mut engine = testbed.engine(std::slice::from_ref(&query), config);
                testbed
                    .load_links(&mut engine, &link_rel, metric)
                    .expect("link loading");
                let report = engine.run_to_quiescence().expect("adversity run");
                (engine, report)
            };

            let (engine, report) = execute(1);
            let (parallel, _) = execute(2);
            let identical =
                ndlog_core::consistency::check_bitwise_identical(&engine, &parallel).is_ok();
            let converged =
                report.quiesced && adversity_converged(&engine, &testbed, &sp_rel, metric);
            let fault = engine.fault_stats();
            let repair = engine.fault_repair_report();
            cells.push(AdversityCell {
                loss,
                crash_waves,
                crashed_nodes: crashes.len(),
                converged,
                identical,
                quiesced: report.quiesced,
                convergence_seconds: engine.convergence(&sp_rel).convergence_seconds,
                messages: report.messages,
                total_mb: report.total_mb,
                refresh_mb: engine.stats().mb_in_window(last_fault_s, f64::INFINITY),
                dropped: fault.dropped,
                loss_drops: fault.loss_drops,
                crash_drops: fault.crash_drops,
                duplicated: fault.duplicated,
                delayed: fault.delayed,
                dropped_inserts: repair.dropped_inserts,
                repaired: repair.repaired,
                refresh_ticks: repair.refresh_ticks,
                refresh_reannounced: repair.refresh_reannounced,
            });
        }
    }
    AdversityResult {
        scale,
        nodes,
        seed,
        ttl_seconds: ADVERSITY_TTL_S,
        refresh_interval_seconds: ADVERSITY_REFRESH_S,
        cells,
    }
}

// ---------------------------------------------------------------------------
// Micro runtime: the indexed-join hot path, tuple-at-a-time vs batch-delta.
// ---------------------------------------------------------------------------

/// Wall-clock measurements of the runtime's join hot path: one strand
/// probing a `relation_size`-tuple relation with `matches_per_probe`
/// matches per trigger, fired tuple-at-a-time (`fire_counted`), in a delta
/// batch without and with key-grouped probe sharing, and tuple-at-a-time
/// without the index (full scan) — plus a **duplicate-key** trigger set
/// (Zipf-ish key frequencies, the shape path-exploration and flooding
/// batches actually have) fired through both batch paths, which is where
/// grouping's one-probe-per-distinct-key amortization shows.
#[derive(Debug, Clone)]
pub struct MicroRuntimeResult {
    /// Stored tuples in the probed relation.
    pub relation_size: usize,
    /// Matching tuples per probe.
    pub matches_per_probe: usize,
    /// Triggers per batch (and per timed pass).
    pub batch_size: usize,
    /// Timed passes per path (after one warmup pass).
    pub iters: usize,
    /// Tuple-at-a-time firing through the index, µs per trigger.
    pub indexed_fire_us: f64,
    /// Batch-delta firing through the index with one probe per trigger
    /// (the ungrouped PR 4 path), µs per trigger.
    pub indexed_batch_us: f64,
    /// Batch-delta firing with key-grouped probe sharing (the default
    /// engine path), µs per trigger, same uniform workload.
    pub indexed_grouped_us: f64,
    /// Tuple-at-a-time firing without the index (full scan), µs per
    /// trigger.
    pub scan_fire_us: f64,
    /// Distinct probe keys in the duplicate-key trigger set.
    pub dup_distinct_keys: usize,
    /// Ungrouped batch firing on the duplicate-key workload, µs/trigger.
    pub dup_batch_us: f64,
    /// Grouped batch firing on the duplicate-key workload, µs/trigger.
    pub dup_grouped_us: f64,
    /// Full node delivery path, one `receive` + `process` per trigger (the
    /// pre-coalescing engine schedule), µs per trigger.
    pub delivery_per_event_us: f64,
    /// Full node delivery path with all of a batch's payloads received
    /// before one `process` (the coalesced engine schedule), µs/trigger.
    pub delivery_coalesced_us: f64,
}

impl MicroRuntimeResult {
    /// Speedup of (ungrouped) batch-delta over tuple-at-a-time on the
    /// indexed path.
    pub fn batch_speedup(&self) -> f64 {
        self.indexed_fire_us / self.indexed_batch_us.max(f64::MIN_POSITIVE)
    }

    /// Speedup of key-grouped probe sharing over per-trigger probing on
    /// the duplicate-key workload.
    pub fn grouping_speedup(&self) -> f64 {
        self.dup_batch_us / self.dup_grouped_us.max(f64::MIN_POSITIVE)
    }

    /// Speedup of the indexed probe over the full scan (tuple-at-a-time).
    pub fn indexed_vs_scan_speedup(&self) -> f64 {
        self.scan_fire_us / self.indexed_fire_us.max(f64::MIN_POSITIVE)
    }

    /// Speedup of the coalesced delivery schedule over per-event delivery
    /// on the full node path.
    pub fn coalescing_speedup(&self) -> f64 {
        self.delivery_per_event_us / self.delivery_coalesced_us.max(f64::MIN_POSITIVE)
    }

    /// Render the measurement table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Runtime join micro-bench ({} tuples, {} matches/probe, batch of {})",
            self.relation_size, self.matches_per_probe, self.batch_size
        );
        let _ = writeln!(out, "{:<34} {:>14}", "path", "µs / trigger");
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "indexed, tuple-at-a-time", self.indexed_fire_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "indexed, batch per-trigger probes", self.indexed_batch_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "indexed, batch grouped probes", self.indexed_grouped_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "scan, tuple-at-a-time", self.scan_fire_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            format!("dup-key ({} keys), per-trigger", self.dup_distinct_keys),
            self.dup_batch_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            format!("dup-key ({} keys), grouped", self.dup_distinct_keys),
            self.dup_grouped_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "node delivery, per-event", self.delivery_per_event_us
        );
        let _ = writeln!(
            out,
            "{:<34} {:>14.3}",
            "node delivery, coalesced", self.delivery_coalesced_us
        );
        let _ = writeln!(out, "batch speedup: {:.2}x", self.batch_speedup());
        let _ = writeln!(
            out,
            "grouping speedup (dup keys): {:.2}x",
            self.grouping_speedup()
        );
        let _ = writeln!(
            out,
            "indexed vs scan: {:.2}x",
            self.indexed_vs_scan_speedup()
        );
        let _ = writeln!(
            out,
            "delivery coalescing speedup: {:.2}x",
            self.coalescing_speedup()
        );
        out
    }

    /// Serialize as the `BENCH_micro_runtime.json` format.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"micro_runtime\",");
        let _ = writeln!(out, "  \"relation_size\": {},", self.relation_size);
        let _ = writeln!(out, "  \"matches_per_probe\": {},", self.matches_per_probe);
        let _ = writeln!(out, "  \"batch_size\": {},", self.batch_size);
        let _ = writeln!(out, "  \"iters\": {},", self.iters);
        let _ = writeln!(
            out,
            "  \"indexed_fire_us_per_trigger\": {:.4},",
            self.indexed_fire_us
        );
        let _ = writeln!(
            out,
            "  \"indexed_batch_us_per_trigger\": {:.4},",
            self.indexed_batch_us
        );
        let _ = writeln!(
            out,
            "  \"indexed_grouped_us_per_trigger\": {:.4},",
            self.indexed_grouped_us
        );
        let _ = writeln!(
            out,
            "  \"scan_fire_us_per_trigger\": {:.4},",
            self.scan_fire_us
        );
        let _ = writeln!(out, "  \"dup_distinct_keys\": {},", self.dup_distinct_keys);
        let _ = writeln!(
            out,
            "  \"dup_batch_us_per_trigger\": {:.4},",
            self.dup_batch_us
        );
        let _ = writeln!(
            out,
            "  \"dup_grouped_us_per_trigger\": {:.4},",
            self.dup_grouped_us
        );
        let _ = writeln!(
            out,
            "  \"delivery_per_event_us_per_trigger\": {:.4},",
            self.delivery_per_event_us
        );
        let _ = writeln!(
            out,
            "  \"delivery_coalesced_us_per_trigger\": {:.4},",
            self.delivery_coalesced_us
        );
        let _ = writeln!(
            out,
            "  \"coalescing_speedup\": {:.4},",
            self.coalescing_speedup()
        );
        let _ = writeln!(out, "  \"batch_speedup\": {:.4},", self.batch_speedup());
        let _ = writeln!(
            out,
            "  \"grouping_speedup\": {:.4},",
            self.grouping_speedup()
        );
        let _ = writeln!(
            out,
            "  \"indexed_vs_scan_speedup\": {:.4}",
            self.indexed_vs_scan_speedup()
        );
        let _ = writeln!(out, "}}");
        out
    }
}

/// Run the join micro-bench: the `rc2` reachability strand probing a
/// `link` relation of 10⁴ tuples (10 matching per probe), with a batch of
/// 256 triggers per pass — the original uniform workload (every trigger
/// probes the same key) plus a duplicate-key workload whose probe keys
/// follow a Zipf-ish frequency curve (rank r gets ~(BATCH/3)/r triggers:
/// 12 distinct keys, the hottest taking ~85 of the 256).
/// Deterministic workload, wall-clock timed.
pub fn micro_runtime() -> MicroRuntimeResult {
    use ndlog_runtime::batch::{BatchOutput, BatchScratch, BatchTrigger};
    use ndlog_runtime::strand::JoinStats;
    use ndlog_runtime::{CompiledStrand, Store, TupleDelta};

    const RELATION_SIZE: usize = 10_000;
    const MATCHES: usize = 10;
    const BATCH: usize = 256;
    const ITERS: usize = 40;
    const SCAN_ITERS: usize = 4;

    let program =
        ndlog_lang::parse_program("rc2 reach(@S,@D) :- #link(@S,@Z,C), reach(@Z,@D).").unwrap();
    let strands: Vec<CompiledStrand> = ndlog_lang::seminaive::delta_rewrite_full(&program)
        .into_iter()
        .map(CompiledStrand::new)
        .collect();
    let strand = strands
        .iter()
        .find(|s| s.trigger_relation() == "reach")
        .unwrap();
    let build_store = |indexed: bool| -> Store {
        let mut store = Store::new();
        if indexed {
            store.declare_indexes(strands.iter());
        }
        for i in 0..RELATION_SIZE as u32 {
            // Exactly MATCHES links point at node 1 (the probed bucket).
            let dst = if i % (RELATION_SIZE as u32 / MATCHES as u32) == 0 {
                1
            } else {
                2 + (i % 97)
            };
            store.apply(&TupleDelta::insert(
                "link",
                Tuple::new(vec![
                    Value::addr(1000 + i),
                    Value::addr(dst),
                    Value::Float(1.0),
                ]),
            ));
        }
        store
    };
    let indexed = build_store(true);
    let scan = build_store(false);
    let triggers: Vec<TupleDelta> = (0..BATCH as u32)
        .map(|d| {
            TupleDelta::insert(
                "reach",
                Tuple::new(vec![Value::addr(1u32), Value::addr(10_000 + d)]),
            )
        })
        .collect();

    let time_fire = |store: &Store, iters: usize| -> f64 {
        let mut stats = JoinStats::default();
        // Warmup + timed passes.
        for t in &triggers {
            let out = strand.fire_counted(store, t, u64::MAX, &mut stats).unwrap();
            assert_eq!(out.len(), MATCHES);
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            for t in &triggers {
                let out = strand.fire_counted(store, t, u64::MAX, &mut stats).unwrap();
                assert_eq!(out.len(), MATCHES);
            }
        }
        start.elapsed().as_secs_f64() * 1e6 / (iters * BATCH) as f64
    };

    let indexed_fire_us = time_fire(&indexed, ITERS);
    let scan_fire_us = time_fire(&scan, SCAN_ITERS);

    let mut scratch = BatchScratch::default();
    let mut out = BatchOutput::default();
    let mut time_batch = |store: &Store, deltas: &[TupleDelta], grouped: bool| -> f64 {
        let batch: Vec<BatchTrigger> = deltas
            .iter()
            .map(|delta| BatchTrigger {
                delta,
                seq_limit: u64::MAX,
            })
            .collect();
        let mut stats = JoinStats::default();
        let mut fire = |out: &mut BatchOutput| {
            if grouped {
                strand
                    .fire_batch(store, &batch, &mut stats, &mut scratch, out)
                    .unwrap();
            } else {
                strand
                    .fire_batch_ungrouped(store, &batch, &mut stats, &mut scratch, out)
                    .unwrap();
            }
            assert_eq!(out.all().len(), MATCHES * BATCH);
        };
        fire(&mut out); // warmup
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            fire(&mut out);
        }
        start.elapsed().as_secs_f64() * 1e6 / (ITERS * BATCH) as f64
    };

    let indexed_batch_us = time_batch(&indexed, &triggers, false);
    let indexed_grouped_us = time_batch(&indexed, &triggers, true);

    // The duplicate-key workload: every destination key 1..=1000 has
    // exactly MATCHES incoming links, and the 256 triggers probe a
    // Zipf-ish mix of them — rank r gets ~(BATCH/3)/r triggers (12
    // distinct keys, the hottest ~85 of 256). The stored links share
    // their location column (as every per-node `link` table does — the
    // location specifier is the node itself), so primary keys only
    // diverge in later columns, exactly the key-comparison shape real
    // node stores have.
    let mut dup_store = Store::new();
    dup_store.declare_indexes(strands.iter());
    for i in 0..RELATION_SIZE as u32 {
        dup_store.apply(&TupleDelta::insert(
            "link",
            Tuple::new(vec![
                Value::addr(1u32),
                Value::addr(1 + (i % 1000)),
                Value::Float(f64::from(i)),
            ]),
        ));
    }
    let mut dup_dsts: Vec<u32> = Vec::with_capacity(BATCH);
    let mut rank = 1u32;
    while dup_dsts.len() < BATCH {
        let copies = ((BATCH as u32 / 3) / rank).max(1) as usize;
        for _ in 0..copies.min(BATCH - dup_dsts.len()) {
            dup_dsts.push(rank);
        }
        rank += 1;
    }
    let dup_distinct_keys = {
        let mut keys = dup_dsts.clone();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    let dup_triggers: Vec<TupleDelta> = dup_dsts
        .iter()
        .enumerate()
        .map(|(d, &dst)| {
            TupleDelta::insert(
                "reach",
                Tuple::new(vec![Value::addr(dst), Value::addr(30_000 + d as u32)]),
            )
        })
        .collect();
    let dup_batch_us = time_batch(&dup_store, &dup_triggers, false);
    let dup_grouped_us = time_batch(&dup_store, &dup_triggers, true);

    // The delivery-path comparison: the same uniform trigger stream pushed
    // through a full NodeEngine — store clock, PSN queue, outbound routing,
    // arena recycling — once with a receive+process round per trigger (the
    // per-event schedule) and once with a whole batch received before a
    // single process (the coalesced schedule). Triggers are unique per
    // pass so every pass derives fresh tuples.
    let mk_node = || {
        let mut node = ndlog_core::NodeEngine::new(
            NodeAddr(1),
            &[],
            std::sync::Arc::new(strands.clone()),
            ndlog_core::NodeConfig::default(),
        )
        .expect("micro node engine");
        let links: Vec<TupleDelta> = (0..RELATION_SIZE as u32)
            .map(|i| {
                let dst = if i % (RELATION_SIZE as u32 / MATCHES as u32) == 0 {
                    1
                } else {
                    2 + (i % 97)
                };
                TupleDelta::insert(
                    "link",
                    Tuple::new(vec![
                        Value::addr(1000 + i),
                        Value::addr(dst),
                        Value::Float(1.0),
                    ]),
                )
            })
            .collect();
        node.receive(links);
        node.process().expect("link ingestion");
        node
    };
    let time_delivery = |coalesced: bool| -> f64 {
        let mut node = mk_node();
        let run_pass = |node: &mut ndlog_core::NodeEngine, pass: u32| {
            let base = 100_000 + pass * BATCH as u32;
            for d in 0..BATCH as u32 {
                node.receive(vec![TupleDelta::insert(
                    "reach",
                    Tuple::new(vec![Value::addr(1u32), Value::addr(base + d)]),
                )]);
                if !coalesced {
                    node.process().expect("per-event process");
                }
            }
            if coalesced {
                node.process().expect("coalesced process");
            }
        };
        run_pass(&mut node, 0); // warmup
        let start = std::time::Instant::now();
        for pass in 0..ITERS as u32 {
            run_pass(&mut node, pass + 1);
        }
        start.elapsed().as_secs_f64() * 1e6 / (ITERS * BATCH) as f64
    };
    let delivery_per_event_us = time_delivery(false);
    let delivery_coalesced_us = time_delivery(true);

    MicroRuntimeResult {
        relation_size: RELATION_SIZE,
        matches_per_probe: MATCHES,
        batch_size: BATCH,
        iters: ITERS,
        indexed_fire_us,
        indexed_batch_us,
        indexed_grouped_us,
        scan_fire_us,
        dup_distinct_keys,
        dup_batch_us,
        dup_grouped_us,
        delivery_per_event_us,
        delivery_coalesced_us,
    }
}

// ---------------------------------------------------------------------------
// Batch vectorization: micro join speedup + end-to-end scaling wall clock.
// ---------------------------------------------------------------------------

/// A prior scaling measurement to compare against (typically the committed
/// `BENCH_parallel_scaling.json` from before a change): 1-thread wall
/// seconds and the message count that must not change.
#[derive(Debug, Clone, Copy)]
pub struct ScalingReference {
    /// Wall seconds of the reference 1-thread run.
    pub wall_seconds: f64,
    /// Messages sent by the reference run.
    pub messages: usize,
}

/// The batch-vectorization report: the micro join bench (tuple-at-a-time
/// vs batch) plus a fresh end-to-end scaling run, with an optional
/// before-change reference for the wall-clock comparison.
#[derive(Debug, Clone)]
pub struct BatchVectorizationResult {
    /// The micro join measurements.
    pub micro: MicroRuntimeResult,
    /// The end-to-end scaling runs (1 thread first).
    pub scaling: ParallelScalingResult,
    /// The before-change reference, if one was supplied.
    pub reference: Option<ScalingReference>,
}

impl BatchVectorizationResult {
    fn baseline_run(&self) -> &ScalingRun {
        self.scaling
            .runs
            .iter()
            .find(|r| r.threads == 1)
            .expect("a 1-thread baseline is always run")
    }

    /// Wall-clock improvement of the 1-thread run over the reference
    /// (>1 = faster now), when a reference exists.
    pub fn wall_improvement(&self) -> Option<f64> {
        let run = self.baseline_run();
        self.reference
            .map(|r| r.wall_seconds / run.wall_seconds.max(f64::MIN_POSITIVE))
    }

    /// Render the report.
    pub fn render(&self) -> String {
        let mut out = self.micro.render();
        let _ = writeln!(out);
        out.push_str(&self.scaling.render());
        if let (Some(reference), Some(improvement)) = (self.reference, self.wall_improvement()) {
            let run = self.baseline_run();
            let _ = writeln!(
                out,
                "vs reference: {:.3} s -> {:.3} s at 1 thread ({:.2}x), messages {} -> {}",
                reference.wall_seconds,
                run.wall_seconds,
                improvement,
                reference.messages,
                run.messages
            );
        }
        out
    }

    /// Serialize as the `BENCH_batch_vectorization.json` format.
    pub fn to_json(&self) -> String {
        let run = self.baseline_run();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"batch_vectorization\",");
        let _ = writeln!(out, "  \"micro\": {{");
        let _ = writeln!(
            out,
            "    \"indexed_fire_us_per_trigger\": {:.4},",
            self.micro.indexed_fire_us
        );
        let _ = writeln!(
            out,
            "    \"indexed_batch_us_per_trigger\": {:.4},",
            self.micro.indexed_batch_us
        );
        let _ = writeln!(
            out,
            "    \"indexed_grouped_us_per_trigger\": {:.4},",
            self.micro.indexed_grouped_us
        );
        let _ = writeln!(
            out,
            "    \"dup_distinct_keys\": {},",
            self.micro.dup_distinct_keys
        );
        let _ = writeln!(
            out,
            "    \"dup_batch_us_per_trigger\": {:.4},",
            self.micro.dup_batch_us
        );
        let _ = writeln!(
            out,
            "    \"dup_grouped_us_per_trigger\": {:.4},",
            self.micro.dup_grouped_us
        );
        let _ = writeln!(
            out,
            "    \"batch_speedup\": {:.4},",
            self.micro.batch_speedup()
        );
        let _ = writeln!(
            out,
            "    \"grouping_speedup\": {:.4}",
            self.micro.grouping_speedup()
        );
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"scaling\": {{");
        let _ = writeln!(out, "    \"scale\": \"{}\",", self.scaling.scale.label());
        let _ = writeln!(out, "    \"nodes\": {},", self.scaling.nodes);
        let _ = writeln!(out, "    \"cpus\": {},", self.scaling.cpus);
        let _ = writeln!(out, "    \"note\": \"{}\",", self.scaling.note);
        let _ = writeln!(out, "    \"wall_seconds\": {:.6},", run.wall_seconds);
        let _ = writeln!(out, "    \"messages\": {},", run.messages);
        let _ = writeln!(out, "    \"total_mb\": {:.6},", run.total_mb);
        let _ = writeln!(out, "    \"quiesced\": {},", run.quiesced);
        let identical = self.scaling.runs.iter().all(|r| r.identical);
        let same_messages = self.scaling.runs.iter().all(|r| r.messages == run.messages);
        let _ = writeln!(out, "    \"identical\": {}", identical && same_messages);
        let _ = writeln!(out, "  }},");
        match (self.reference, self.wall_improvement()) {
            (Some(reference), Some(improvement)) => {
                let _ = writeln!(out, "  \"reference\": {{");
                let _ = writeln!(out, "    \"wall_seconds\": {:.6},", reference.wall_seconds);
                let _ = writeln!(out, "    \"messages\": {},", reference.messages);
                let _ = writeln!(
                    out,
                    "    \"same_messages\": {},",
                    reference.messages == run.messages
                );
                let _ = writeln!(out, "    \"wall_improvement\": {:.4}", improvement);
                let _ = writeln!(out, "  }}");
            }
            _ => {
                let _ = writeln!(out, "  \"reference\": null");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Measure the batch-vectorization work end to end: the micro join bench
/// plus a scaling run at 1/2/4 threads (bit-identity verified in-run),
/// optionally against a before-change reference.
pub fn batch_vectorization(
    scale: Scale,
    reference: Option<ScalingReference>,
) -> BatchVectorizationResult {
    let micro = micro_runtime();
    let scaling = parallel_scaling(scale, &[1, 2, 4]);
    BatchVectorizationResult {
        micro,
        scaling,
        reference,
    }
}

/// Figure 13: bursts every 10 s for 250 s.
pub fn incremental_updates(scale: Scale) -> IncrementalResult {
    incremental_updates_with(scale, PassSet::ALL)
}

/// Figure 13 at an explicit optimizer pass level.
pub fn incremental_updates_with(scale: Scale, passes: PassSet) -> IncrementalResult {
    let total = match scale {
        Scale::Small | Scale::Medium => 60.0,
        _ => 250.0,
    };
    incremental_updates_with_intervals_and_passes(scale, &[10.0], total, passes)
}

/// Figure 14: interleaved 2 s and 8 s bursts for 250 s.
pub fn incremental_updates_interleaved(scale: Scale) -> IncrementalResult {
    incremental_updates_interleaved_with(scale, PassSet::ALL)
}

/// Figure 14 at an explicit optimizer pass level.
pub fn incremental_updates_interleaved_with(scale: Scale, passes: PassSet) -> IncrementalResult {
    let total = match scale {
        Scale::Small | Scale::Medium => 60.0,
        _ => 250.0,
    };
    incremental_updates_with_intervals_and_passes(scale, &[2.0, 8.0], total, passes)
}

// ---------------------------------------------------------------------------
// Optimizer bench: the committed-baseline gate over the Figure 11 pipeline.
// ---------------------------------------------------------------------------

/// The optimizer benchmark: the Figure 11 magic-sets run distilled into the
/// few numbers CI gates on — cumulative MB of the fully-optimized MS / MSC
/// lines at each sampled query count against the unoptimized all-pairs
/// baseline, plus the crossover point at which per-query magic exploration
/// stops paying off.
#[derive(Debug, Clone)]
pub struct OptimizerBenchResult {
    /// Scale the bench ran at.
    pub scale: Scale,
    /// `Report::describe()` of the rewrites the per-query plans carry.
    pub optimizer: String,
    /// Sampled query counts (x-axis).
    pub query_counts: Vec<usize>,
    /// Unoptimized all-pairs communication (MB), flat in the query count.
    pub baseline_no_ms_mb: f64,
    /// Magic-sets line (MB) at each sampled count.
    pub ms_mb: Vec<f64>,
    /// Magic-sets-plus-caching line (MB) at each sampled count.
    pub msc_mb: Vec<f64>,
    /// Query count at which MS first exceeds the baseline, if it does.
    pub ms_crossover: Option<usize>,
}

impl OptimizerBenchResult {
    /// Cumulative MB of the fully-optimized pipeline after the first query
    /// — the headline number the CI gate compares against the committed
    /// baseline and the unoptimized run.
    pub fn first_query_mb(&self) -> f64 {
        self.ms_mb.first().copied().unwrap_or(0.0)
    }

    /// Render the gate summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Optimizer bench ({} scale)", self.scale.label());
        let _ = writeln!(out, "optimizer: {}", self.optimizer);
        let _ = writeln!(
            out,
            "baseline (no optimizer, all-pairs): {:.3} MB",
            self.baseline_no_ms_mb
        );
        let _ = writeln!(out, "{:<10} {:>10} {:>10}", "queries", "MS", "MSC");
        for (i, &count) in self.query_counts.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<10} {:>10.3} {:>10.3}",
                count, self.ms_mb[i], self.msc_mb[i]
            );
        }
        match self.ms_crossover {
            Some(at) => {
                let _ = writeln!(out, "MS crossover vs baseline: {at} queries");
            }
            None => {
                let _ = writeln!(out, "MS crossover vs baseline: not reached");
            }
        }
        out
    }

    /// Serialize as the `BENCH_optimizer.json` format. The gate fields
    /// (`first_query_mb`, `baseline_no_ms_mb`) are scalars so the flat JSON
    /// scanner in the `experiments` binary can read them back.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"optimizer\",");
        let _ = writeln!(out, "  \"scale\": \"{}\",", self.scale.label());
        let _ = writeln!(out, "  \"optimizer\": \"{}\",", self.optimizer);
        let _ = writeln!(
            out,
            "  \"baseline_no_ms_mb\": {:.6},",
            self.baseline_no_ms_mb
        );
        let _ = writeln!(out, "  \"first_query_mb\": {:.6},", self.first_query_mb());
        for (i, &count) in self.query_counts.iter().enumerate() {
            let _ = writeln!(out, "  \"ms_mb_at_{}\": {:.6},", count, self.ms_mb[i]);
            let _ = writeln!(out, "  \"msc_mb_at_{}\": {:.6},", count, self.msc_mb[i]);
        }
        match self.ms_crossover {
            Some(at) => {
                let _ = writeln!(out, "  \"ms_crossover\": {at}");
            }
            None => {
                let _ = writeln!(out, "  \"ms_crossover\": null");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

/// Run the optimizer bench: one fully-optimized Figure 11 run, reduced to
/// the sampled MS / MSC lines and the crossover.
pub fn optimizer_bench(
    scale: Scale,
    max_queries: usize,
    sample_counts: &[usize],
) -> OptimizerBenchResult {
    let fig11 = magic_sets_with(scale, max_queries, sample_counts, PassSet::ALL);
    let line = |label: &str| -> Vec<f64> {
        let line = fig11
            .lines
            .iter()
            .find(|l| l.label == label)
            .expect("workload line present");
        fig11.query_counts.iter().map(|&c| line.at(c)).collect()
    };
    OptimizerBenchResult {
        scale,
        optimizer: fig11.optimizer.clone(),
        query_counts: fig11.query_counts.clone(),
        baseline_no_ms_mb: fig11.no_ms_mb,
        ms_mb: line("MS"),
        msc_mb: line("MSC"),
        ms_crossover: fig11.crossover("MS"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_aggregate_selections() {
        let result = aggregate_selections(Scale::Small);
        assert_eq!(result.runs.len(), 4);
        for run in &result.runs {
            assert!(run.total_mb > 0.0);
            assert!(run.convergence_seconds > 0.0);
            assert!(run.pruned > 0, "selections prune something on every metric");
            let last = run.completion.last().unwrap().1;
            assert!((last - 1.0).abs() < 1e-9, "completion reaches 100%");
        }
        // The Random metric is the stress case: it should need at least as
        // much traffic as the Hop-Count query.
        let random = result.run_for(Metric::Random).total_mb;
        let hops = result.run_for(Metric::HopCount).total_mb;
        assert!(random >= hops * 0.8, "random {random} vs hops {hops}");
        assert!(!result.render().is_empty());
    }

    #[test]
    fn small_scale_periodic_reduces_traffic() {
        let eager = aggregate_selections(Scale::Small);
        let periodic = periodic_aggregate_selections(Scale::Small);
        let eager_total: f64 = eager.runs.iter().map(|r| r.total_mb).sum();
        let periodic_total: f64 = periodic.runs.iter().map(|r| r.total_mb).sum();
        assert!(
            periodic_total <= eager_total,
            "periodic {periodic_total} should not exceed eager {eager_total}"
        );
        assert!(!periodic.render().is_empty());
    }

    #[test]
    fn small_scale_magic_sets_shapes() {
        let result = magic_sets(Scale::Small, 12, &[4, 8, 12]);
        assert!(result.no_ms_mb > 0.0);
        assert_eq!(result.lines.len(), 4);
        for line in &result.lines {
            assert_eq!(line.cumulative_mb.len(), 12);
            // Cumulative traffic is non-decreasing.
            assert!(line.cumulative_mb.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        }
        // A single magic query is much cheaper than the all-pairs baseline.
        let ms = &result.lines[0];
        assert!(ms.at(1) < result.no_ms_mb);
        // Restricting destinations to 10% of nodes increases cache reuse, so
        // MSC-10% spends no more than plain MSC.
        let msc = result.lines.iter().find(|l| l.label == "MSC").unwrap();
        let msc10 = result.lines.iter().find(|l| l.label == "MSC-10%").unwrap();
        assert!(msc10.at(12) <= msc.at(12) * 1.05);
        assert!(!result.render().is_empty());
    }

    #[test]
    fn small_scale_sharing_reduces_bytes() {
        let result = message_sharing(Scale::Small);
        assert_eq!(result.individual.len(), 3);
        assert!(result.share_mb < result.no_share_mb);
        assert!(result.reduction() > 0.0);
        assert!(!result.render().is_empty());
    }

    #[test]
    fn small_scale_parallel_scaling_is_identical() {
        let result = parallel_scaling(Scale::Small, &[2, 4]);
        assert_eq!(result.nodes, 14);
        assert_eq!(result.runs.len(), 3, "a 1-thread baseline is always run");
        assert!(result.runs.iter().all(|r| r.identical));
        assert!(result.runs.iter().all(|r| r.quiesced));
        let messages: Vec<usize> = result.runs.iter().map(|r| r.messages).collect();
        assert!(
            messages.windows(2).all(|w| w[0] == w[1]),
            "message counts must not depend on the thread count"
        );
        assert!(!result.render().is_empty());
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"parallel_scaling\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"cpus\": "));
        assert!(
            json.contains("\"note\": \""),
            "the report must carry the host-pinning note"
        );
    }

    #[test]
    fn micro_and_vectorization_json_shapes() {
        // The measurement itself runs in release via the CI smoke step;
        // here only the report formats are checked.
        let micro = MicroRuntimeResult {
            relation_size: 10_000,
            matches_per_probe: 10,
            batch_size: 256,
            iters: 40,
            indexed_fire_us: 9.0,
            indexed_batch_us: 4.5,
            indexed_grouped_us: 3.0,
            scan_fire_us: 120.0,
            dup_distinct_keys: 30,
            dup_batch_us: 4.0,
            dup_grouped_us: 2.0,
            delivery_per_event_us: 6.0,
            delivery_coalesced_us: 1.5,
        };
        assert!((micro.batch_speedup() - 2.0).abs() < 1e-9);
        assert!((micro.grouping_speedup() - 2.0).abs() < 1e-9);
        assert!((micro.coalescing_speedup() - 4.0).abs() < 1e-9);
        let json = micro.to_json();
        assert!(json.contains("\"bench\": \"micro_runtime\""));
        assert!(json.contains("\"delivery_per_event_us_per_trigger\": 6.0000"));
        assert!(json.contains("\"delivery_coalesced_us_per_trigger\": 1.5000"));
        assert!(json.contains("\"indexed_batch_us_per_trigger\": 4.5000"));
        assert!(json.contains("\"indexed_grouped_us_per_trigger\": 3.0000"));
        assert!(json.contains("\"dup_grouped_us_per_trigger\": 2.0000"));
        assert!(json.contains("\"batch_speedup\": 2.0000"));
        assert!(json.contains("\"grouping_speedup\": 2.0000"));
        assert!(!micro.render().is_empty());

        let scaling = parallel_scaling(Scale::Small, &[2]);
        let result = BatchVectorizationResult {
            micro,
            scaling,
            reference: Some(ScalingReference {
                wall_seconds: 1.0,
                messages: 0,
            }),
        };
        let json = result.to_json();
        assert!(json.contains("\"bench\": \"batch_vectorization\""));
        assert!(json.contains("\"reference\": {"));
        assert!(json.contains("\"wall_improvement\": "));
        assert!(result.wall_improvement().unwrap() > 0.0);
        assert!(!result.render().is_empty());
    }

    #[test]
    fn small_scale_incremental_updates() {
        let result = incremental_updates_with_intervals(Scale::Small, &[5.0], 30.0);
        assert!(result.bursts >= 3);
        assert!(result.initial_mb > 0.0);
        assert!(result.avg_burst_mb > 0.0);
        assert!(
            result.avg_burst_mb < result.initial_mb,
            "incremental recomputation is cheaper than from scratch"
        );
        assert!(!result.render("test").is_empty());
    }
}
