//! Experiment harness for the paper's evaluation (Section 6).
//!
//! The harness reproduces every figure of the evaluation:
//!
//! | figure | experiment | function |
//! |---|---|---|
//! | 7 / 8 | aggregate selections: per-node bandwidth and % results over time for the four metric queries | [`experiments::aggregate_selections`] |
//! | 9 / 10 | periodic aggregate selections | [`experiments::periodic_aggregate_selections`] |
//! | 11 | magic sets, predicate reordering and caching: aggregate communication vs number of queries | [`experiments::magic_sets`] |
//! | 12 | opportunistic message sharing across three concurrent metric queries | [`experiments::message_sharing`] |
//! | 13 | incremental evaluation under bursty updates (10 s interval) | [`experiments::incremental_updates`] |
//! | 14 | incremental evaluation under interleaved 2 s / 8 s bursts | [`experiments::incremental_updates_interleaved`] |
//!
//! Every experiment can run at [`testbed::Scale::Paper`] (the 100-node
//! Emulab-style transit-stub overlay) or [`testbed::Scale::Small`] (a
//! 14-node topology used by tests and Criterion benches so they finish
//! quickly). The `experiments` binary prints each figure's series as a
//! table; `EXPERIMENTS.md` records a paper-vs-measured comparison.

pub mod experiments;
pub mod testbed;

pub use testbed::{Scale, SourceRoutingSetup, Testbed};
