//! Command-line driver that regenerates the paper's figures.
//!
//! ```text
//! cargo run --release -p ndlog-bench --bin experiments -- <figure> [scale]
//!
//! <figure>  fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 | summary | all
//! [scale]   paper (default, 100 nodes) | small (14 nodes)
//! ```
//!
//! Figures 7/8 and 9/10 come from the same runs, so either name prints both
//! series.

use ndlog_bench::experiments::{
    aggregate_selections, incremental_updates, incremental_updates_interleaved, magic_sets,
    message_sharing, periodic_aggregate_selections,
};
use ndlog_bench::Scale;
use ndlog_net::topology::Metric;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|summary|all> [paper|small]"
    );
    std::process::exit(2);
}

fn magic_query_counts(scale: Scale) -> (usize, Vec<usize>) {
    match scale {
        Scale::Paper => (200, vec![25, 50, 75, 100, 125, 150, 175, 200]),
        Scale::Small => (12, vec![4, 8, 12]),
    }
}

fn run_figure(figure: &str, scale: Scale) {
    match figure {
        "fig7" | "fig8" => {
            println!("{}", aggregate_selections(scale).render());
        }
        "fig9" | "fig10" => {
            println!("{}", periodic_aggregate_selections(scale).render());
        }
        "fig11" => {
            let (max, samples) = magic_query_counts(scale);
            let result = magic_sets(scale, max, &samples);
            println!("{}", result.render());
            if let Some(cross) = result.crossover("MS") {
                println!("MS line crosses the No-MS baseline after {cross} queries");
            } else {
                println!("MS line stays below the No-MS baseline for the measured range");
            }
        }
        "fig12" => {
            println!("{}", message_sharing(scale).render());
        }
        "fig13" => {
            println!(
                "{}",
                incremental_updates(scale)
                    .render("Figure 13: bursty link updates every 10 s (Random metric)")
            );
        }
        "fig14" => {
            println!(
                "{}",
                incremental_updates_interleaved(scale)
                    .render("Figure 14: interleaved 2 s / 8 s update bursts (Random metric)")
            );
        }
        "summary" => {
            summary(scale);
        }
        "all" => {
            for f in [
                "fig7", "fig9", "fig11", "fig12", "fig13", "fig14", "summary",
            ] {
                run_figure(f, scale);
                println!();
            }
        }
        _ => usage(),
    }
}

/// The quantitative claims of Section 6's summary, paper value vs measured.
fn summary(scale: Scale) {
    println!("Section 6 summary claims (paper vs this reproduction, scale: {scale:?})");
    let eager = aggregate_selections(scale);
    let periodic = periodic_aggregate_selections(scale);

    println!("\nClaim 1/2: periodic aggregate selections reduce communication (paper: 12-29%)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "metric", "eager MB", "periodic MB", "reduction"
    );
    for metric in Metric::ALL {
        let e = eager.run_for(metric).total_mb;
        let p = periodic.run_for(metric).total_mb;
        let reduction = if e > 0.0 { (1.0 - p / e) * 100.0 } else { 0.0 };
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>11.1}%",
            metric.label(),
            e,
            p,
            reduction
        );
    }
    println!("\nConvergence order (paper: Hop-Count fastest at 4.4 s, Random slowest at 5.8 s):");
    for metric in Metric::ALL {
        println!(
            "  {:<14} {:>8.2} s   {:>8.2} MB",
            metric.label(),
            eager.run_for(metric).convergence_seconds,
            eager.run_for(metric).total_mb
        );
    }

    println!(
        "\nClaim 3: message sharing reduces communication (paper: 34% total, peak 27 -> 16 kBps)"
    );
    let sharing = message_sharing(scale);
    println!(
        "  No-Share {:.2} MB (peak {:.2} kBps) vs Share {:.2} MB (peak {:.2} kBps): {:.0}% reduction",
        sharing.no_share_mb,
        sharing.no_share.peak(),
        sharing.share_mb,
        sharing.share.peak(),
        sharing.reduction() * 100.0
    );

    println!("\nClaim 4: incremental evaluation under bursty updates (paper: burst peak ~32% of initial peak, ~26% of aggregate)");
    let inc = incremental_updates(scale);
    println!(
        "  initial {:.2} MB / peak {:.2} kBps; burst avg {:.3} MB / peak {:.2} kBps ({:.0}% of peak, {:.0}% of traffic)",
        inc.initial_mb,
        inc.initial_peak_kbps,
        inc.avg_burst_mb,
        inc.burst_peak_kbps,
        inc.peak_ratio() * 100.0,
        inc.traffic_ratio() * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let figure = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
    let scale = match args.get(2).map(String::as_str) {
        None => Scale::Paper,
        Some(s) => Scale::parse(s).unwrap_or_else(|| usage()),
    };
    run_figure(figure, scale);
}
