//! Command-line driver that regenerates the paper's figures and the
//! runtime performance reports.
//!
//! ```text
//! cargo run --release -p ndlog-bench --bin experiments -- <figure> [scale] [options]
//!
//! <figure>    fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 |
//!             scaling | micro | vectorization | optimizer | summary | all
//! [scale]     paper (default, 100 nodes) | small (14 nodes) | medium (52) |
//!             large (264) | 1k (1010) | 4k (4016) | 10k (10100); `scaling`
//!             also accepts a comma list (e.g. large,1k) and emits one
//!             trajectory report covering every listed scale
//! --optimize P  optimizer pass level for the figure experiments:
//!             off | magic | reorder | all (default all). Every figure's
//!             plans compile through the same optimizer pipeline; this
//!             flag restricts which rewrite passes it applies.
//! --threads N maximum executor thread count for the `scaling` figure
//!             (measures 1..=N in powers of two; default 4)
//! --json PATH write the figure's machine-readable JSON report
//!             (scaling -> BENCH_parallel_scaling.json format,
//!              micro -> BENCH_micro_runtime.json format,
//!              vectorization -> BENCH_batch_vectorization.json format,
//!              optimizer -> BENCH_optimizer.json format)
//! --baseline PATH  (`micro`, `optimizer`) compare against the committed
//!             JSON report and exit non-zero on a >2x regression — the CI
//!             smoke gates
//! --reference PATH (`vectorization` only) a prior scaling JSON whose
//!             1-thread run becomes the before-change wall-clock reference
//! ```
//!
//! Figures 7/8 and 9/10 come from the same runs, so either name prints both
//! series. `scaling` runs the shortest-path workload once per thread count
//! on the parallel epoch executor and reports wall-clock speedups plus a
//! bit-for-bit identity check against the sequential baseline.

use ndlog_bench::experiments::{
    adversity, aggregate_selections, aggregate_selections_with, batch_vectorization,
    incremental_updates, incremental_updates_interleaved_with, incremental_updates_with,
    magic_sets_with, message_sharing, message_sharing_with, micro_runtime, optimizer_bench,
    parallel_scaling, periodic_aggregate_selections, periodic_aggregate_selections_with,
    ScalingReference, ScalingTrajectory, ADVERSITY_SEED,
};
use ndlog_bench::Scale;
use ndlog_lang::PassSet;
use ndlog_net::topology::Metric;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|scaling|micro|\
         vectorization|optimizer|adversity|summary|all> [paper|small|medium|large|1k|4k|10k] \
         (comma list for `scaling`) [--optimize off|magic|reorder|all] \
         [--threads N] [--json PATH] [--baseline PATH] [--reference PATH]"
    );
    std::process::exit(2);
}

/// Parsed command line.
struct Options {
    figure: String,
    scale: Scale,
    /// Every scale the `scaling` figure should measure (a comma list on
    /// the command line); always contains `scale` first.
    scales: Vec<Scale>,
    /// Maximum executor thread count for the scaling figure.
    threads: usize,
    /// Where to write the figure's JSON report, if anywhere.
    json: Option<String>,
    /// Committed micro-bench JSON to gate regressions against.
    baseline: Option<String>,
    /// Prior scaling JSON used as the vectorization reference.
    reference: Option<String>,
    /// Optimizer pass level for the figure experiments.
    optimize: PassSet,
}

fn parse_args(args: &[String]) -> Options {
    let mut positional = Vec::new();
    let mut threads = None;
    let mut json = None;
    let mut baseline = None;
    let mut reference = None;
    let mut optimize = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--optimize" => {
                optimize = Some(
                    iter.next()
                        .and_then(|v| PassSet::parse(v))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => {
                json = Some(iter.next().cloned().unwrap_or_else(|| usage()));
            }
            "--baseline" => {
                baseline = Some(iter.next().cloned().unwrap_or_else(|| usage()));
            }
            "--reference" => {
                reference = Some(iter.next().cloned().unwrap_or_else(|| usage()));
            }
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(arg.clone()),
        }
    }
    let figure = positional.first().cloned().unwrap_or_else(|| usage());
    let scales: Vec<Scale> = match positional.get(1) {
        None => vec![Scale::Paper],
        Some(s) => s
            .split(',')
            .map(|part| Scale::parse(part).unwrap_or_else(|| usage()))
            .collect(),
    };
    if scales.len() > 1 && figure != "scaling" {
        eprintln!("a comma list of scales applies only to the `scaling` figure");
        usage();
    }
    if positional.len() > 2 {
        usage();
    }
    // Flags only drive specific figures; rejecting them elsewhere beats
    // silently ignoring them.
    let takes_json = matches!(
        figure.as_str(),
        "scaling" | "micro" | "vectorization" | "optimizer" | "adversity" | "all"
    );
    if !takes_json && json.is_some() {
        eprintln!(
            "--json applies only to scaling, micro, vectorization, optimizer, adversity (or all)"
        );
        usage();
    }
    if threads.is_some() && figure != "scaling" && figure != "all" {
        eprintln!("--threads applies only to the `scaling` (or `all`) figure");
        usage();
    }
    if baseline.is_some() && figure != "micro" && figure != "optimizer" {
        eprintln!("--baseline applies only to the `micro` and `optimizer` figures");
        usage();
    }
    if reference.is_some() && figure != "vectorization" {
        eprintln!("--reference applies only to the `vectorization` figure");
        usage();
    }
    Options {
        figure,
        scale: scales[0],
        scales,
        threads: threads.unwrap_or(4),
        json,
        baseline,
        reference,
        optimize: optimize.unwrap_or(PassSet::ALL),
    }
}

/// Extract the first `"field": <number>` occurrence from a JSON report.
/// The reports are flat machine-written files, so a scan beats pulling a
/// JSON parser into the offline dependency set.
fn json_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run the micro join bench, optionally writing JSON and gating against a
/// committed baseline: the job fails when the indexed per-trigger probe
/// path or the key-grouped probe path is more than 2x slower than the
/// baseline's (the grouped gate is what keeps probe sharing from silently
/// degrading back to one lookup per trigger).
fn run_micro(options: &Options) {
    let result = micro_runtime();
    println!("{}", result.render());
    if let Some(path) = &options.json {
        std::fs::write(path, result.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = &options.baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut failed = false;
        for (field, measured) in [
            ("indexed_batch_us_per_trigger", result.indexed_batch_us),
            ("indexed_grouped_us_per_trigger", result.indexed_grouped_us),
            ("dup_grouped_us_per_trigger", result.dup_grouped_us),
            (
                "delivery_coalesced_us_per_trigger",
                result.delivery_coalesced_us,
            ),
        ] {
            let committed =
                json_number(&text, field).unwrap_or_else(|| panic!("{path} has no {field}"));
            println!(
                "baseline gate [{field}]: measured {measured:.3} µs vs committed \
                 {committed:.3} µs (limit {:.3} µs)",
                committed * 2.0
            );
            if measured > committed * 2.0 {
                eprintln!("FAIL: {field} regressed more than 2x vs {path}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

/// Run the batch-vectorization report (micro bench + scaling at 1/2/4
/// threads), pulling the before-change reference out of a prior scaling
/// JSON when one is given.
fn run_vectorization(options: &Options) {
    let reference = options.reference.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let wall = json_number(&text, "wall_seconds")
            .unwrap_or_else(|| panic!("{path} has no wall_seconds"));
        let messages = json_number(&text, "messages")
            .unwrap_or_else(|| panic!("{path} has no messages")) as usize;
        ScalingReference {
            wall_seconds: wall,
            messages,
        }
    });
    let result = batch_vectorization(options.scale, reference);
    println!("{}", result.render());
    if let Some(path) = &options.json {
        std::fs::write(path, result.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

/// Thread counts measured by the scaling figure: powers of two up to (and
/// including) `max`.
fn thread_ladder(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut n = 2;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

fn run_scaling(options: &Options) {
    let counts = thread_ladder(options.threads);
    let result = ScalingTrajectory {
        entries: options
            .scales
            .iter()
            .map(|&scale| parallel_scaling(scale, &counts))
            .collect(),
    };
    println!("{}", result.render());
    if let Some(path) = &options.json {
        std::fs::write(path, result.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn magic_query_counts(scale: Scale) -> (usize, Vec<usize>) {
    match scale {
        Scale::Small | Scale::Medium => (12, vec![4, 8, 12]),
        _ => (200, vec![25, 50, 75, 100, 125, 150, 175, 200]),
    }
}

/// Run the optimizer bench, optionally writing `BENCH_optimizer.json` and
/// gating: (a) the fully-optimized pipeline must beat the unoptimized
/// all-pairs baseline on the first query (the whole point of magic sets),
/// and (b) against a committed report, the first-query traffic must not
/// regress more than 2x.
fn run_optimizer(options: &Options) {
    let (max, samples) = magic_query_counts(options.scale);
    let result = optimizer_bench(options.scale, max, &samples);
    println!("{}", result.render());
    if let Some(path) = &options.json {
        std::fs::write(path, result.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
    let measured = result.first_query_mb();
    let mut failed = false;
    println!(
        "direction gate: optimized first query {measured:.3} MB vs unoptimized baseline {:.3} MB",
        result.baseline_no_ms_mb
    );
    if measured >= result.baseline_no_ms_mb {
        eprintln!("FAIL: the optimized pipeline does not beat the unoptimized baseline");
        failed = true;
    }
    if let Some(path) = &options.baseline {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let committed = json_number(&text, "first_query_mb")
            .unwrap_or_else(|| panic!("{path} has no first_query_mb"));
        println!(
            "baseline gate [first_query_mb]: measured {measured:.3} MB vs committed \
             {committed:.3} MB (limit {:.3} MB)",
            committed * 2.0
        );
        if measured > committed * 2.0 {
            eprintln!("FAIL: first_query_mb regressed more than 2x vs {path}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_figure(figure: &str, options: &Options) {
    let scale = options.scale;
    let passes = options.optimize;
    match figure {
        "fig7" | "fig8" => {
            println!("{}", aggregate_selections_with(scale, passes).render());
        }
        "fig9" | "fig10" => {
            println!(
                "{}",
                periodic_aggregate_selections_with(scale, passes).render()
            );
        }
        "fig11" => {
            let (max, samples) = magic_query_counts(scale);
            let result = magic_sets_with(scale, max, &samples, passes);
            println!("{}", result.render());
            if let Some(cross) = result.crossover("MS") {
                println!("MS line crosses the No-MS baseline after {cross} queries");
            } else {
                println!("MS line stays below the No-MS baseline for the measured range");
            }
        }
        "fig12" => {
            println!("{}", message_sharing_with(scale, passes).render());
        }
        "fig13" => {
            println!(
                "{}",
                incremental_updates_with(scale, passes)
                    .render("Figure 13: bursty link updates every 10 s (Random metric)")
            );
        }
        "fig14" => {
            println!(
                "{}",
                incremental_updates_interleaved_with(scale, passes)
                    .render("Figure 14: interleaved 2 s / 8 s update bursts (Random metric)")
            );
        }
        "scaling" => {
            run_scaling(options);
        }
        "micro" => {
            run_micro(options);
        }
        "vectorization" => {
            run_vectorization(options);
        }
        "optimizer" => {
            run_optimizer(options);
        }
        "adversity" => {
            let result = adversity(options.scale, ADVERSITY_SEED);
            println!("{}", result.render());
            if let Some(path) = &options.json {
                std::fs::write(path, result.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote {path}");
            }
            // The grid is its own gate: a cell that misses the oracle or
            // diverges across thread counts is a bug, not a data point.
            if result.cells.iter().any(|c| !c.converged || !c.identical) {
                eprintln!("FAIL: an adversity cell did not converge (or was not thread-identical)");
                std::process::exit(1);
            }
        }
        "summary" => {
            summary(scale);
        }
        "all" => {
            for f in [
                "fig7", "fig9", "fig11", "fig12", "fig13", "fig14", "scaling", "summary",
            ] {
                run_figure(f, options);
                println!();
            }
        }
        _ => usage(),
    }
}

/// The quantitative claims of Section 6's summary, paper value vs measured.
fn summary(scale: Scale) {
    println!("Section 6 summary claims (paper vs this reproduction, scale: {scale:?})");
    let eager = aggregate_selections(scale);
    let periodic = periodic_aggregate_selections(scale);

    println!("\nClaim 1/2: periodic aggregate selections reduce communication (paper: 12-29%)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "metric", "eager MB", "periodic MB", "reduction"
    );
    for metric in Metric::ALL {
        let e = eager.run_for(metric).total_mb;
        let p = periodic.run_for(metric).total_mb;
        let reduction = if e > 0.0 { (1.0 - p / e) * 100.0 } else { 0.0 };
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>11.1}%",
            metric.label(),
            e,
            p,
            reduction
        );
    }
    println!("\nConvergence order (paper: Hop-Count fastest at 4.4 s, Random slowest at 5.8 s):");
    for metric in Metric::ALL {
        println!(
            "  {:<14} {:>8.2} s   {:>8.2} MB",
            metric.label(),
            eager.run_for(metric).convergence_seconds,
            eager.run_for(metric).total_mb
        );
    }

    println!(
        "\nClaim 3: message sharing reduces communication (paper: 34% total, peak 27 -> 16 kBps)"
    );
    let sharing = message_sharing(scale);
    println!(
        "  No-Share {:.2} MB (peak {:.2} kBps) vs Share {:.2} MB (peak {:.2} kBps): {:.0}% reduction",
        sharing.no_share_mb,
        sharing.no_share.peak(),
        sharing.share_mb,
        sharing.share.peak(),
        sharing.reduction() * 100.0
    );

    println!("\nClaim 4: incremental evaluation under bursty updates (paper: burst peak ~32% of initial peak, ~26% of aggregate)");
    let inc = incremental_updates(scale);
    println!(
        "  initial {:.2} MB / peak {:.2} kBps; burst avg {:.3} MB / peak {:.2} kBps ({:.0}% of peak, {:.0}% of traffic)",
        inc.initial_mb,
        inc.initial_peak_kbps,
        inc.avg_burst_mb,
        inc.burst_peak_kbps,
        inc.peak_ratio() * 100.0,
        inc.traffic_ratio() * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_args(&args);
    run_figure(&options.figure.clone(), &options);
}
