//! Command-line driver that regenerates the paper's figures.
//!
//! ```text
//! cargo run --release -p ndlog-bench --bin experiments -- <figure> [scale] [--threads N] [--json PATH]
//!
//! <figure>    fig7 | fig8 | fig9 | fig10 | fig11 | fig12 | fig13 | fig14 |
//!             scaling | summary | all
//! [scale]     paper (default, 100 nodes) | small (14 nodes) | large (264 nodes)
//! --threads N maximum executor thread count for the `scaling` figure
//!             (measures 1..=N in powers of two; default 4)
//! --json PATH write the scaling report as machine-readable JSON
//!             (the `BENCH_parallel_scaling.json` format)
//! ```
//!
//! Figures 7/8 and 9/10 come from the same runs, so either name prints both
//! series. `scaling` runs the shortest-path workload once per thread count
//! on the parallel epoch executor and reports wall-clock speedups plus a
//! bit-for-bit identity check against the sequential baseline.

use ndlog_bench::experiments::{
    aggregate_selections, incremental_updates, incremental_updates_interleaved, magic_sets,
    message_sharing, parallel_scaling, periodic_aggregate_selections,
};
use ndlog_bench::Scale;
use ndlog_net::topology::Metric;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|scaling|summary|all> \
         [paper|small|large] [--threads N] [--json PATH]"
    );
    std::process::exit(2);
}

/// Parsed command line.
struct Options {
    figure: String,
    scale: Scale,
    /// Maximum executor thread count for the scaling figure.
    threads: usize,
    /// Where to write the scaling JSON report, if anywhere.
    json: Option<String>,
}

fn parse_args(args: &[String]) -> Options {
    let mut positional = Vec::new();
    let mut threads = None;
    let mut json = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--json" => {
                json = Some(iter.next().cloned().unwrap_or_else(|| usage()));
            }
            _ if arg.starts_with("--") => usage(),
            _ => positional.push(arg.clone()),
        }
    }
    let figure = positional.first().cloned().unwrap_or_else(|| usage());
    let scale = match positional.get(1) {
        None => Scale::Paper,
        Some(s) => Scale::parse(s).unwrap_or_else(|| usage()),
    };
    if positional.len() > 2 {
        usage();
    }
    // --threads / --json only drive the scaling figure (also reached via
    // "all"); rejecting them elsewhere beats silently ignoring them.
    if figure != "scaling" && figure != "all" && (threads.is_some() || json.is_some()) {
        eprintln!("--threads/--json apply only to the `scaling` (or `all`) figure");
        usage();
    }
    Options {
        figure,
        scale,
        threads: threads.unwrap_or(4),
        json,
    }
}

/// Thread counts measured by the scaling figure: powers of two up to (and
/// including) `max`.
fn thread_ladder(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut n = 2;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

fn run_scaling(options: &Options) {
    let counts = thread_ladder(options.threads);
    let result = parallel_scaling(options.scale, &counts);
    println!("{}", result.render());
    if let Some(path) = &options.json {
        std::fs::write(path, result.to_json()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn magic_query_counts(scale: Scale) -> (usize, Vec<usize>) {
    match scale {
        Scale::Paper | Scale::Large => (200, vec![25, 50, 75, 100, 125, 150, 175, 200]),
        Scale::Small => (12, vec![4, 8, 12]),
    }
}

fn run_figure(figure: &str, options: &Options) {
    let scale = options.scale;
    match figure {
        "fig7" | "fig8" => {
            println!("{}", aggregate_selections(scale).render());
        }
        "fig9" | "fig10" => {
            println!("{}", periodic_aggregate_selections(scale).render());
        }
        "fig11" => {
            let (max, samples) = magic_query_counts(scale);
            let result = magic_sets(scale, max, &samples);
            println!("{}", result.render());
            if let Some(cross) = result.crossover("MS") {
                println!("MS line crosses the No-MS baseline after {cross} queries");
            } else {
                println!("MS line stays below the No-MS baseline for the measured range");
            }
        }
        "fig12" => {
            println!("{}", message_sharing(scale).render());
        }
        "fig13" => {
            println!(
                "{}",
                incremental_updates(scale)
                    .render("Figure 13: bursty link updates every 10 s (Random metric)")
            );
        }
        "fig14" => {
            println!(
                "{}",
                incremental_updates_interleaved(scale)
                    .render("Figure 14: interleaved 2 s / 8 s update bursts (Random metric)")
            );
        }
        "scaling" => {
            run_scaling(options);
        }
        "summary" => {
            summary(scale);
        }
        "all" => {
            for f in [
                "fig7", "fig9", "fig11", "fig12", "fig13", "fig14", "scaling", "summary",
            ] {
                run_figure(f, options);
                println!();
            }
        }
        _ => usage(),
    }
}

/// The quantitative claims of Section 6's summary, paper value vs measured.
fn summary(scale: Scale) {
    println!("Section 6 summary claims (paper vs this reproduction, scale: {scale:?})");
    let eager = aggregate_selections(scale);
    let periodic = periodic_aggregate_selections(scale);

    println!("\nClaim 1/2: periodic aggregate selections reduce communication (paper: 12-29%)");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "metric", "eager MB", "periodic MB", "reduction"
    );
    for metric in Metric::ALL {
        let e = eager.run_for(metric).total_mb;
        let p = periodic.run_for(metric).total_mb;
        let reduction = if e > 0.0 { (1.0 - p / e) * 100.0 } else { 0.0 };
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>11.1}%",
            metric.label(),
            e,
            p,
            reduction
        );
    }
    println!("\nConvergence order (paper: Hop-Count fastest at 4.4 s, Random slowest at 5.8 s):");
    for metric in Metric::ALL {
        println!(
            "  {:<14} {:>8.2} s   {:>8.2} MB",
            metric.label(),
            eager.run_for(metric).convergence_seconds,
            eager.run_for(metric).total_mb
        );
    }

    println!(
        "\nClaim 3: message sharing reduces communication (paper: 34% total, peak 27 -> 16 kBps)"
    );
    let sharing = message_sharing(scale);
    println!(
        "  No-Share {:.2} MB (peak {:.2} kBps) vs Share {:.2} MB (peak {:.2} kBps): {:.0}% reduction",
        sharing.no_share_mb,
        sharing.no_share.peak(),
        sharing.share_mb,
        sharing.share.peak(),
        sharing.reduction() * 100.0
    );

    println!("\nClaim 4: incremental evaluation under bursty updates (paper: burst peak ~32% of initial peak, ~26% of aggregate)");
    let inc = incremental_updates(scale);
    println!(
        "  initial {:.2} MB / peak {:.2} kBps; burst avg {:.3} MB / peak {:.2} kBps ({:.0}% of peak, {:.0}% of traffic)",
        inc.initial_mb,
        inc.initial_peak_kbps,
        inc.avg_burst_mb,
        inc.burst_peak_kbps,
        inc.peak_ratio() * 100.0,
        inc.traffic_ratio() * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = parse_args(&args);
    run_figure(&options.figure.clone(), &options);
}
