//! Experiment testbed: topology, overlay and engine setup shared by all
//! experiments.
//!
//! The paper's setup (Section 6.1): 100 Emulab nodes on a GT-ITM
//! transit-stub topology (4 transit nodes, 3 stubs per transit, 8 nodes per
//! stub; 50/10/2 ms latencies; 10 Mbps links); each overlay node picks four
//! random neighbors; each overlay link carries latency, reliability and
//! random metrics.

use ndlog_core::{plan, DistributedEngine, EngineConfig, QueryPlan};
use ndlog_lang::optimizer::{optimize, PassSet, Pipeline};
use ndlog_lang::reorder::BodyOrder;
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig, OverlayLink};
use ndlog_net::topology::Metric;
use ndlog_net::NodeAddr;
use ndlog_runtime::{EvalError, Tuple};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's 100-node setup.
    Paper,
    /// A 14-node setup for tests and Criterion benches.
    Small,
    /// A 52-node setup for CI smoke runs: big enough to exercise the
    /// epoch executor across several transit domains, small enough to
    /// finish all-pairs in seconds.
    Medium,
    /// A 264-node setup (8 transit nodes, 4 stubs per transit, 8 nodes per
    /// stub) used by the parallel-scaling bench, where per-epoch work must
    /// be large enough to amortize thread dispatch.
    Large,
    /// A 1010-node setup. All-pairs is infeasible here; the scaling bench
    /// drives it with a Zipf-skewed traffic matrix of source-routing
    /// (magic) queries instead.
    OneK,
    /// A 4016-node setup for multicore hardware (not run in CI).
    FourK,
    /// A 10100-node setup for multicore hardware (not run in CI).
    TenK,
}

impl Scale {
    /// The transit-stub generator configuration for this scale.
    pub fn transit_stub(self) -> TransitStubConfig {
        match self {
            Scale::Paper => TransitStubConfig::paper(),
            Scale::Small => TransitStubConfig::small(),
            Scale::Medium => TransitStubConfig::medium(),
            Scale::Large => TransitStubConfig {
                transit_nodes: 8,
                stubs_per_transit: 4,
                nodes_per_stub: 8,
                ..TransitStubConfig::paper()
            },
            Scale::OneK => TransitStubConfig::one_k(),
            Scale::FourK => TransitStubConfig::four_k(),
            Scale::TenK => TransitStubConfig::ten_k(),
        }
    }

    /// Parse from a command-line string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" | "full" | "100" => Some(Scale::Paper),
            "small" | "test" => Some(Scale::Small),
            "medium" | "52" => Some(Scale::Medium),
            "large" | "264" => Some(Scale::Large),
            "1k" | "onek" | "1010" => Some(Scale::OneK),
            "4k" | "fourk" | "4016" => Some(Scale::FourK),
            "10k" | "tenk" | "10100" => Some(Scale::TenK),
            _ => None,
        }
    }

    /// A lowercase label for reports and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
            Scale::OneK => "1k",
            Scale::FourK => "4k",
            Scale::TenK => "10k",
        }
    }

    /// Whether all-pairs workloads are feasible at this scale; larger
    /// scales are driven by bounded query sets (a traffic matrix of
    /// source-routing queries) instead of `n * (n - 1)` results.
    pub fn all_pairs_feasible(self) -> bool {
        matches!(
            self,
            Scale::Paper | Scale::Small | Scale::Medium | Scale::Large
        )
    }
}

/// A Figure 11 source-routing query compiled through the optimizer
/// pipeline: the plan, the pipeline that produced it (which also derives
/// the magic seed tuples for a concrete query), and the human-readable
/// rewrite description.
#[derive(Debug, Clone)]
pub struct SourceRoutingSetup {
    /// The compiled plan.
    pub plan: QueryPlan,
    /// The pipeline (pass set, magic specs, body order).
    pub pipeline: Pipeline,
    /// `Report::describe()` of the applied rewrites.
    pub description: String,
}

/// A constructed testbed: the underlay, the overlay and its link set.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Which scale was used.
    pub scale: Scale,
    /// The overlay (each node picked four random neighbors).
    pub overlay: Overlay,
    /// The directed overlay links with their metrics.
    pub links: Vec<OverlayLink>,
}

impl Testbed {
    /// Build the testbed for a scale (deterministic given the scale).
    pub fn new(scale: Scale) -> Testbed {
        let ts = generate(&scale.transit_stub());
        let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
        let links = overlay.links();
        Testbed {
            scale,
            overlay,
            links,
        }
    }

    /// Number of overlay nodes.
    pub fn node_count(&self) -> usize {
        self.overlay.node_count()
    }

    /// The canonical relation suffix used for a metric's query instance.
    pub fn metric_suffix(metric: Metric) -> &'static str {
        match metric {
            Metric::HopCount => "hops",
            Metric::Latency => "latency",
            Metric::Reliability => "reliability",
            Metric::Random => "random",
        }
    }

    /// The shortest-path plan for a metric (relations suffixed per metric),
    /// with the full optimizer pipeline.
    pub fn shortest_path_plan(metric: Metric) -> QueryPlan {
        Self::shortest_path_plan_with(metric, PassSet::ALL)
    }

    /// The shortest-path plan for a metric, built through the optimizer
    /// pipeline at the given pass level. The canonical program has no magic
    /// opportunities; its pipeline normalizes bodies link-first (idempotent
    /// on the canonical rule order), so `off` and `all` agree here — the
    /// point is that every experiment's plan flows through the same
    /// `optimize()` entry as the magic figures.
    pub fn shortest_path_plan_with(metric: Metric, passes: PassSet) -> QueryPlan {
        let program = programs::shortest_path(Self::metric_suffix(metric));
        let pipeline = Pipeline::new(Vec::new(), Some(BodyOrder::LinkFirst)).with_passes(passes);
        let optimized = optimize(&program, &pipeline).expect("canonical program optimizes");
        plan(&optimized.program).expect("canonical program plans")
    }

    /// The source-routing (magic, top-down) plan used by the Figure 11
    /// experiment (unsuffixed relations), fully optimized.
    pub fn source_routing_plan() -> QueryPlan {
        Self::source_routing_setup(PassSet::ALL).plan
    }

    /// The Figure 11 source-routing query compiled through the optimizer
    /// pipeline at the given pass level: the unoptimized base program plus
    /// the canonical magic/reorder pipeline, restricted to `passes`. The
    /// returned pipeline also supplies the magic seed tuples
    /// ([`Pipeline::seeds_for`]) — with magic disabled it yields no seeds
    /// and the base program explores all-pairs, the unoptimized behavior.
    pub fn source_routing_setup(passes: PassSet) -> SourceRoutingSetup {
        let pipeline = programs::source_routing_pipeline("").with_passes(passes);
        let optimized = optimize(&programs::shortest_path_source_routing_base(""), &pipeline)
            .expect("source-routing program optimizes");
        SourceRoutingSetup {
            plan: plan(&optimized.program).expect("canonical program plans"),
            description: optimized.report.describe(),
            pipeline,
        }
    }

    /// Build a distributed engine over this testbed's overlay graph.
    pub fn engine(&self, plans: &[QueryPlan], config: EngineConfig) -> DistributedEngine {
        DistributedEngine::new(self.overlay.graph.clone(), plans, config)
            .expect("engine construction")
    }

    /// A link base tuple `link(@src, @dst, cost)`.
    pub fn link_tuple(src: NodeAddr, dst: NodeAddr, cost: f64) -> Tuple {
        Tuple::new(vec![Value::Addr(src), Value::Addr(dst), Value::Float(cost)])
    }

    /// Load every overlay link into `relation` with the given metric as the
    /// cost column, at the link's source node.
    pub fn load_links(
        &self,
        engine: &mut DistributedEngine,
        relation: &str,
        metric: Metric,
    ) -> Result<(), EvalError> {
        for link in &self.links {
            engine.insert_base(
                link.src,
                relation,
                Self::link_tuple(link.src, link.dst, link.cost(metric)),
            )?;
        }
        Ok(())
    }

    /// The shortest-path relation name for a metric's query instance.
    pub fn shortest_path_relation(metric: Metric) -> String {
        format!("shortestPath_{}", Self::metric_suffix(metric))
    }

    /// The link relation name for a metric's query instance.
    pub fn link_relation(metric: Metric) -> String {
        format!("link_{}", Self::metric_suffix(metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_testbed_builds() {
        let tb = Testbed::new(Scale::Small);
        assert_eq!(tb.node_count(), 14);
        assert!(!tb.links.is_empty());
        assert!(tb.overlay.graph.is_connected());
    }

    #[test]
    fn paper_testbed_has_100_nodes() {
        let tb = Testbed::new(Scale::Paper);
        assert_eq!(tb.node_count(), 100);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("1k"), Some(Scale::OneK));
        assert_eq!(Scale::parse("4k"), Some(Scale::FourK));
        assert_eq!(Scale::parse("10k"), Some(Scale::TenK));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Large.label(), "large");
        assert_eq!(Scale::OneK.label(), "1k");
    }

    #[test]
    fn big_scales_are_not_all_pairs() {
        assert!(Scale::Large.all_pairs_feasible());
        assert!(Scale::Medium.all_pairs_feasible());
        assert!(!Scale::OneK.all_pairs_feasible());
        assert!(!Scale::TenK.all_pairs_feasible());
        assert_eq!(Scale::OneK.transit_stub().total_nodes(), 1010);
        assert_eq!(Scale::FourK.transit_stub().total_nodes(), 4016);
        assert_eq!(Scale::TenK.transit_stub().total_nodes(), 10100);
    }

    #[test]
    fn large_testbed_has_at_least_256_nodes() {
        assert!(Scale::Large.transit_stub().total_nodes() >= 256);
    }

    #[test]
    fn metric_relations_are_suffixed() {
        assert_eq!(
            Testbed::shortest_path_relation(Metric::HopCount),
            "shortestPath_hops"
        );
        assert_eq!(Testbed::link_relation(Metric::Random), "link_random");
    }

    #[test]
    fn source_routing_setups_reflect_pass_levels() {
        let all = Testbed::source_routing_setup(PassSet::ALL);
        assert!(all.description.contains("magic"));
        assert!(all.description.contains("reorder"));
        // Full pipeline: one seed per guarded relation, at the constant's
        // own node.
        assert_eq!(
            all.pipeline
                .seeds_for("pathDst", Value::Addr(NodeAddr(3)))
                .len(),
            1
        );
        assert_eq!(
            all.pipeline
                .seeds_for("shortestPath", Value::Addr(NodeAddr(5)))
                .len(),
            1
        );

        let off = Testbed::source_routing_setup(PassSet::OFF);
        assert_eq!(off.description, "identity");
        assert!(off
            .pipeline
            .seeds_for("pathDst", Value::Addr(NodeAddr(3)))
            .is_empty());
        // The unoptimized plan carries no magic tables.
        assert!(off
            .plan
            .program
            .tables
            .iter()
            .all(|t| !t.name.starts_with("magic")));
        assert!(all
            .plan
            .program
            .tables
            .iter()
            .any(|t| t.name.starts_with("magic")));
    }

    #[test]
    fn small_distributed_run_converges() {
        let tb = Testbed::new(Scale::Small);
        let plan = Testbed::shortest_path_plan(Metric::HopCount);
        let mut config = EngineConfig::default();
        config.node.aggregate_selections = true;
        let mut engine = tb.engine(&[plan], config);
        tb.load_links(&mut engine, "link_hops", Metric::HopCount)
            .unwrap();
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
        // All-pairs results: n * (n - 1).
        assert_eq!(
            engine.result_count("shortestPath_hops"),
            tb.node_count() * (tb.node_count() - 1)
        );
    }
}
