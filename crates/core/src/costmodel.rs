//! Cost-based planning: live store statistics and the neighborhood
//! function (Section 5.3).
//!
//! Two estimators live here, answering the two planning questions the
//! optimizer pipeline leaves open after rewriting:
//!
//! 1. **Join ordering** — [`StatsCatalog`] harvests per-relation
//!    cardinalities and per-index distinct-key counts from a live
//!    [`Store`] (the same counters [`JoinStats`](ndlog_runtime::JoinStats)
//!    `distinct_probes` accounting observes) and ranks candidate body
//!    orders by estimated tuples examined, replacing the seed's static
//!    link-first/link-last heuristics with measured selectivities.
//! 2. **Search direction** — the neighborhood-function estimator below
//!    picks top-down vs bottom-up vs hybrid for constrained path queries.
//!
//! For a constrained path query `shortestPath(@s, @d, P, C)` neither the
//! top-down (TD, explore forward from the source) nor the bottom-up (BU,
//! derive backwards from the destination) strategy is universally better:
//! the TD exploration costs about `N(s, dist(s,d))` messages and the BU one
//! `N(d, dist(s,d))`, where `N(x, r)` is the **neighborhood function** —
//! the number of distinct nodes within `r` hops of `x`. The optimal plan is
//! a *hybrid* that splits the search radius between the two endpoints:
//!
//! ```text
//! (rs, rd) = argmin_{rs + rd = dist(s,d)} N(s, rs) + N(d, rd)
//! ```
//!
//! and runs concurrent TD and BU searches with radii `rs` and `rd`; the two
//! frontiers meet at at least one node, which can assemble the path. This
//! module implements that estimator over the overlay graph (the statistic
//! itself is computable decentrally by background queries or approximate
//! counting, as the paper notes; here we read it from the topology, which
//! is the same information). It is exercised by the `zone_routing` ablation
//! tests and usable by callers that want to pick a strategy per query.

use std::collections::{BTreeMap, BTreeSet};

use ndlog_net::topology::Topology;
use ndlog_net::NodeAddr;
use ndlog_runtime::Store;
use serde::{Deserialize, Serialize};

/// Per-relation statistics harvested from a live [`Store`]: tuple counts
/// plus, for every maintained secondary index, the number of distinct
/// probe keys and indexed entries. `entries / distinct` is the average
/// bucket size — exactly what a probe on that signature examines, so the
/// catalog's estimates line up with the engine's measured
/// `tuples_examined` counter rather than a synthetic formula.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    relations: BTreeMap<String, RelationStats>,
}

#[derive(Debug, Clone, Default)]
struct RelationStats {
    tuples: usize,
    /// `(sorted bound columns, distinct keys, entries)` per index.
    indexes: Vec<(Vec<usize>, usize, usize)>,
}

/// One body atom for join-order ranking: a relation name plus, per
/// column, the variable occupying it (columns holding constants can use a
/// fresh variable id; they only matter for binding propagation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinAtom {
    /// Relation the atom probes or scans.
    pub relation: String,
    /// Variable id per column, positionally.
    pub vars: Vec<usize>,
}

impl JoinAtom {
    /// Convenience constructor.
    pub fn new(relation: impl Into<String>, vars: &[usize]) -> Self {
        JoinAtom {
            relation: relation.into(),
            vars: vars.to_vec(),
        }
    }
}

/// A candidate body order with its estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedOrder {
    /// Indexes into the input atom slice, in evaluation order.
    pub order: Vec<usize>,
    /// Estimated tuples examined evaluating the body in that order.
    pub cost: f64,
}

impl StatsCatalog {
    /// Harvest statistics from every relation of a live store.
    pub fn harvest(store: &Store) -> Self {
        let mut relations = BTreeMap::new();
        for name in store.relation_names() {
            let relation = store
                .relation(name)
                .expect("relation_names returned a live relation");
            let indexes = relation
                .index_stats()
                .map(|(sig, distinct, entries)| (sig.columns().to_vec(), distinct, entries))
                .collect();
            relations.insert(
                name.to_string(),
                RelationStats {
                    tuples: relation.len(),
                    indexes,
                },
            );
        }
        StatsCatalog { relations }
    }

    /// Stored tuple count for a relation (0 when unknown).
    pub fn tuples(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, |r| r.tuples)
    }

    /// The most selective index whose signature is covered by
    /// `bound_cols`, as `(distinct, entries)`.
    fn best_index(&self, relation: &str, bound_cols: &[usize]) -> Option<(usize, usize)> {
        let stats = self.relations.get(relation)?;
        stats
            .indexes
            .iter()
            .filter(|(sig, _, _)| sig.iter().all(|c| bound_cols.contains(c)))
            .map(|&(_, distinct, entries)| (distinct, entries))
            .max_by_key(|&(distinct, _)| distinct)
    }

    /// Estimated tuples a single probe binding `bound_cols` examines: the
    /// average bucket size of the most selective covering index, or a full
    /// scan of the relation when no index covers the binding.
    pub fn estimate_examined(&self, relation: &str, bound_cols: &[usize]) -> f64 {
        match self.best_index(relation, bound_cols) {
            Some((distinct, entries)) if distinct > 0 => entries as f64 / distinct as f64,
            _ => self.tuples(relation) as f64,
        }
    }

    /// Estimated result cardinality of a single probe binding
    /// `bound_cols`. Starts from [`StatsCatalog::estimate_examined`] and
    /// applies independent per-column selectivities for bound columns the
    /// chosen index did not cover (when a single-column index on such a
    /// column exists, its distinct-key count gives the selectivity).
    pub fn estimate_matches(&self, relation: &str, bound_cols: &[usize]) -> f64 {
        let covered: Vec<usize> = match self.best_index(relation, bound_cols) {
            Some(_) => self
                .relations
                .get(relation)
                .map(|stats| {
                    stats
                        .indexes
                        .iter()
                        .filter(|(sig, _, _)| sig.iter().all(|c| bound_cols.contains(c)))
                        .max_by_key(|&&(_, distinct, _)| distinct)
                        .map(|(sig, _, _)| sig.clone())
                        .unwrap_or_default()
                })
                .unwrap_or_default(),
            None => Vec::new(),
        };
        let mut estimate = self.estimate_examined(relation, bound_cols);
        for &col in bound_cols {
            if covered.contains(&col) {
                continue;
            }
            if let Some(stats) = self.relations.get(relation) {
                if let Some(&(_, distinct, _)) = stats
                    .indexes
                    .iter()
                    .find(|(sig, _, _)| sig.as_slice() == [col])
                {
                    if distinct > 0 {
                        estimate /= distinct as f64;
                    }
                }
            }
        }
        estimate.max(0.0)
    }

    /// Estimated tuples examined evaluating `atoms` left to right starting
    /// from `bound` variables (nested-loop join, the engine's shape). Per
    /// atom: every live binding environment pays one probe (examined
    /// tuples), then the environment count multiplies by the estimated
    /// match cardinality and the atom's variables become bound.
    pub fn order_cost(&self, atoms: &[&JoinAtom], bound: &[usize]) -> f64 {
        let mut bound: BTreeSet<usize> = bound.iter().copied().collect();
        let mut envs = 1.0f64;
        let mut cost = 0.0f64;
        for atom in atoms {
            let bound_cols: Vec<usize> = atom
                .vars
                .iter()
                .enumerate()
                .filter(|(_, v)| bound.contains(v))
                .map(|(col, _)| col)
                .collect();
            cost += envs * self.estimate_examined(&atom.relation, &bound_cols);
            envs *= self.estimate_matches(&atom.relation, &bound_cols);
            bound.extend(atom.vars.iter().copied());
        }
        cost
    }

    /// Rank every permutation of `atoms` by [`StatsCatalog::order_cost`],
    /// cheapest first. Ties keep the lexicographically earlier
    /// permutation, so ranking is deterministic. Body sizes in NDlog
    /// programs are small (≤ 4 atoms after localization), so exhaustive
    /// enumeration is fine.
    pub fn rank_orders(&self, atoms: &[JoinAtom], bound: &[usize]) -> Vec<RankedOrder> {
        let mut ranked: Vec<RankedOrder> = permutations(atoms.len())
            .into_iter()
            .map(|order| {
                let view: Vec<&JoinAtom> = order.iter().map(|&i| &atoms[i]).collect();
                RankedOrder {
                    cost: self.order_cost(&view, bound),
                    order,
                }
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.order.cmp(&b.order))
        });
        ranked
    }

    /// The cheapest order from [`StatsCatalog::rank_orders`].
    pub fn best_order(&self, atoms: &[JoinAtom], bound: &[usize]) -> Option<RankedOrder> {
        self.rank_orders(atoms, bound).into_iter().next()
    }
}

/// All permutations of `0..n` in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn recurse(remaining: &mut Vec<usize>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..remaining.len() {
            let item = remaining.remove(i);
            prefix.push(item);
            recurse(remaining, prefix, out);
            prefix.pop();
            remaining.insert(i, item);
        }
    }
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    recurse(&mut remaining, &mut Vec::new(), &mut out);
    out
}

/// A search strategy for a constrained (source, destination) path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Explore forward from the source only (the magic/source-routing
    /// program).
    TopDown,
    /// Derive backwards from the destination only (the magic-destination
    /// program).
    BottomUp,
    /// Split the radius: explore `source_radius` hops from the source and
    /// `destination_radius` hops from the destination concurrently.
    Hybrid {
        /// Radius of the forward (source-side) exploration.
        source_radius: usize,
        /// Radius of the backward (destination-side) exploration.
        destination_radius: usize,
    },
}

/// The estimated message cost of a strategy, measured in "nodes reached"
/// (each reached node forwards the query once, per the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyEstimate {
    /// The strategy.
    pub strategy: SearchStrategy,
    /// Estimated number of nodes that participate.
    pub cost: usize,
}

/// Estimate the cost of the pure top-down strategy: `N(s, dist(s, d))`.
pub fn top_down_cost(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<usize> {
    let dist = graph.hop_distance(src, dst)?;
    Some(graph.neighborhood(src, dist))
}

/// Estimate the cost of the pure bottom-up strategy: `N(d, dist(s, d))`.
pub fn bottom_up_cost(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<usize> {
    let dist = graph.hop_distance(src, dst)?;
    Some(graph.neighborhood(dst, dist))
}

/// Find the radius split `(rs, rd)` with `rs + rd = dist(s, d)` minimizing
/// `N(s, rs) + N(d, rd)`. Returns `None` when the nodes are disconnected.
pub fn hybrid_split(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<StrategyEstimate> {
    let dist = graph.hop_distance(src, dst)?;
    let mut best: Option<(usize, usize, usize)> = None;
    for rs in 0..=dist {
        let rd = dist - rs;
        let cost = graph.neighborhood(src, rs) + graph.neighborhood(dst, rd);
        match best {
            Some((_, _, c)) if c <= cost => {}
            _ => best = Some((rs, rd, cost)),
        }
    }
    best.map(|(rs, rd, cost)| StrategyEstimate {
        strategy: SearchStrategy::Hybrid {
            source_radius: rs,
            destination_radius: rd,
        },
        cost,
    })
}

/// Choose the cheapest of TD, BU and the best hybrid split for a query.
pub fn choose_strategy(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<StrategyEstimate> {
    let td = StrategyEstimate {
        strategy: SearchStrategy::TopDown,
        cost: top_down_cost(graph, src, dst)?,
    };
    let bu = StrategyEstimate {
        strategy: SearchStrategy::BottomUp,
        cost: bottom_up_cost(graph, src, dst)?,
    };
    let hybrid = hybrid_split(graph, src, dst)?;
    // Prefer the simpler single-direction strategies on ties (a hybrid of
    // equal cost buys nothing and needs coordination).
    let mut best = td;
    if bu.cost < best.cost {
        best = bu;
    }
    if hybrid.cost < best.cost {
        best = hybrid;
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;
    use ndlog_net::topology::LinkMetrics;
    use ndlog_runtime::{JoinStats, RelationSchema, Tuple};

    /// A store with two 100-tuple relations indexed on column 0:
    /// `flat(k, 0)` with 100 distinct keys (1 match per probe) and
    /// `skew(0, k)` where every tuple shares one key (100 matches per
    /// probe). `flat` has no index on column 1.
    fn skewed_store() -> Store {
        let mut store = Store::new();
        for name in ["flat", "skew"] {
            let mut schema = RelationSchema::new(name);
            schema.key_columns = vec![0, 1];
            let relation = store.ensure(schema);
            relation.ensure_index(&[0]);
        }
        for i in 0..100i64 {
            let flat = store.relation_mut("flat").unwrap();
            flat.insert(Tuple::new(vec![Value::Int(i), Value::Int(0)]), 1, 0);
            let skew = store.relation_mut("skew").unwrap();
            skew.insert(Tuple::new(vec![Value::Int(0), Value::Int(i)]), 1, 0);
        }
        store
    }

    #[test]
    fn catalog_reads_live_index_counters() {
        let catalog = StatsCatalog::harvest(&skewed_store());
        assert_eq!(catalog.tuples("flat"), 100);
        assert_eq!(catalog.tuples("skew"), 100);
        // Probes on the indexed column see the real average bucket size.
        assert_eq!(catalog.estimate_examined("flat", &[0]), 1.0);
        assert_eq!(catalog.estimate_examined("skew", &[0]), 100.0);
        // No covering index -> a probe degenerates to a full scan.
        assert_eq!(catalog.estimate_examined("flat", &[1]), 100.0);
        // Unknown relations cost nothing rather than panicking.
        assert_eq!(catalog.estimate_examined("nope", &[0]), 0.0);
    }

    #[test]
    fn preferred_order_matches_measured_examined() {
        let store = skewed_store();
        let catalog = StatsCatalog::harvest(&store);
        // Body: flat(X, Y), skew(Y, Z) with X bound. Probing flat first
        // binds Y cheaply; starting from skew scans it unbound and then
        // scans flat per environment (no index on flat's column 1).
        let atoms = [
            JoinAtom::new("flat", &[0, 1]),
            JoinAtom::new("skew", &[1, 2]),
        ];
        let ranked = catalog.rank_orders(&atoms, &[0]);
        assert_eq!(ranked[0].order, vec![0, 1]);
        assert!(ranked[0].cost < ranked[1].cost);

        // Measure both orders against the live store and check the model
        // ranked them the same way. Order A: probe flat on X, then probe
        // skew on the bound Y.
        let flat = store.relation("flat").unwrap();
        let skew = store.relation("skew").unwrap();
        let x = Value::Int(7);
        let mut stats_a = JoinStats::default();
        let matches: Vec<_> = flat
            .lookup(&[0], std::slice::from_ref(&x), u64::MAX, &mut stats_a)
            .collect();
        for m in &matches {
            let y = m.tuple.get(1).unwrap().clone();
            let _ = skew
                .lookup(&[0], std::slice::from_ref(&y), u64::MAX, &mut stats_a)
                .count();
        }
        let measured_a = stats_a.tuples_examined;

        // Order B: scan skew unbound, then match flat on its unindexed
        // column 1 per environment — a full scan of flat each time.
        let mut measured_b = skew.len(); // unbound scan examines everything
        for s in skew.iter() {
            let y = s.tuple.get(1).unwrap().clone();
            let _ = flat.scan_match(&[(1, y)], u64::MAX).count();
            measured_b += flat.len();
        }
        assert!(
            measured_a < measured_b,
            "measured examined: flat-first {measured_a} vs skew-first {measured_b}"
        );
        // The model's preference agrees with the measurement.
        let cost_flat_first = catalog.order_cost(&[&atoms[0], &atoms[1]], &[0]);
        let cost_skew_first = catalog.order_cost(&[&atoms[1], &atoms[0]], &[0]);
        assert!(cost_flat_first < cost_skew_first);
    }

    #[test]
    fn residual_selectivity_shrinks_match_estimates() {
        let catalog = StatsCatalog::harvest(&skewed_store());
        // Binding both columns of skew: the index covers column 0 (100
        // examined) but the residual bound column 1 has no single-column
        // index, so the match estimate stays at the bucket size.
        assert_eq!(catalog.estimate_matches("skew", &[0, 1]), 100.0);
        // flat's column-0 index makes the same probe precise.
        assert_eq!(catalog.estimate_matches("flat", &[0, 1]), 1.0);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let catalog = StatsCatalog::harvest(&skewed_store());
        // Two identical atoms tie on every order; lexicographic order of
        // the permutation breaks the tie.
        let atoms = [
            JoinAtom::new("flat", &[0, 1]),
            JoinAtom::new("flat", &[0, 2]),
        ];
        let ranked = catalog.rank_orders(&atoms, &[0]);
        assert_eq!(ranked[0].order, vec![0, 1]);
    }

    /// A "dumbbell": a dense clique with extra leaf nodes around the
    /// source, a long path to a sparse destination. 15 nodes: clique
    /// 0..=4, path 4-5-6-7-8-9, leaves 10..=14 attached to node 0.
    fn dumbbell() -> Topology {
        let mut t = Topology::with_nodes(15);
        let m = LinkMetrics::uniform();
        // Clique over nodes 0..=4 (dense side, containing the source 0).
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                t.add_link(NodeAddr(a), NodeAddr(b), m).unwrap();
            }
        }
        // Path 4 - 5 - 6 - 7 - 8 - 9 (sparse side, destination 9).
        for a in 4..9u32 {
            t.add_link(NodeAddr(a), NodeAddr(a + 1), m).unwrap();
        }
        // Leaves hanging off the source, out of the destination's reach
        // within dist(0, 9) hops.
        for leaf in 10..15u32 {
            t.add_link(NodeAddr(0), NodeAddr(leaf), m).unwrap();
        }
        t
    }

    #[test]
    fn td_and_bu_costs_reflect_density() {
        let g = dumbbell();
        let src = NodeAddr(0);
        let dst = NodeAddr(9);
        // dist(0, 9) = 6 hops (one hop across the clique, five along the path).
        assert_eq!(g.hop_distance(src, dst), Some(6));
        let td = top_down_cost(&g, src, dst).unwrap();
        let bu = bottom_up_cost(&g, src, dst).unwrap();
        // Exploring from the dense side reaches everything (15 nodes); the
        // sparse side never reaches the source's leaves within 6 hops, so
        // BU is cheaper here.
        assert_eq!(td, 15);
        assert_eq!(bu, 10);
        assert!(bu < td);
    }

    #[test]
    fn hybrid_never_loses_to_pure_strategies() {
        let g = dumbbell();
        for (s, d) in [(0u32, 9u32), (9, 0), (1, 7), (5, 9)] {
            let src = NodeAddr(s);
            let dst = NodeAddr(d);
            let hybrid = hybrid_split(&g, src, dst).unwrap();
            let td = top_down_cost(&g, src, dst).unwrap();
            let bu = bottom_up_cost(&g, src, dst).unwrap();
            assert!(
                hybrid.cost <= td.min(bu) + 1,
                "hybrid {hybrid:?} should be competitive with td {td} / bu {bu}"
            );
            let SearchStrategy::Hybrid {
                source_radius,
                destination_radius,
            } = hybrid.strategy
            else {
                panic!("hybrid_split always returns a hybrid");
            };
            assert_eq!(
                source_radius + destination_radius,
                g.hop_distance(src, dst).unwrap()
            );
        }
    }

    #[test]
    fn choose_strategy_picks_the_sparse_end() {
        let g = dumbbell();
        let best = choose_strategy(&g, NodeAddr(0), NodeAddr(9)).unwrap();
        // Starting from the clique is the worst option; the chosen strategy
        // must not be pure top-down.
        assert_ne!(best.strategy, SearchStrategy::TopDown);
        let reverse = choose_strategy(&g, NodeAddr(9), NodeAddr(0)).unwrap();
        assert_ne!(reverse.strategy, SearchStrategy::BottomUp);
        assert_eq!(best.cost, reverse.cost, "the problem is symmetric");
    }

    #[test]
    fn adjacent_nodes_cost_one_endpoint() {
        let g = dumbbell();
        let est = choose_strategy(&g, NodeAddr(5), NodeAddr(6)).unwrap();
        assert!(est.cost <= 3);
    }

    #[test]
    fn disconnected_nodes_have_no_strategy() {
        let mut g = Topology::with_nodes(3);
        g.add_link(NodeAddr(0), NodeAddr(1), LinkMetrics::uniform())
            .unwrap();
        assert!(choose_strategy(&g, NodeAddr(0), NodeAddr(2)).is_none());
        assert!(hybrid_split(&g, NodeAddr(0), NodeAddr(2)).is_none());
        assert!(top_down_cost(&g, NodeAddr(0), NodeAddr(2)).is_none());
    }

    #[test]
    fn same_node_query_is_free() {
        let g = dumbbell();
        let est = choose_strategy(&g, NodeAddr(3), NodeAddr(3)).unwrap();
        assert!(est.cost <= 2);
    }
}
