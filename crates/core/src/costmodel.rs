//! Cost-based rewrites driven by the neighborhood function (Section 5.3).
//!
//! For a constrained path query `shortestPath(@s, @d, P, C)` neither the
//! top-down (TD, explore forward from the source) nor the bottom-up (BU,
//! derive backwards from the destination) strategy is universally better:
//! the TD exploration costs about `N(s, dist(s,d))` messages and the BU one
//! `N(d, dist(s,d))`, where `N(x, r)` is the **neighborhood function** —
//! the number of distinct nodes within `r` hops of `x`. The optimal plan is
//! a *hybrid* that splits the search radius between the two endpoints:
//!
//! ```text
//! (rs, rd) = argmin_{rs + rd = dist(s,d)} N(s, rs) + N(d, rd)
//! ```
//!
//! and runs concurrent TD and BU searches with radii `rs` and `rd`; the two
//! frontiers meet at at least one node, which can assemble the path. This
//! module implements that estimator over the overlay graph (the statistic
//! itself is computable decentrally by background queries or approximate
//! counting, as the paper notes; here we read it from the topology, which
//! is the same information). It is exercised by the `zone_routing` ablation
//! tests and usable by callers that want to pick a strategy per query.

use ndlog_net::topology::Topology;
use ndlog_net::NodeAddr;
use serde::{Deserialize, Serialize};

/// A search strategy for a constrained (source, destination) path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Explore forward from the source only (the magic/source-routing
    /// program).
    TopDown,
    /// Derive backwards from the destination only (the magic-destination
    /// program).
    BottomUp,
    /// Split the radius: explore `source_radius` hops from the source and
    /// `destination_radius` hops from the destination concurrently.
    Hybrid {
        /// Radius of the forward (source-side) exploration.
        source_radius: usize,
        /// Radius of the backward (destination-side) exploration.
        destination_radius: usize,
    },
}

/// The estimated message cost of a strategy, measured in "nodes reached"
/// (each reached node forwards the query once, per the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyEstimate {
    /// The strategy.
    pub strategy: SearchStrategy,
    /// Estimated number of nodes that participate.
    pub cost: usize,
}

/// Estimate the cost of the pure top-down strategy: `N(s, dist(s, d))`.
pub fn top_down_cost(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<usize> {
    let dist = graph.hop_distance(src, dst)?;
    Some(graph.neighborhood(src, dist))
}

/// Estimate the cost of the pure bottom-up strategy: `N(d, dist(s, d))`.
pub fn bottom_up_cost(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<usize> {
    let dist = graph.hop_distance(src, dst)?;
    Some(graph.neighborhood(dst, dist))
}

/// Find the radius split `(rs, rd)` with `rs + rd = dist(s, d)` minimizing
/// `N(s, rs) + N(d, rd)`. Returns `None` when the nodes are disconnected.
pub fn hybrid_split(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<StrategyEstimate> {
    let dist = graph.hop_distance(src, dst)?;
    let mut best: Option<(usize, usize, usize)> = None;
    for rs in 0..=dist {
        let rd = dist - rs;
        let cost = graph.neighborhood(src, rs) + graph.neighborhood(dst, rd);
        match best {
            Some((_, _, c)) if c <= cost => {}
            _ => best = Some((rs, rd, cost)),
        }
    }
    best.map(|(rs, rd, cost)| StrategyEstimate {
        strategy: SearchStrategy::Hybrid {
            source_radius: rs,
            destination_radius: rd,
        },
        cost,
    })
}

/// Choose the cheapest of TD, BU and the best hybrid split for a query.
pub fn choose_strategy(graph: &Topology, src: NodeAddr, dst: NodeAddr) -> Option<StrategyEstimate> {
    let td = StrategyEstimate {
        strategy: SearchStrategy::TopDown,
        cost: top_down_cost(graph, src, dst)?,
    };
    let bu = StrategyEstimate {
        strategy: SearchStrategy::BottomUp,
        cost: bottom_up_cost(graph, src, dst)?,
    };
    let hybrid = hybrid_split(graph, src, dst)?;
    // Prefer the simpler single-direction strategies on ties (a hybrid of
    // equal cost buys nothing and needs coordination).
    let mut best = td;
    if bu.cost < best.cost {
        best = bu;
    }
    if hybrid.cost < best.cost {
        best = hybrid;
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_net::topology::LinkMetrics;

    /// A "dumbbell": a dense clique with extra leaf nodes around the
    /// source, a long path to a sparse destination. 15 nodes: clique
    /// 0..=4, path 4-5-6-7-8-9, leaves 10..=14 attached to node 0.
    fn dumbbell() -> Topology {
        let mut t = Topology::with_nodes(15);
        let m = LinkMetrics::uniform();
        // Clique over nodes 0..=4 (dense side, containing the source 0).
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                t.add_link(NodeAddr(a), NodeAddr(b), m).unwrap();
            }
        }
        // Path 4 - 5 - 6 - 7 - 8 - 9 (sparse side, destination 9).
        for a in 4..9u32 {
            t.add_link(NodeAddr(a), NodeAddr(a + 1), m).unwrap();
        }
        // Leaves hanging off the source, out of the destination's reach
        // within dist(0, 9) hops.
        for leaf in 10..15u32 {
            t.add_link(NodeAddr(0), NodeAddr(leaf), m).unwrap();
        }
        t
    }

    #[test]
    fn td_and_bu_costs_reflect_density() {
        let g = dumbbell();
        let src = NodeAddr(0);
        let dst = NodeAddr(9);
        // dist(0, 9) = 6 hops (one hop across the clique, five along the path).
        assert_eq!(g.hop_distance(src, dst), Some(6));
        let td = top_down_cost(&g, src, dst).unwrap();
        let bu = bottom_up_cost(&g, src, dst).unwrap();
        // Exploring from the dense side reaches everything (15 nodes); the
        // sparse side never reaches the source's leaves within 6 hops, so
        // BU is cheaper here.
        assert_eq!(td, 15);
        assert_eq!(bu, 10);
        assert!(bu < td);
    }

    #[test]
    fn hybrid_never_loses_to_pure_strategies() {
        let g = dumbbell();
        for (s, d) in [(0u32, 9u32), (9, 0), (1, 7), (5, 9)] {
            let src = NodeAddr(s);
            let dst = NodeAddr(d);
            let hybrid = hybrid_split(&g, src, dst).unwrap();
            let td = top_down_cost(&g, src, dst).unwrap();
            let bu = bottom_up_cost(&g, src, dst).unwrap();
            assert!(
                hybrid.cost <= td.min(bu) + 1,
                "hybrid {hybrid:?} should be competitive with td {td} / bu {bu}"
            );
            let SearchStrategy::Hybrid {
                source_radius,
                destination_radius,
            } = hybrid.strategy
            else {
                panic!("hybrid_split always returns a hybrid");
            };
            assert_eq!(
                source_radius + destination_radius,
                g.hop_distance(src, dst).unwrap()
            );
        }
    }

    #[test]
    fn choose_strategy_picks_the_sparse_end() {
        let g = dumbbell();
        let best = choose_strategy(&g, NodeAddr(0), NodeAddr(9)).unwrap();
        // Starting from the clique is the worst option; the chosen strategy
        // must not be pure top-down.
        assert_ne!(best.strategy, SearchStrategy::TopDown);
        let reverse = choose_strategy(&g, NodeAddr(9), NodeAddr(0)).unwrap();
        assert_ne!(reverse.strategy, SearchStrategy::BottomUp);
        assert_eq!(best.cost, reverse.cost, "the problem is symmetric");
    }

    #[test]
    fn adjacent_nodes_cost_one_endpoint() {
        let g = dumbbell();
        let est = choose_strategy(&g, NodeAddr(5), NodeAddr(6)).unwrap();
        assert!(est.cost <= 3);
    }

    #[test]
    fn disconnected_nodes_have_no_strategy() {
        let mut g = Topology::with_nodes(3);
        g.add_link(NodeAddr(0), NodeAddr(1), LinkMetrics::uniform())
            .unwrap();
        assert!(choose_strategy(&g, NodeAddr(0), NodeAddr(2)).is_none());
        assert!(hybrid_split(&g, NodeAddr(0), NodeAddr(2)).is_none());
        assert!(top_down_cost(&g, NodeAddr(0), NodeAddr(2)).is_none());
    }

    #[test]
    fn same_node_query_is_free() {
        let g = dumbbell();
        let est = choose_strategy(&g, NodeAddr(3), NodeAddr(3)).unwrap();
        assert!(est.cost <= 2);
    }
}
