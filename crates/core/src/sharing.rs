//! Opportunistic message sharing (Section 5.2).
//!
//! When several queries run concurrently (e.g. shortest paths under
//! different metrics), the tuples they send are often identical except for
//! the metric attribute. If a node delays its outbound tuples briefly, the
//! engine can join tuples headed for the same destination that share all
//! attribute values except one into a single combined message, and the
//! receiver re-partitions them. The saving is the shared prefix, which for
//! path tuples (source, destination, next hop, path vector) dominates the
//! message size.
//!
//! This module implements the byte accounting of that combination: given
//! the batch of deltas a node flushes towards one neighbor, it computes the
//! size of the combined encoding. The actual payload delivered to the
//! receiver is unchanged (the receiver conceptually re-partitions), so
//! correctness is unaffected — only the bytes on the wire differ, which is
//! what Figure 12 measures.
//!
//! This module is the **single** wire-size implementation: the epoch
//! executor's [`OutboundBatch`] pre-sizing
//! ([`crate::exec::executor::outbound_batches`]) calls
//! [`plain_wire_size`]/[`combined_wire_size`], and the batch-level helpers
//! ([`batch_payload`], [`batch_saving`], [`result_wire_bytes`]) let the
//! experiment harness account traffic from those same pre-sized batches
//! instead of re-deriving byte formulas of its own.

use crate::exec::executor::OutboundBatch;
use ndlog_lang::Value;
use ndlog_runtime::TupleDelta;
use std::collections::BTreeMap;

/// Extra bytes per combined tuple (sign + bookkeeping).
const PER_TUPLE_OVERHEAD: usize = 1;

/// Size in bytes of the batch without any sharing: each delta is encoded
/// independently.
pub fn plain_wire_size(deltas: &[TupleDelta]) -> usize {
    deltas.iter().map(TupleDelta::wire_size).sum()
}

/// Size in bytes of the batch when tuples that agree on every attribute
/// except the last are combined into one message (the shared prefix is
/// encoded once; each member contributes its relation name and final
/// attribute).
pub fn combined_wire_size(deltas: &[TupleDelta]) -> usize {
    // Group by the tuple values with the final column removed; the sign is
    // part of the key so insertions and deletions are never merged.
    let mut groups: BTreeMap<(Vec<Value>, bool), Vec<&TupleDelta>> = BTreeMap::new();
    let mut singletons = 0usize;
    for delta in deltas {
        let values = delta.tuple.values();
        if values.len() < 2 {
            singletons += delta.wire_size();
            continue;
        }
        let prefix: Vec<Value> = values[..values.len() - 1].to_vec();
        let key = (prefix, delta.sign == ndlog_runtime::Sign::Insert);
        groups.entry(key).or_default().push(delta);
    }
    let mut total = singletons;
    for ((prefix, _), members) in groups {
        let prefix_size = 2 + prefix.iter().map(Value::wire_size).sum::<usize>();
        total += prefix_size;
        for member in members {
            let last = member
                .tuple
                .values()
                .last()
                .map(Value::wire_size)
                .unwrap_or(0);
            total += member.relation.len() + last + PER_TUPLE_OVERHEAD;
        }
    }
    total
}

/// The byte saving (plain minus combined); zero when sharing finds nothing
/// to combine.
pub fn saving(deltas: &[TupleDelta]) -> usize {
    plain_wire_size(deltas).saturating_sub(combined_wire_size(deltas))
}

/// Total payload bytes across a set of real, pre-sized outbound batches
/// (as produced by [`crate::exec::executor::outbound_batches`]).
pub fn batch_payload(batches: &[OutboundBatch]) -> usize {
    batches.iter().map(|b| b.payload_bytes).sum()
}

/// Bytes sharing saved across real outbound batches: the plain encoding
/// of each batch's deltas minus its pre-computed payload. Zero when the
/// batches were sized with sharing disabled.
pub fn batch_saving(batches: &[OutboundBatch]) -> usize {
    batches
        .iter()
        .map(|b| plain_wire_size(&b.deltas).saturating_sub(b.payload_bytes))
        .sum()
}

/// Wire bytes of shipping one tuple delta as its own message over a link,
/// header included — the sizing result-return accounting uses, so harness
/// formulas cannot drift from the engine's per-delta encoding.
pub fn result_wire_bytes(delta: &TupleDelta, header_bytes: usize) -> usize {
    plain_wire_size(std::slice::from_ref(delta)) + header_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_runtime::Tuple;

    fn path_delta(relation: &str, cost: f64) -> TupleDelta {
        TupleDelta::insert(
            relation,
            Tuple::new(vec![
                Value::addr(0u32),
                Value::addr(9u32),
                Value::addr(3u32),
                Value::list(vec![
                    Value::addr(0u32),
                    Value::addr(3u32),
                    Value::addr(9u32),
                ]),
                Value::Float(cost),
            ]),
        )
    }

    #[test]
    fn identical_prefixes_share_bytes() {
        let deltas = vec![
            path_delta("path_latency", 12.0),
            path_delta("path_reliability", 3.0),
            path_delta("path_random", 77.0),
        ];
        let plain = plain_wire_size(&deltas);
        let combined = combined_wire_size(&deltas);
        assert!(combined < plain);
        // The shared prefix (two addresses + next hop + 3-element path
        // vector) is paid once instead of three times.
        assert!(
            saving(&deltas) > plain / 3,
            "saving {} vs plain {plain}",
            saving(&deltas)
        );
    }

    #[test]
    fn unrelated_tuples_do_not_combine() {
        let a = path_delta("path_latency", 12.0);
        let different = TupleDelta::insert(
            "path_latency",
            Tuple::new(vec![
                Value::addr(1u32),
                Value::addr(8u32),
                Value::addr(2u32),
                Value::list(vec![
                    Value::addr(1u32),
                    Value::addr(2u32),
                    Value::addr(8u32),
                ]),
                Value::Float(5.0),
            ]),
        );
        let deltas = vec![a, different];
        // Different prefixes: combined encoding still pays both prefixes, so
        // the saving is at most the per-delta fixed overhead.
        assert!(combined_wire_size(&deltas) + 10 >= plain_wire_size(&deltas));
    }

    #[test]
    fn inserts_and_deletes_never_merge() {
        let ins = path_delta("path_latency", 12.0);
        let mut del = path_delta("path_latency", 12.0);
        del.sign = ndlog_runtime::Sign::Delete;
        let combined = combined_wire_size(&[ins.clone(), del.clone()]);
        // Both carry their own prefix.
        assert!(combined > ins.wire_size());
    }

    #[test]
    fn batch_helpers_account_real_outbound_batches() {
        use crate::exec::executor::outbound_batches;
        use ndlog_net::NodeAddr;

        let deltas = vec![
            path_delta("path_latency", 12.0),
            path_delta("path_reliability", 3.0),
        ];
        let mut outbound = BTreeMap::new();
        outbound.insert(NodeAddr(3), deltas.clone());

        // Sized with sharing: the pre-computed payload is the combined
        // encoding, and the saving helper recovers plain - combined.
        let shared = outbound_batches(true, outbound.clone());
        assert_eq!(batch_payload(&shared), combined_wire_size(&deltas));
        assert_eq!(batch_saving(&shared), saving(&deltas));

        // Sized without sharing: payload is plain, saving is zero.
        let plain = outbound_batches(false, outbound);
        assert_eq!(batch_payload(&plain), plain_wire_size(&deltas));
        assert_eq!(batch_saving(&plain), 0);
    }

    #[test]
    fn result_wire_bytes_matches_per_delta_encoding() {
        let delta = path_delta("shortestPath", 4.0);
        assert_eq!(
            result_wire_bytes(&delta, 28),
            delta.wire_size() + 28,
            "one delta alone encodes plainly plus the message header"
        );
    }

    #[test]
    fn single_and_tiny_tuples_are_unaffected() {
        let single = vec![path_delta("p", 1.0)];
        assert!(combined_wire_size(&single) <= plain_wire_size(&single));
        let tiny = vec![TupleDelta::insert("t", Tuple::new(vec![Value::Int(1)]))];
        assert_eq!(combined_wire_size(&tiny), plain_wire_size(&tiny));
        let empty: Vec<TupleDelta> = Vec::new();
        assert_eq!(combined_wire_size(&empty), 0);
        assert_eq!(plain_wire_size(&empty), 0);
    }
}
