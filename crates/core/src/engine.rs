//! The distributed executor: runs one [`NodeEngine`] per overlay node over
//! the discrete-event network simulator.
//!
//! The executor owns the event loop:
//!
//! 1. base-data changes (link insertions, update bursts) are injected at
//!    specific nodes and processed to a local fixpoint;
//! 2. derivations located at other nodes are batched per destination and
//!    sent along overlay links (the simulator enforces FIFO delivery and
//!    accounts every byte, matching the paper's communication-overhead
//!    metric);
//! 3. deliveries trigger processing at the receiving node, and so on until
//!    the network quiesces.
//!
//! The executor also records every change to the tracked result relations
//! with its simulation timestamp, from which it derives the paper's two
//! evaluation metrics: *convergence time* (time until all results reach
//! their final value) and *% results over time* (Figures 8 and 10).
//!
//! The event loop always runs in *epochs*: batches of events within a
//! conservative lookahead window are evaluated by the [`crate::exec`]
//! subsystem and their effects merged back in `(time, seq)` order. With
//! [`EngineConfig::parallelism`] ≥ 2 the epoch's nodes are sharded across
//! that many OS threads; with 1 thread the same dispatch runs inline on
//! the caller. Either way a run is bit-for-bit identical across thread
//! counts. Consecutive same-node deliveries within an epoch are merged
//! into one receive batch by default
//! ([`EngineConfig::coalesce_deliveries`]), and the wire payload buffers
//! circulate through per-node arenas ([`crate::exec::arena`]) instead of
//! being reallocated per message.

use crate::exec::{
    outbound_batches, result_records, ArenaStats, EpochExecutor, NodeAction, NodeTask,
    OutboundBatch,
};
use crate::node::{NodeConfig, NodeEngine};
use crate::plan::QueryPlan;
use crate::updates::LinkUpdate;
use ndlog_lang::Value;
use ndlog_net::sim::{ms, to_seconds, SimTime};
use ndlog_net::stats::NetStats;
use ndlog_net::topology::Topology;
use ndlog_net::{FaultPlan, FaultStats, Message, NodeAddr, SimConfig, Simulator};
use ndlog_runtime::{EvalError, EvalStats, Sign, Tuple, TupleDelta};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Timer token for outbound-buffer flushes.
const FLUSH_TOKEN: u64 = 1;
/// Timer token for a scheduled node crash (from the fault plan).
const CRASH_TOKEN: u64 = 2;
/// Timer token for a crashed node's rejoin.
const REJOIN_TOKEN: u64 = 3;
/// Timer token for the periodic soft-state refresh tick.
const REFRESH_TOKEN: u64 = 4;

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-node configuration template.
    pub node: NodeConfig,
    /// Simulator configuration (FIFO links, header size, ...).
    pub sim: SimConfig,
    /// Safety cap for [`DistributedEngine::run_to_quiescence`], in seconds.
    pub max_seconds: f64,
    /// Relations whose propagation is blocked at specific nodes (used by
    /// the query-result caching experiment).
    pub blocked_propagation: BTreeMap<String, BTreeSet<NodeAddr>>,
    /// Number of executor threads (default 1 = epochs evaluated inline on
    /// the caller). Any value ≥ 2 shards the simulated nodes across that
    /// many OS threads per epoch; results are bit-for-bit identical at
    /// every thread count (see [`crate::exec`]).
    pub parallelism: usize,
    /// Merge consecutive same-node deliveries within an epoch into one
    /// receive batch (default `true`). Coalescing is a different — wider-
    /// batched — evaluation schedule than per-event delivery, so traffic
    /// traces differ between the two settings; within either setting,
    /// results are thread-count invariant (see [`crate::exec::executor`]).
    pub coalesce_deliveries: bool,
    /// Deterministic fault plan attached to the simulator (loss, jitter,
    /// duplication, partitions, crash/rejoin waves). `None` keeps the
    /// reliable network of all previous experiments.
    pub fault: Option<FaultPlan>,
    /// Soft-state refresh driver (`None` disables it). When set, base
    /// facts injected through [`DistributedEngine::insert_base`] are
    /// remembered as *seeds* and periodically re-announced at their node,
    /// and every node re-fires its stored state each tick — the healing
    /// half of the paper's soft-state story.
    pub refresh: Option<RefreshConfig>,
}

/// Soft-state refresh driver configuration.
///
/// Every `interval_seconds` each node gets a refresh tick: its seed facts
/// are re-announced (a duplicate insert refreshes the stored tuple's TTL
/// and propagates nothing) and its stored state is re-fired, re-sending
/// current remote conclusions so receivers that lost the original message
/// are repaired by the next cycle. Ticks stop after `horizon_seconds`, so
/// runs still quiesce; pick a horizon at least one TTL plus a few
/// intervals past the fault plan's last scheduled event, giving stale
/// soft state time to expire (and be retracted exactly, via DRed) while
/// live state keeps being refreshed until the end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshConfig {
    /// Seconds between refresh ticks at each node.
    pub interval_seconds: f64,
    /// Simulation time (seconds) after which no more ticks are scheduled.
    pub horizon_seconds: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            node: NodeConfig::default(),
            sim: SimConfig::default(),
            max_seconds: 600.0,
            blocked_propagation: BTreeMap::new(),
            parallelism: 1,
            coalesce_deliveries: true,
            fault: None,
            refresh: None,
        }
    }
}

/// Fault-injection repair accounting for a run: what the network dropped
/// and how much of it the soft-state refresh cycle healed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultRepairReport {
    /// Distinct (destination, relation, tuple) insertions dropped in
    /// flight by the fault plan.
    pub dropped_inserts: usize,
    /// Of those, how many are present at their destination now — lost
    /// then healed (by a refresh re-send or an equivalent re-derivation).
    /// Dropped insertions that are obsolete by the end of the run (later
    /// replaced under their primary key, pruned as non-best, or expired)
    /// legitimately stay unrepaired, so this is not expected to reach
    /// `dropped_inserts` on a converging run.
    pub repaired: usize,
    /// Refresh ticks delivered across all nodes.
    pub refresh_ticks: u64,
    /// Seed deltas re-announced by those ticks (the refresh overhead's
    /// input side; the traffic side shows up in [`NetStats`]).
    pub refresh_reannounced: u64,
}

/// Delivery-schedule statistics of a run: how many message deliveries were
/// ingested and in how many receive batches the coalescer processed them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Message deliveries ingested by the event loop.
    pub deliveries: u64,
    /// Receive batches those deliveries were processed in.
    pub receive_batches: u64,
}

impl DeliveryStats {
    /// Mean number of deliveries merged into one receive batch (1.0 when
    /// coalescing is off or no two deliveries were adjacent).
    pub fn mean_batch_width(&self) -> f64 {
        if self.receive_batches == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.receive_batches as f64
        }
    }
}

/// One recorded change to a tracked result relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRecord {
    /// Simulation time of the change.
    pub time: SimTime,
    /// Node at which the result is stored.
    pub node: NodeAddr,
    /// Relation name.
    pub relation: String,
    /// The tuple.
    pub tuple: Tuple,
    /// Insertion or deletion.
    pub sign: Sign,
}

/// Summary of a run segment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Whether the network quiesced before the time cap.
    pub quiesced: bool,
    /// Simulation time at the end of the segment, in seconds.
    pub seconds: f64,
    /// Total messages sent so far.
    pub messages: usize,
    /// Total megabytes sent so far.
    pub total_mb: f64,
}

/// Convergence metrics for one tracked relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Number of results present in the final state.
    pub total_results: usize,
    /// Time (seconds) at which the last result reached its final value.
    pub convergence_seconds: f64,
    /// Per-result finalization times (seconds), sorted ascending.
    pub finalization_times: Vec<f64>,
}

impl ConvergenceReport {
    /// Fraction of eventual results that had reached their final value by
    /// time `t` seconds (the y-axis of Figures 8 and 10).
    pub fn completion_at(&self, t: f64) -> f64 {
        if self.total_results == 0 {
            return 0.0;
        }
        let done = self.finalization_times.iter().filter(|&&x| x <= t).count();
        done as f64 / self.total_results as f64
    }

    /// Sample the completion curve every `step` seconds up to convergence.
    pub fn completion_series(&self, step: f64) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let end = self.convergence_seconds + step;
        while t <= end {
            out.push((t, self.completion_at(t)));
            t += step;
        }
        out
    }
}

/// The distributed declarative-networking engine.
pub struct DistributedEngine {
    sim: Simulator<Vec<TupleDelta>>,
    nodes: BTreeMap<NodeAddr, NodeEngine>,
    /// Declared primary keys per relation (for result tracking).
    key_columns: BTreeMap<String, Vec<usize>>,
    result_log: Vec<ResultRecord>,
    flush_pending: BTreeSet<NodeAddr>,
    sharing_enabled: bool,
    max_seconds: f64,
    /// Drives the epoch event loop (inline at 1 thread, pooled above).
    executor: EpochExecutor,
    /// Delivery-coalescing mode, kept for executor rebuilds.
    coalesce: bool,
    delivery_stats: DeliveryStats,
    /// Base facts per node, remembered for refresh re-announcement and
    /// crash rejoin (tracked only when a fault plan or refresh driver is
    /// configured).
    seeds: BTreeMap<NodeAddr, Vec<TupleDelta>>,
    refresh: Option<RefreshConfig>,
    /// Crash/rejoin/refresh timers are scheduled lazily on the first
    /// `run_until`, so setup-time base facts are already in the seed map.
    fault_timers_scheduled: bool,
    refresh_ticks: u64,
    refresh_reannounced: u64,
    /// Insert deltas the fault plan dropped in flight, for the repair
    /// report.
    dropped_inserts: Vec<(NodeAddr, String, Tuple)>,
}

impl DistributedEngine {
    /// Build an engine over an overlay graph running the given plans on
    /// every node.
    pub fn new(graph: Topology, plans: &[QueryPlan], config: EngineConfig) -> Result<Self, String> {
        let all_strands: Vec<_> = plans.iter().flat_map(|p| p.strands.clone()).collect();
        let strands = Arc::new(all_strands);

        let mut tracked: BTreeSet<String> = config.node.tracked_relations.clone();
        for plan in plans {
            tracked.extend(plan.query_relations());
        }
        let mut key_columns = BTreeMap::new();
        for plan in plans {
            for decl in &plan.program.tables {
                key_columns.insert(decl.name.clone(), decl.key_columns.clone());
            }
        }

        let mut nodes = BTreeMap::new();
        for addr in graph.nodes() {
            let mut node_config = config.node.clone();
            node_config.tracked_relations = tracked.clone();
            node_config.blocked_relations = config
                .blocked_propagation
                .iter()
                .filter(|(_, nodes)| nodes.contains(&addr))
                .map(|(rel, _)| rel.clone())
                .collect();
            let engine = NodeEngine::new(addr, plans, Arc::clone(&strands), node_config)?;
            nodes.insert(addr, engine);
        }

        let sharing_enabled = config.node.sharing_delay.is_some();
        let mut sim = Simulator::new(graph, config.sim);
        if let Some(plan) = config.fault {
            sim.set_fault_plan(plan)?;
        }
        Ok(DistributedEngine {
            sim,
            nodes,
            key_columns,
            result_log: Vec::new(),
            flush_pending: BTreeSet::new(),
            sharing_enabled,
            max_seconds: config.max_seconds,
            executor: EpochExecutor::new(config.parallelism, sharing_enabled)
                .coalescing(config.coalesce_deliveries),
            coalesce: config.coalesce_deliveries,
            delivery_stats: DeliveryStats::default(),
            seeds: BTreeMap::new(),
            refresh: config.refresh,
            fault_timers_scheduled: false,
            refresh_ticks: 0,
            refresh_reannounced: 0,
            dropped_inserts: Vec::new(),
        })
    }

    /// The number of executor threads in effect (1 = inline epochs).
    pub fn parallelism(&self) -> usize {
        self.executor.threads()
    }

    /// Change the number of executor threads. `threads <= 1` evaluates
    /// epochs inline on the caller; `threads >= 2` shards nodes across
    /// that many OS threads per epoch. Safe to flip between runs —
    /// results are bit-for-bit identical either way.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.executor = EpochExecutor::new(threads, self.sharing_enabled).coalescing(self.coalesce);
    }

    /// Delivery/receive-batch counters accumulated by the event loop (the
    /// coalescer's receive-batch-width statistic).
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.delivery_stats
    }

    /// Wire-buffer arena counters summed over all nodes: the per-message
    /// allocation demand vs. the backing capacity the pools actually
    /// created (see [`crate::exec::arena`]).
    pub fn arena_stats(&self) -> ArenaStats {
        let mut total = ArenaStats::default();
        for node in self.nodes.values() {
            total.absorb(node.arena_stats());
        }
        total
    }

    /// Current simulation time in seconds.
    pub fn now_seconds(&self) -> f64 {
        to_seconds(self.sim.now())
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        self.sim.stats()
    }

    /// Fault-injection counters from the simulator (all zero without a
    /// fault plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.sim.fault_stats()
    }

    /// Repair accounting: which in-flight insertions the fault plan
    /// dropped, and how many of them are nevertheless present at their
    /// destination now — i.e. were healed by a refresh re-send (or an
    /// equivalent re-derivation) as the paper's soft-state story promises.
    pub fn fault_repair_report(&self) -> FaultRepairReport {
        let distinct: BTreeSet<&(NodeAddr, String, Tuple)> = self.dropped_inserts.iter().collect();
        let repaired = distinct
            .iter()
            .filter(|(dest, relation, tuple)| {
                self.nodes
                    .get(dest)
                    .and_then(|n| n.store().relation(relation))
                    .is_some_and(|r| r.contains(tuple))
            })
            .count();
        FaultRepairReport {
            dropped_inserts: distinct.len(),
            repaired,
            refresh_ticks: self.refresh_ticks,
            refresh_reannounced: self.refresh_reannounced,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A node's engine (panics on unknown address).
    pub fn node(&self, addr: NodeAddr) -> &NodeEngine {
        &self.nodes[&addr]
    }

    /// All nodes with their engines, in address order (for inspection and
    /// whole-network comparisons).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeAddr, &NodeEngine)> {
        self.nodes.iter().map(|(addr, node)| (*addr, node))
    }

    /// The raw result log.
    pub fn result_log(&self) -> &[ResultRecord] {
        &self.result_log
    }

    /// Total insertions pruned by aggregate selections across all nodes.
    pub fn pruned_total(&self) -> u64 {
        self.nodes.values().map(NodeEngine::pruned).sum()
    }

    /// Aggregate evaluation statistics across all nodes: processed deltas,
    /// derivations and the probe/scan/tuples-examined counters — with
    /// probes split into per-environment `logical_probes` and actually
    /// executed `distinct_probes` (key-grouped batches answer every
    /// same-key trigger with one bucket lookup). This is the
    /// computation-overhead side of the paper's evaluation, complementing
    /// [`DistributedEngine::stats`]'s communication accounting.
    pub fn computation_stats(&self) -> EvalStats {
        let mut total = EvalStats::default();
        for node in self.nodes.values() {
            total += node.eval_stats();
        }
        total
    }

    /// Insert a base tuple at a node and process the consequences at the
    /// current simulation time.
    pub fn insert_base(
        &mut self,
        node: NodeAddr,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(), EvalError> {
        self.inject(node, TupleDelta::insert(relation, tuple))
    }

    /// Delete a base tuple at a node.
    pub fn delete_base(
        &mut self,
        node: NodeAddr,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(), EvalError> {
        self.inject(node, TupleDelta::delete(relation, tuple))
    }

    /// Apply a bidirectional link-cost update (deletion of the old tuple
    /// followed by insertion of the new one, in both directions).
    pub fn apply_link_update(
        &mut self,
        relation: &str,
        update: &LinkUpdate,
    ) -> Result<(), EvalError> {
        let link = |s: NodeAddr, d: NodeAddr, c: f64| {
            Tuple::new(vec![Value::Addr(s), Value::Addr(d), Value::Float(c)])
        };
        self.delete_base(
            update.a,
            relation,
            link(update.a, update.b, update.old_cost),
        )?;
        self.insert_base(
            update.a,
            relation,
            link(update.a, update.b, update.new_cost),
        )?;
        self.delete_base(
            update.b,
            relation,
            link(update.b, update.a, update.old_cost),
        )?;
        self.insert_base(
            update.b,
            relation,
            link(update.b, update.a, update.new_cost),
        )?;
        Ok(())
    }

    fn inject(&mut self, node: NodeAddr, delta: TupleDelta) -> Result<(), EvalError> {
        self.remember_seed(node, &delta);
        let engine = self
            .nodes
            .get_mut(&node)
            .unwrap_or_else(|| panic!("unknown node {node}"));
        engine.receive(vec![delta]);
        self.process_node(node)
    }

    /// Record a base-data injection as a seed fact: the refresh driver
    /// re-announces seeds every tick, and a rejoining node repopulates
    /// from them. A deletion stops the seed from being refreshed — under
    /// soft state, that is how a fact is permanently withdrawn: it simply
    /// expires everywhere once nobody re-announces it.
    fn remember_seed(&mut self, node: NodeAddr, delta: &TupleDelta) {
        if self.refresh.is_none() && self.sim.fault_plan().is_none() {
            return;
        }
        let seeds = self.seeds.entry(node).or_default();
        match delta.sign {
            Sign::Insert => seeds.push(delta.clone()),
            Sign::Delete => {
                seeds.retain(|s| !(s.relation == delta.relation && s.tuple == delta.tuple))
            }
        }
    }

    /// Process a node to its local fixpoint and ship its outbound batches.
    ///
    /// Mirrors `exec::executor::drain_lane` exactly (clock advance, then
    /// soft-state expiry, then processing, then effect pre-serialization
    /// through the shared `result_records` / `outbound_batches` helpers) —
    /// the two must stay in lockstep for parallel runs to be bit-identical
    /// to sequential ones.
    fn process_node(&mut self, addr: NodeAddr) -> Result<(), EvalError> {
        let now = self.sim.now();
        let output = {
            let node = self.nodes.get_mut(&addr).expect("known node");
            node.set_time(now);
            node.expire_soft_state(now);
            node.process()?
        };
        self.apply_effects(
            addr,
            result_records(addr, now, output.changes),
            outbound_batches(self.sharing_enabled, output.outbound),
            output.request_flush,
            false,
        );
        Ok(())
    }

    /// Apply one event's externally visible effects to the engine-side
    /// state: pending-flush bookkeeping, result recording, outbound sends
    /// and flush-timer scheduling. This is the *single* implementation
    /// shared by the sequential event loop (via [`Self::process_node`] and
    /// the flush-timer arm) and the epoch replay, so the two execution
    /// modes cannot drift apart and break the bit-for-bit determinism
    /// contract. The effects arrive pre-serialized (timestamped records,
    /// pre-sized batches) — in epoch mode they were rendered concurrently
    /// inside the executor lanes, so this serial tail only appends and
    /// pushes.
    fn apply_effects(
        &mut self,
        node: NodeAddr,
        mut records: Vec<ResultRecord>,
        sends: Vec<OutboundBatch>,
        request_flush: bool,
        was_flush: bool,
    ) {
        if was_flush {
            self.flush_pending.remove(&node);
        }
        self.result_log.append(&mut records);
        for batch in sends {
            self.send_batch(node, batch);
        }
        if request_flush && !self.flush_pending.contains(&node) {
            if let Some(interval) = self.nodes[&node].flush_interval() {
                self.sim.schedule_timer_in(interval, node, FLUSH_TOKEN);
                self.flush_pending.insert(node);
            }
        }
    }

    fn send_batch(&mut self, from: NodeAddr, batch: OutboundBatch) {
        if batch.deltas.is_empty() {
            return;
        }
        let dest = batch.dest;
        // With a fault plan attached, remember which insertions a dropped
        // message carried so the repair report can check whether refresh
        // healed them.
        let snapshot = self
            .sim
            .fault_plan()
            .is_some()
            .then(|| batch.deltas.clone());
        let delivered = self
            .sim
            .send(Message::new(from, dest, batch.payload_bytes, batch.deltas));
        if delivered.is_none() {
            if let Some(deltas) = snapshot {
                for d in deltas {
                    if d.sign == Sign::Insert {
                        self.dropped_inserts.push((dest, d.relation, d.tuple));
                    }
                }
            }
        }
    }

    /// Schedule the fault plan's crash/rejoin timers and the first refresh
    /// tick per node. Idempotent; runs once, on the first `run_until`
    /// call, so base facts injected during setup are already in the seed
    /// map by the time the first refresh tick fires.
    fn ensure_fault_timers(&mut self) {
        if self.fault_timers_scheduled {
            return;
        }
        self.fault_timers_scheduled = true;
        let crashes: Vec<(NodeAddr, SimTime, SimTime)> = self
            .sim
            .fault_plan()
            .map(|p| {
                p.crashes
                    .iter()
                    .map(|c| (c.node, c.at, c.rejoin_at))
                    .collect()
            })
            .unwrap_or_default();
        for (node, at, rejoin_at) in crashes {
            self.sim.schedule_timer(at, node, CRASH_TOKEN);
            self.sim.schedule_timer(rejoin_at, node, REJOIN_TOKEN);
        }
        if let Some(refresh) = self.refresh {
            let first = ms(refresh.interval_seconds * 1000.0);
            let addrs: Vec<NodeAddr> = self.nodes.keys().copied().collect();
            for addr in addrs {
                self.sim.schedule_timer(first, addr, REFRESH_TOKEN);
            }
        }
    }

    /// The conservative lookahead window for epoch draining: no larger
    /// than the minimum link propagation delay (a message sent inside the
    /// window cannot arrive inside it) nor than the nodes' flush interval
    /// (a flush timer scheduled inside the window cannot fire inside it).
    /// Falls back to single-timestamp epochs (window 1) when either bound
    /// degenerates.
    fn epoch_window(&self) -> SimTime {
        let mut window = self.sim.min_link_delay().unwrap_or(1);
        for node in self.nodes.values() {
            if let Some(interval) = node.flush_interval() {
                window = window.min(interval);
            }
        }
        window.max(1)
    }

    /// Process events until the simulation time exceeds `seconds` or the
    /// network quiesces. Returns a report of the run so far.
    ///
    /// Drains the simulator in epochs, evaluates each on the executor
    /// (inline at 1 thread, on the worker pool above), and replays the
    /// merged outcomes in `(time, seq)` order (see [`crate::exec`] for
    /// the full contract).
    pub fn run_until(&mut self, seconds: f64) -> Result<RunReport, EvalError> {
        self.ensure_fault_timers();
        let limit = ms(seconds * 1000.0);
        let window = self.epoch_window();
        let mut quiesced = true;
        while let Some(next) = self.sim.peek_time() {
            if next > limit {
                quiesced = false;
                break;
            }
            let mut tasks = Vec::new();
            for event in self.sim.drain_epoch(window, limit) {
                match event.kind {
                    ndlog_net::EventKind::Delivery(message) => tasks.push(NodeTask {
                        time: event.time,
                        seq: event.seq,
                        node: message.to,
                        action: NodeAction::Deliver(message.payload),
                    }),
                    ndlog_net::EventKind::Timer { node, token } if token == FLUSH_TOKEN => tasks
                        .push(NodeTask {
                            time: event.time,
                            seq: event.seq,
                            node,
                            action: NodeAction::Flush,
                        }),
                    ndlog_net::EventKind::Timer { node, token } if token == CRASH_TOKEN => tasks
                        .push(NodeTask {
                            time: event.time,
                            seq: event.seq,
                            node,
                            action: NodeAction::Crash,
                        }),
                    ndlog_net::EventKind::Timer { node, token }
                        if token == REJOIN_TOKEN || token == REFRESH_TOKEN =>
                    {
                        if token == REFRESH_TOKEN {
                            // Reschedule the next tick while inside the
                            // horizon. This happens on the serial dispatch
                            // path, so the timer schedule is identical at
                            // every thread count.
                            if let Some(refresh) = self.refresh {
                                let next_tick = event.time + ms(refresh.interval_seconds * 1000.0);
                                if next_tick <= ms(refresh.horizon_seconds * 1000.0) {
                                    self.sim.schedule_timer(next_tick, node, REFRESH_TOKEN);
                                }
                            }
                            // A tick landing inside the node's down window
                            // is lost with the node; the rejoin timer
                            // repopulates it.
                            if self
                                .sim
                                .fault_plan()
                                .is_some_and(|p| p.node_down_at(node, event.time))
                            {
                                continue;
                            }
                        }
                        let seeds = self.seeds.get(&node).cloned().unwrap_or_default();
                        self.refresh_ticks += 1;
                        self.refresh_reannounced += seeds.len() as u64;
                        tasks.push(NodeTask {
                            time: event.time,
                            seq: event.seq,
                            node,
                            action: NodeAction::Refresh(seeds),
                        });
                    }
                    ndlog_net::EventKind::Timer { .. } => {}
                }
            }
            let result = self.executor.run_epoch(&mut self.nodes, tasks);
            self.delivery_stats.deliveries += result.deliveries;
            self.delivery_stats.receive_batches += result.receive_batches;
            for outcome in result.outcomes {
                self.sim.advance_to(outcome.time);
                self.apply_effects(
                    outcome.node,
                    outcome.records,
                    outcome.sends,
                    outcome.request_flush,
                    outcome.was_flush,
                );
            }
            if let Some(error) = result.error {
                // The effects preceding the failing event were replayed
                // above, matching the sequential loop's state at its first
                // error (see `exec::executor::EpochResult`).
                return Err(error);
            }
        }
        Ok(self.report(quiesced))
    }

    /// Run until no events remain (or the configured time cap is reached).
    pub fn run_to_quiescence(&mut self) -> Result<RunReport, EvalError> {
        let report = self.run_until(self.max_seconds)?;
        Ok(RunReport {
            quiesced: self.sim.peek_time().is_none(),
            ..report
        })
    }

    fn report(&self, quiesced: bool) -> RunReport {
        RunReport {
            quiesced,
            seconds: self.now_seconds(),
            messages: self.sim.stats().message_count(),
            total_mb: self.sim.stats().total_mb(),
        }
    }

    /// All stored tuples of a relation across the network, tagged with the
    /// node that stores them.
    pub fn results(&self, relation: &str) -> Vec<(NodeAddr, Tuple)> {
        let mut out = Vec::new();
        for (addr, node) in &self.nodes {
            for tuple in node.store().tuples(relation) {
                out.push((*addr, tuple));
            }
        }
        out
    }

    /// Total number of stored tuples of a relation across the network.
    pub fn result_count(&self, relation: &str) -> usize {
        self.nodes.values().map(|n| n.store().count(relation)).sum()
    }

    /// Convergence metrics for a tracked relation, derived from the result
    /// log: for every (node, primary key) the time of its last change is
    /// its finalization time; results that end deleted are excluded.
    pub fn convergence(&self, relation: &str) -> ConvergenceReport {
        let key_cols = self.key_columns.get(relation).cloned().unwrap_or_default();
        let key_of = |tuple: &Tuple| -> Vec<Value> {
            if key_cols.is_empty() {
                tuple.values().to_vec()
            } else {
                tuple.project(&key_cols)
            }
        };
        let mut last: BTreeMap<(NodeAddr, Vec<Value>), (SimTime, Sign)> = BTreeMap::new();
        for record in self.result_log.iter().filter(|r| r.relation == relation) {
            last.insert(
                (record.node, key_of(&record.tuple)),
                (record.time, record.sign),
            );
        }
        let mut finalization_times: Vec<f64> = last
            .values()
            .filter(|(_, sign)| *sign == Sign::Insert)
            .map(|(t, _)| to_seconds(*t))
            .collect();
        finalization_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ConvergenceReport {
            total_results: finalization_times.len(),
            convergence_seconds: finalization_times.last().copied().unwrap_or(0.0),
            finalization_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use ndlog_lang::programs;
    use ndlog_net::topology::LinkMetrics;

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    fn link_tuple(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(vec![addr(s), addr(d), Value::Float(c)])
    }

    /// A 4-node diamond overlay: 0-1 (5), 0-2 (1), 2-1 (1), 1-3 (1).
    fn diamond() -> (Topology, Vec<(u32, u32, f64)>) {
        let mut t = Topology::with_nodes(4);
        let edges = vec![(0u32, 1u32, 5.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)];
        for &(a, b, _) in &edges {
            t.add_link(
                NodeAddr(a),
                NodeAddr(b),
                LinkMetrics {
                    latency_ms: 2.0,
                    reliability: 1.0,
                    random: 1.0,
                    bandwidth_bps: 10_000_000.0,
                },
            )
            .unwrap();
        }
        (t, edges)
    }

    fn build_engine(aggregate_selections: bool) -> DistributedEngine {
        let (graph, edges) = diamond();
        let plan = plan(&programs::shortest_path("")).unwrap();
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(graph, &[plan], config).unwrap();
        for (a, b, c) in edges {
            engine
                .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                .unwrap();
            engine
                .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                .unwrap();
        }
        engine
    }

    fn shortest_cost(engine: &DistributedEngine, s: u32, d: u32) -> f64 {
        engine
            .results("shortestPath")
            .into_iter()
            .find(|(node, t)| {
                *node == NodeAddr(s) && t.get(0) == Some(&addr(s)) && t.get(1) == Some(&addr(d))
            })
            .and_then(|(_, t)| t.get(3).and_then(|v| v.as_f64()))
            .unwrap_or(f64::NAN)
    }

    #[test]
    fn distributed_shortest_paths_converge() {
        let mut engine = build_engine(true);
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
        assert!(report.messages > 0);
        assert!(report.total_mb > 0.0);
        // All-pairs results are stored at their source nodes.
        assert_eq!(engine.result_count("shortestPath"), 12);
        assert_eq!(shortest_cost(&engine, 0, 1), 2.0);
        assert_eq!(shortest_cost(&engine, 0, 3), 3.0);
        assert_eq!(shortest_cost(&engine, 3, 0), 3.0);
        assert_eq!(shortest_cost(&engine, 2, 3), 2.0);
    }

    #[test]
    fn aggregate_selections_reduce_messages() {
        let mut with = build_engine(true);
        with.run_to_quiescence().unwrap();
        let mut without = build_engine(false);
        without.run_to_quiescence().unwrap();
        // Both compute the same shortest-path costs...
        for (s, d) in [(0u32, 1u32), (0, 3), (1, 2), (3, 2)] {
            assert_eq!(shortest_cost(&with, s, d), shortest_cost(&without, s, d));
        }
        // ...but pruning strictly reduces the bytes on the wire.
        assert!(with.stats().total_bytes() <= without.stats().total_bytes());
        assert!(with.pruned_total() > 0);
    }

    #[test]
    fn convergence_report_tracks_completion() {
        let mut engine = build_engine(true);
        engine.run_to_quiescence().unwrap();
        let conv = engine.convergence("shortestPath");
        assert_eq!(conv.total_results, 12);
        assert!(conv.convergence_seconds > 0.0);
        // Some 1-hop results are already final at t = 0 (derived from the
        // local link facts before any message travels), but not all.
        assert!(conv.completion_at(0.0) < 1.0);
        assert!((conv.completion_at(conv.convergence_seconds) - 1.0).abs() < 1e-9);
        let series = conv.completion_series(0.001);
        assert!(series.len() > 2);
        assert!(
            series.windows(2).all(|w| w[0].1 <= w[1].1),
            "monotone completion"
        );
    }

    #[test]
    fn link_update_changes_best_path() {
        let mut engine = build_engine(true);
        engine.run_to_quiescence().unwrap();
        assert_eq!(shortest_cost(&engine, 0, 1), 2.0);
        let before = engine.stats().total_bytes();
        // The 0-2 link degrades to cost 10: the direct 0-1 link (cost 5)
        // becomes the best path.
        engine
            .apply_link_update(
                "link",
                &LinkUpdate {
                    a: NodeAddr(0),
                    b: NodeAddr(2),
                    old_cost: 1.0,
                    new_cost: 10.0,
                },
            )
            .unwrap();
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
        assert_eq!(shortest_cost(&engine, 0, 1), 5.0);
        assert!(
            engine.stats().total_bytes() > before,
            "updates cost bandwidth"
        );
    }

    #[test]
    fn run_until_respects_the_time_limit() {
        let (graph, edges) = diamond();
        let plan = plan(&programs::shortest_path("")).unwrap();
        let mut engine = DistributedEngine::new(graph, &[plan], EngineConfig::default()).unwrap();
        for (a, b, c) in edges {
            engine
                .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                .unwrap();
            engine
                .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                .unwrap();
        }
        // 1 ms is not enough for any 2 ms-latency message to arrive.
        let report = engine.run_until(0.001).unwrap();
        assert!(!report.quiesced);
        // Before any message arrives each node only knows 1-hop paths to
        // its direct neighbors: 2 + 3 + 2 + 1 = 8 results in the diamond.
        assert_eq!(
            engine.result_count("shortestPath"),
            8,
            "only 1-hop paths so far"
        );
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
        assert_eq!(engine.result_count("shortestPath"), 12);
    }

    #[test]
    fn sharing_reduces_bytes_for_concurrent_queries() {
        let (graph, edges) = diamond();
        let plans: Vec<_> = ["latency", "reliability", "random"]
            .iter()
            .map(|m| plan(&programs::shortest_path(m)).unwrap())
            .collect();

        let run = |sharing: bool| -> u64 {
            let config = EngineConfig {
                node: NodeConfig {
                    aggregate_selections: true,
                    sharing_delay: if sharing { Some(ms(300.0)) } else { None },
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut engine = DistributedEngine::new(graph.clone(), &plans, config).unwrap();
            for metric in ["latency", "reliability", "random"] {
                let relation = format!("link_{metric}");
                for &(a, b, c) in &edges {
                    engine
                        .insert_base(NodeAddr(a), &relation, link_tuple(a, b, c))
                        .unwrap();
                    engine
                        .insert_base(NodeAddr(b), &relation, link_tuple(b, a, c))
                        .unwrap();
                }
            }
            engine.run_to_quiescence().unwrap();
            assert_eq!(engine.result_count("shortestPath_latency"), 12);
            engine.stats().total_bytes()
        };

        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "sharing must reduce bytes: {with} vs {without}"
        );
    }

    fn build_parallel_engine(aggregate_selections: bool, threads: usize) -> DistributedEngine {
        let (graph, edges) = diamond();
        let plan = plan(&programs::shortest_path("")).unwrap();
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections,
                ..Default::default()
            },
            parallelism: threads,
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(graph, &[plan], config).unwrap();
        for (a, b, c) in edges {
            engine
                .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                .unwrap();
            engine
                .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                .unwrap();
        }
        engine
    }

    #[test]
    fn parallel_run_is_bitwise_identical_to_sequential() {
        let mut sequential = build_parallel_engine(true, 1);
        assert_eq!(sequential.parallelism(), 1);
        let seq_report = sequential.run_to_quiescence().unwrap();
        for threads in [2, 4] {
            let mut parallel = build_parallel_engine(true, threads);
            assert_eq!(parallel.parallelism(), threads);
            let par_report = parallel.run_to_quiescence().unwrap();
            assert_eq!(
                par_report, seq_report,
                "reports differ at {threads} threads"
            );
            crate::consistency::check_bitwise_identical(&sequential, &parallel)
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn parallel_run_with_flush_timers_matches_sequential() {
        // Sharing delays exercise the flush-timer half of the epoch
        // executor (held outbound tuples, Flush tasks, pending-flush
        // bookkeeping).
        let (graph, edges) = diamond();
        let build = |threads: usize| {
            let plan = plan(&programs::shortest_path("")).unwrap();
            let config = EngineConfig {
                node: NodeConfig {
                    aggregate_selections: true,
                    sharing_delay: Some(ms(300.0)),
                    ..Default::default()
                },
                parallelism: threads,
                ..Default::default()
            };
            let mut engine = DistributedEngine::new(graph.clone(), &[plan], config).unwrap();
            for &(a, b, c) in &edges {
                engine
                    .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                    .unwrap();
                engine
                    .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                    .unwrap();
            }
            engine.run_to_quiescence().unwrap();
            engine
        };
        let sequential = build(1);
        let parallel = build(3);
        crate::consistency::check_bitwise_identical(&sequential, &parallel).unwrap();
    }

    #[test]
    fn parallel_engine_handles_updates_and_reruns() {
        let run = |threads: usize| {
            let mut engine = build_parallel_engine(true, threads);
            engine.run_to_quiescence().unwrap();
            engine
                .apply_link_update(
                    "link",
                    &LinkUpdate {
                        a: NodeAddr(0),
                        b: NodeAddr(2),
                        old_cost: 1.0,
                        new_cost: 10.0,
                    },
                )
                .unwrap();
            engine.run_to_quiescence().unwrap();
            engine
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(shortest_cost(&parallel, 0, 1), 5.0);
        crate::consistency::check_bitwise_identical(&sequential, &parallel).unwrap();
    }

    #[test]
    fn set_parallelism_flips_between_runs() {
        let mut engine = build_parallel_engine(true, 1);
        engine.run_until(0.001).unwrap();
        engine.set_parallelism(4);
        assert_eq!(engine.parallelism(), 4);
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
        assert_eq!(engine.result_count("shortestPath"), 12);
        engine.set_parallelism(1);
        assert_eq!(engine.parallelism(), 1);
    }

    #[test]
    fn blocked_propagation_limits_exploration() {
        // Source-routing exploration from node 0; block pathDst propagation
        // at node 1 and check node 3 (behind 1 on the line 0-2-1-3... use
        // diamond: 3 is only reachable through 1) never learns a path.
        let (graph, edges) = diamond();
        let plan = plan(&programs::shortest_path_source_routing("")).unwrap();
        let mut blocked = BTreeMap::new();
        blocked.insert(
            "pathDst".to_string(),
            [NodeAddr(1)].into_iter().collect::<BTreeSet<_>>(),
        );
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections: true,
                ..Default::default()
            },
            blocked_propagation: blocked,
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(graph, &[plan], config).unwrap();
        for (a, b, c) in edges {
            engine
                .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                .unwrap();
            engine
                .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                .unwrap();
        }
        engine
            .insert_base(NodeAddr(0), "magicSrc", Tuple::new(vec![addr(0)]))
            .unwrap();
        engine
            .insert_base(NodeAddr(3), "magicDst", Tuple::new(vec![addr(3)]))
            .unwrap();
        engine.run_to_quiescence().unwrap();
        // Node 1 received exploration tuples but did not forward them, so
        // node 3 has none.
        assert!(engine.node(NodeAddr(1)).store().count("pathDst") > 0);
        assert_eq!(engine.node(NodeAddr(3)).store().count("pathDst"), 0);
    }

    /// Build a soft-state diamond engine with the given fault plan and
    /// refresh driver, seed links both ways, and run it to quiescence.
    fn run_faulty(
        fault: ndlog_net::FaultPlan,
        refresh: RefreshConfig,
        threads: usize,
    ) -> DistributedEngine {
        let (graph, edges) = diamond();
        let plan = plan(&programs::shortest_path_soft("", 3.0)).unwrap();
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections: true,
                ..Default::default()
            },
            parallelism: threads,
            fault: Some(fault),
            refresh: Some(refresh),
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(graph, &[plan], config).unwrap();
        for (a, b, c) in edges {
            engine
                .insert_base(NodeAddr(a), "link", link_tuple(a, b, c))
                .unwrap();
            engine
                .insert_base(NodeAddr(b), "link", link_tuple(b, a, c))
                .unwrap();
        }
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced, "faulty run must still quiesce");
        engine
    }

    fn assert_diamond_costs(engine: &DistributedEngine) {
        assert_eq!(engine.result_count("shortestPath"), 12);
        assert_eq!(shortest_cost(engine, 0, 1), 2.0);
        assert_eq!(shortest_cost(engine, 0, 3), 3.0);
        assert_eq!(shortest_cost(engine, 3, 0), 3.0);
        assert_eq!(shortest_cost(engine, 2, 3), 2.0);
    }

    #[test]
    fn lossy_run_with_refresh_heals_to_the_reliable_fixpoint() {
        let fault = ndlog_net::FaultPlan::new(0xad5eed)
            .with_default_faults(ndlog_net::LinkFaults {
                loss: 0.3,
                duplicate: 0.1,
                jitter_ms: 1.0,
            })
            .with_active_until(ms(4_000.0));
        let refresh = RefreshConfig {
            interval_seconds: 1.0,
            horizon_seconds: 12.0,
        };
        let engine = run_faulty(fault, refresh, 1);
        assert_diamond_costs(&engine);
        let stats = engine.fault_stats();
        assert!(stats.loss_drops > 0, "30% loss must drop something");
        let repair = engine.fault_repair_report();
        assert!(repair.refresh_ticks > 0);
        // Some dropped insertions are obsolete by the end (replaced by a
        // better tuple or pruned as non-best), so not every one reappears —
        // but the refresh cycle must have healed a nonzero share, and the
        // converged costs above prove the survivors are exactly right.
        assert!(repair.dropped_inserts > 0, "seeded loss must hit inserts");
        assert!(repair.repaired > 0, "refresh must heal dropped inserts");
    }

    #[test]
    fn crash_rejoin_repopulates_from_seeds() {
        // Node 2 crashes at 2 s and rejoins at 4 s; refresh repopulates it
        // and every pair converges to the reliable fixpoint anyway.
        let fault = ndlog_net::FaultPlan::new(7).with_crash(NodeAddr(2), ms(2_000.0), ms(4_000.0));
        let refresh = RefreshConfig {
            interval_seconds: 1.0,
            horizon_seconds: 12.0,
        };
        let engine = run_faulty(fault, refresh, 1);
        assert_diamond_costs(&engine);
        assert!(
            engine.node(NodeAddr(2)).store().count("link") > 0,
            "rejoined node must repopulate its seed links"
        );
        assert!(
            engine.fault_stats().crash_drops > 0,
            "messages to the down node are lost"
        );
    }

    #[test]
    fn faulty_runs_are_bit_identical_across_thread_counts() {
        let make_fault = || {
            ndlog_net::FaultPlan::new(0xbeef)
                .with_default_faults(ndlog_net::LinkFaults {
                    loss: 0.2,
                    duplicate: 0.1,
                    jitter_ms: 1.5,
                })
                .with_crash(NodeAddr(1), ms(1_500.0), ms(3_500.0))
                .with_active_until(ms(4_000.0))
        };
        let refresh = RefreshConfig {
            interval_seconds: 1.0,
            horizon_seconds: 12.0,
        };
        let baseline = run_faulty(make_fault(), refresh, 1);
        for threads in [2, 4] {
            let parallel = run_faulty(make_fault(), refresh, threads);
            crate::consistency::check_bitwise_identical(&baseline, &parallel)
                .unwrap_or_else(|e| panic!("{threads} threads diverged: {e}"));
            assert_eq!(baseline.fault_stats(), parallel.fault_stats());
        }
    }
}
