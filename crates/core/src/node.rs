//! A single node's engine: the per-node half of the P2 dataflow.
//!
//! Every network node runs the same plan over its own store. Tuples arrive
//! either from local base-data changes or from the network; insertions are
//! processed with pipelined semi-naive evaluation (one tuple at a time,
//! timestamp-guarded joins), and derivations whose location specifier names
//! another node are handed back to the distributed engine to be sent along
//! the corresponding link. Deletions take the DRed path instead
//! (`ndlog_runtime::dred`): any tuple actually removed from the local
//! store seeds an over-delete of its local downstream closure — shipping
//! deletion derivations headed at other nodes — followed by re-derivation
//! of the survivors, so retractions stay exact whatever the derivation
//! counts say.
//!
//! The node also implements the per-node halves of the paper's
//! optimizations:
//!
//! * **aggregate selections** (Section 5.1.1): an insertion into a relation
//!   with an inferred monotonic aggregate selection is pruned unless it is
//!   strictly better than the node's current aggregate for its group, so
//!   only improvements are stored, extended and propagated;
//! * **periodic aggregate selections**: outbound tuples of such relations
//!   are buffered and, on a periodic flush, only the best tuple per
//!   (destination, group) is actually sent;
//! * **opportunistic message sharing** (Section 5.2): all outbound tuples
//!   are delayed briefly so the engine can combine tuples that share
//!   attribute values into one message;
//! * **propagation blocking**, used by the query-result caching experiment
//!   to model a node answering from its cache instead of forwarding an
//!   exploration.

use crate::exec::arena::{ArenaStats, DeltaArena};
use crate::plan::QueryPlan;
use ndlog_lang::aggsel::AggSelectionSpec;
use ndlog_net::sim::SimTime;
use ndlog_net::NodeAddr;
use ndlog_runtime::batch::{BatchOutput, BatchScratch, BatchTrigger};
use ndlog_runtime::dred;
use ndlog_runtime::strand::{Derivation, JoinStats};
use ndlog_runtime::{
    AggregateView, CompiledStrand, DeltaTap, EvalError, EvalStats, Sign, Store, Tuple, TupleDelta,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Per-node configuration (shared by all nodes in an experiment except for
/// the blocked-relation set, which the caching experiment varies per node).
#[derive(Debug, Clone, Default)]
pub struct NodeConfig {
    /// Enable aggregate-selection pruning.
    pub aggregate_selections: bool,
    /// Buffer outbound tuples of selection relations and flush them
    /// periodically (the *periodic aggregate selections* variant).
    pub periodic_flush: Option<SimTime>,
    /// Delay all outbound tuples by this long to create message-sharing
    /// opportunities (Section 5.2; the paper uses 300 ms).
    pub sharing_delay: Option<SimTime>,
    /// Relations whose outbound propagation from this node is suppressed
    /// (query-result caching: this node answers from its cache instead).
    pub blocked_relations: BTreeSet<String>,
    /// Relations whose changes should be reported to the distributed engine
    /// for convergence tracking.
    pub tracked_relations: BTreeSet<String>,
}

/// A change to a tracked relation, reported to the distributed engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultChange {
    /// Relation name.
    pub relation: String,
    /// The tuple that was inserted or deleted.
    pub tuple: Tuple,
    /// Insertion or deletion.
    pub sign: Sign,
}

/// What one processing step produced.
#[derive(Debug, Default)]
pub struct ProcessOutput {
    /// Outbound deltas grouped by destination node.
    pub outbound: BTreeMap<NodeAddr, Vec<TupleDelta>>,
    /// Changes to tracked relations.
    pub changes: Vec<ResultChange>,
    /// Whether the node buffered outbound tuples and needs a flush timer.
    pub request_flush: bool,
}

/// The per-node engine.
pub struct NodeEngine {
    addr: NodeAddr,
    config: NodeConfig,
    store: Store,
    strands: Arc<Vec<CompiledStrand>>,
    views: Vec<AggregateView>,
    /// (selection, index of the aggregate view that tracks its groups).
    selections: Vec<(AggSelectionSpec, usize)>,
    /// Insert-only work queue: applied deltas whose strands have not fired.
    queue: VecDeque<(TupleDelta, u64)>,
    /// Tuples actually removed from the store (arriving deletions whose
    /// count reached zero, replacement old-halves, soft-state expiries),
    /// awaiting the next DRed over-delete/re-derive pass.
    pending_deletes: Vec<TupleDelta>,
    /// Outbound deltas held for periodic flush / message sharing.
    held: Vec<(NodeAddr, TupleDelta)>,
    changes: Vec<ResultChange>,
    /// Count of insertions pruned by aggregate selections.
    pruned: u64,
    /// Cumulative evaluation statistics (probe/scan/tuples-examined
    /// counters and processed-delta counts) for computation-overhead
    /// reporting.
    stats: EvalStats,
    /// Reusable flat buffers for batch-delta strand firing.
    scratch: BatchScratch,
    batch_out: BatchOutput,
    /// Probe signatures shared by two or more strands (across *all* of
    /// this node's query plans). Non-empty arms a per-round cross-rule
    /// probe cache, so one round's distinct `(relation, cols, key)`
    /// lookups execute once no matter how many strands share them (see
    /// `ndlog_runtime::subplan`).
    shared_sigs: Vec<(String, Vec<usize>)>,
    /// Live-query hook: records visibility transitions of subscribed
    /// relations at this node (see `ndlog_runtime::tap`).
    tap: DeltaTap,
    /// Pool of reusable wire-payload buffers: delivered payloads are
    /// recycled here after ingestion and the outbound path rents from it,
    /// so message buffers circulate instead of being reallocated (see
    /// `crate::exec::arena`).
    arena: DeltaArena,
}

impl NodeEngine {
    /// Build a node engine for a set of plans (one per concurrent query).
    /// `strands` is the concatenation of all plans' strands, shared across
    /// nodes.
    pub fn new(
        addr: NodeAddr,
        plans: &[QueryPlan],
        strands: Arc<Vec<CompiledStrand>>,
        config: NodeConfig,
    ) -> Result<Self, String> {
        let mut store = Store::new();
        let mut views = Vec::new();
        let mut selections = Vec::new();
        for plan in plans {
            store.add_program(&plan.program);
            for rule in &plan.aggregate_rules {
                views.push(AggregateView::from_rule(rule)?);
            }
        }
        // Build every secondary index the shared strands' probe plans and
        // the views' guard checks declare, once per node at construction
        // time.
        store.declare_indexes(strands.iter());
        for view in &views {
            for (relation, cols) in view.index_requirements() {
                store.declare_index(&relation, &cols);
            }
        }
        for plan in plans {
            for sel in &plan.selections {
                let Some(view_idx) = views
                    .iter()
                    .position(|v| v.head_relation() == sel.aggregate_relation)
                else {
                    return Err(format!(
                        "aggregate selection on {} has no matching aggregate view",
                        sel.relation
                    ));
                };
                selections.push((sel.clone(), view_idx));
            }
        }
        let shared_sigs = ndlog_runtime::subplan::shared_signatures(&strands);
        Ok(NodeEngine {
            addr,
            config,
            store,
            strands,
            views,
            selections,
            queue: VecDeque::new(),
            pending_deletes: Vec::new(),
            held: Vec::new(),
            changes: Vec::new(),
            pruned: 0,
            stats: EvalStats::default(),
            scratch: BatchScratch::default(),
            batch_out: BatchOutput::default(),
            shared_sigs,
            tap: DeltaTap::new(),
            arena: DeltaArena::default(),
        })
    }

    /// This node's address.
    pub fn addr(&self) -> NodeAddr {
        self.addr
    }

    /// The live-query delta tap for this node.
    pub fn tap(&self) -> &DeltaTap {
        &self.tap
    }

    /// Mutable access to the delta tap (subscribe/unsubscribe relations).
    pub fn tap_mut(&mut self) -> &mut DeltaTap {
        &mut self.tap
    }

    /// Take the visibility transitions recorded at this node since the
    /// last drain, in store order.
    pub fn drain_tap(&mut self) -> Vec<TupleDelta> {
        self.tap.drain()
    }

    /// The node's store (for inspection).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of insertions pruned by aggregate selections so far.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// Cumulative evaluation statistics: processed deltas, derivations, and
    /// the probe/scan/tuples-examined counters that quantify computation
    /// overhead (the per-node counterpart of the network byte accounting).
    /// Probes are counted at both granularities — `logical_probes` per
    /// binding environment and `distinct_probes` for the bucket lookups
    /// actually executed after key-grouped probe sharing; both are
    /// deterministic for a given event order, so they participate in the
    /// bitwise-identity checks across executor thread counts.
    pub fn eval_stats(&self) -> EvalStats {
        self.stats
    }

    /// Whether the node has unprocessed work queued.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty() || !self.pending_deletes.is_empty()
    }

    /// Advance the node's logical clock (for soft-state expiry).
    pub fn set_time(&mut self, now_micros: u64) {
        self.store.set_time(now_micros);
    }

    /// Accept deltas arriving from the network (or from local base-data
    /// changes). They are applied to the store and queued; call
    /// [`NodeEngine::process`] to run them to a local fixpoint. The
    /// drained payload buffer is recycled into this node's arena, closing
    /// the zero-copy loop: the vector allocated by some sender's outbound
    /// path becomes one of this node's future outbound batches.
    pub fn receive(&mut self, mut deltas: Vec<TupleDelta>) {
        let payload_len = deltas.len();
        for delta in deltas.drain(..) {
            self.ingest(delta);
        }
        self.arena.recycle(payload_len, deltas);
    }

    /// This node's wire-buffer pool counters (meaningful summed across all
    /// nodes — buffers rent at senders and recycle at receivers).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Expire soft-state tuples; the expired tuples seed the next DRed
    /// pass (they are already removed from the store, and an expiry is
    /// authoritative — never re-derived).
    pub fn expire_soft_state(&mut self, now_micros: u64) {
        let deltas = self.store.expire(now_micros);
        self.pending_deletes.extend(deltas);
    }

    /// Crash the node: all volatile state — stored tuples, aggregate-view
    /// groups, the evaluation queue, pending deletions and held outbound
    /// tuples — is lost, exactly as a process restart would lose it.
    /// Tracked relations and tap subscribers see an explicit retraction of
    /// every stored tuple so downstream result logs stay exact; sequence
    /// numbers and the logical clock survive (a rejoining node must not
    /// travel back in time). Returns the tracked-relation retractions.
    pub fn crash_reset(&mut self) -> Vec<ResultChange> {
        let names: Vec<String> = self.store.relation_names().map(str::to_string).collect();
        for name in names {
            for tuple in self.store.tuples(&name) {
                let delta = TupleDelta::delete(name.clone(), tuple);
                self.tap.record(&delta);
                if self.config.tracked_relations.contains(&name) {
                    self.changes.push(ResultChange {
                        relation: name.clone(),
                        tuple: delta.tuple.clone(),
                        sign: Sign::Delete,
                    });
                }
            }
        }
        self.store.clear_tuples();
        self.queue.clear();
        self.pending_deletes.clear();
        self.held.clear();
        for view in &mut self.views {
            view.reset();
        }
        std::mem::take(&mut self.changes)
    }

    /// Queue every stored tuple for re-firing with its original stored
    /// timestamp. Joins fire once per pair (the member with the larger
    /// timestamp sees the smaller one, never vice versa — the pipelined
    /// visibility rule), so one refire pass re-derives the node's current
    /// conclusions without duplicating derivation pairs. Re-derived local
    /// conclusions are absorbed as duplicates (which refreshes their
    /// soft-state expiry); remote conclusions are re-sent — exactly the
    /// repair traffic a soft-state refresh cycle pays, and what heals
    /// receivers that lost the original message.
    pub fn refresh_refire(&mut self) {
        let names: Vec<String> = self.store.relation_names().map(str::to_string).collect();
        for name in names {
            let entries: Vec<(Tuple, u64)> = match self.store.relation(&name) {
                Some(rel) => rel.iter().map(|s| (s.tuple.clone(), s.seq)).collect(),
                None => continue,
            };
            for (tuple, seq) in entries {
                self.queue
                    .push_back((TupleDelta::insert(name.clone(), tuple), seq));
            }
        }
    }

    /// Returns the current aggregate value governing a selection relation
    /// group, if any (used by tests).
    pub fn current_best(&self, relation: &str, tuple: &Tuple) -> Option<ndlog_lang::Value> {
        self.selections
            .iter()
            .find(|(sel, _)| sel.relation == relation)
            .and_then(|(_, idx)| self.views[*idx].current_for(tuple))
    }

    /// Apply a delta to the local store, with aggregate-selection pruning,
    /// view maintenance and change tracking; queue whatever changed.
    fn ingest(&mut self, delta: TupleDelta) {
        // Aggregate-selection pruning: drop insertions that cannot improve
        // their group's aggregate.
        if self.config.aggregate_selections && delta.sign == Sign::Insert {
            if let Some((sel, view_idx)) = self
                .selections
                .iter()
                .find(|(sel, _)| sel.relation == delta.relation)
            {
                if let (Some(candidate), Some(current)) = (
                    delta.tuple.get(sel.value_col).and_then(|v| v.as_f64()),
                    self.views[*view_idx]
                        .current_for(&delta.tuple)
                        .and_then(|v| v.as_f64()),
                ) {
                    if !sel.is_better(candidate, current) {
                        // A re-announcement of the reigning best tuple is
                        // "not strictly better" too, but it must still
                        // reach the store so its soft-state expiry moves
                        // forward (the Duplicate outcome propagates
                        // nothing); everything else is pruned outright.
                        if self
                            .store
                            .relation(&delta.relation)
                            .is_some_and(|r| r.contains(&delta.tuple))
                        {
                            self.store.apply(&delta);
                            self.refresh_view_outputs(&delta);
                        }
                        self.pruned += 1;
                        return;
                    }
                }
            }
        }

        let effect = self.store.apply(&delta);
        let seq = effect.seq;
        // A duplicate insertion (nothing to propagate) still re-exercised
        // the derivations downstream of this tuple; aggregate-view outputs
        // emit nothing when the best is unchanged, so their soft-state
        // expiry has to be moved forward here.
        if delta.sign == Sign::Insert && effect.propagate.is_empty() {
            self.refresh_view_outputs(&delta);
        }
        for prop in effect.propagate {
            if prop.sign == Sign::Delete {
                // An actual removal (count reached zero, or the old half
                // of a replacement): seed the next DRed pass instead of
                // cascading by count. The views are not fed — the pass
                // rebuilds the affected groups from the store.
                self.pending_deletes.push(prop);
                continue;
            }
            self.after_store_change(prop, seq);
        }
    }

    /// Bookkeeping after a real insertion: tracking, view maintenance,
    /// queueing.
    /// A duplicate insertion of a view's source tuple keeps that group's
    /// aggregate derivable, so the group's current output tuple must have
    /// its soft-state expiry refreshed along with the source — the view
    /// itself emits nothing while the best is unchanged. Only outputs
    /// still present in the store are touched (a bare store insert here
    /// would bypass the tracking/queueing bookkeeping).
    fn refresh_view_outputs(&mut self, delta: &TupleDelta) {
        for view in &self.views {
            if view.source_relation() != delta.relation {
                continue;
            }
            let Some(key) = view.group_key(&delta.tuple) else {
                continue;
            };
            let Some(best) = view.current_output(&key) else {
                continue;
            };
            if self
                .store
                .relation(view.head_relation())
                .is_some_and(|r| r.contains(best))
            {
                self.store
                    .apply(&TupleDelta::insert(view.head_relation(), best.clone()));
            }
        }
    }

    fn after_store_change(&mut self, delta: TupleDelta, seq: u64) {
        // A propagated insert is a 0 → >0 visibility transition.
        self.tap.record(&delta);
        if self.config.tracked_relations.contains(&delta.relation) {
            self.changes.push(ResultChange {
                relation: delta.relation.clone(),
                tuple: delta.tuple.clone(),
                sign: delta.sign,
            });
        }
        // Feed aggregate views; their outputs are local (aggregate rules
        // are local rules) and are ingested recursively.
        let mut view_outputs = Vec::new();
        for view in &mut self.views {
            if view.source_relation() == delta.relation {
                view_outputs.extend(view.apply(&self.store, &delta));
            }
        }
        self.queue.push_back((delta, seq));
        for out in view_outputs {
            self.ingest(out);
        }
    }

    /// Send a derivation headed at another node along its link, honoring
    /// the blocked-relation set and the hold-for-flush buffers.
    fn route_remote(
        &mut self,
        dest: NodeAddr,
        delta: TupleDelta,
        outbound: &mut BTreeMap<NodeAddr, Vec<TupleDelta>>,
        request_flush: &mut bool,
    ) {
        if self.config.blocked_relations.contains(&delta.relation) {
            return;
        }
        let hold_for_sharing = self.config.sharing_delay.is_some();
        let hold_for_periodic = self.config.periodic_flush.is_some()
            && self
                .selections
                .iter()
                .any(|(sel, _)| sel.relation == delta.relation);
        if hold_for_sharing || hold_for_periodic {
            self.held.push((dest, delta));
            *request_flush = true;
        } else {
            outbound
                .entry(dest)
                .or_insert_with(|| self.arena.rent())
                .push(delta);
        }
    }

    /// Run one DRed pass over the pending removals: over-delete the local
    /// downstream closure (shipping deletion derivations headed at other
    /// nodes), rebuild the pinned aggregate groups, and re-ingest the
    /// surviving derivations. Remote over-deletions may over-approximate;
    /// the re-derive cascade re-ships the insertions that still hold, so
    /// the net effect at every receiver is exact.
    fn run_dred(
        &mut self,
        outbound: &mut BTreeMap<NodeAddr, Vec<TupleDelta>>,
        request_flush: &mut bool,
    ) -> Result<(), EvalError> {
        let seeds = std::mem::take(&mut self.pending_deletes);
        let mut joins = JoinStats::default();
        let mut marking = dred::over_delete(
            &mut self.store,
            &self.strands,
            &self.views,
            seeds,
            Some(self.addr),
            &mut joins,
        )?;
        // Each removal is one processed delta, and a tracked-relation
        // change the result log must see.
        self.stats.iterations += marking.removed.len();
        self.stats.tuples_processed += marking.removed.len();
        for delta in &marking.removed {
            // Every marked tuple actually left the store; re-derived
            // survivors come back through `ingest` as inserts.
            self.tap.record(delta);
            if self.config.tracked_relations.contains(&delta.relation) {
                self.changes.push(ResultChange {
                    relation: delta.relation.clone(),
                    tuple: delta.tuple.clone(),
                    sign: Sign::Delete,
                });
            }
        }
        for (dest, delta) in std::mem::take(&mut marking.remote) {
            self.route_remote(dest, delta, outbound, request_flush);
        }
        let mut inserts: Vec<TupleDelta> = Vec::new();
        for (view_idx, key) in &marking.dirty_groups {
            inserts.extend(self.views[*view_idx].rebuild_group(&self.store, key, &mut joins));
        }
        for candidate in marking.rederive_candidates() {
            inserts.extend(dred::rederive_inserts(
                &self.store,
                &self.strands,
                candidate,
                &mut joins,
            )?);
        }
        self.stats.derivations += inserts.len();
        self.stats.absorb_joins(joins);
        for delta in inserts {
            debug_assert_eq!(delta.sign, Sign::Insert);
            self.ingest(delta);
        }
        Ok(())
    }

    /// Run queued work to a local fixpoint, producing outbound messages and
    /// tracked-relation changes. Pending removals are drained first (and
    /// whenever an insertion cascade causes further removals), so every
    /// retraction is handled by a DRed pass before dependent insertions
    /// fire.
    ///
    /// The queue is consumed in **delta batches**: every currently queued
    /// insertion fires against one store snapshot through the strands'
    /// slot-compiled batch plans (flat reusable buffers, no per-environment
    /// allocation), and the precomputed derivations are then routed/ingested
    /// trigger by trigger in the exact tuple-at-a-time order. Firing
    /// before sibling ingests is PSN-exact — sibling derivations carry
    /// timestamps above every batch trigger's visibility limit — and any
    /// mid-batch removal invalidates the batch remainder, which returns to
    /// the queue front and re-fires after the DRed pass.
    pub fn process(&mut self) -> Result<ProcessOutput, EvalError> {
        let mut outbound: BTreeMap<NodeAddr, Vec<TupleDelta>> = BTreeMap::new();
        let mut request_flush = false;

        loop {
            if !self.pending_deletes.is_empty() {
                self.run_dred(&mut outbound, &mut request_flush)?;
                continue;
            }
            if self.queue.is_empty() {
                break;
            }
            let round: Vec<(TupleDelta, u64)> = self.queue.drain(..).collect();
            let mut per_trigger = self.fire_batch_round(&round)?;
            let mut consumed = round.len();
            for (i, derived) in per_trigger.iter_mut().enumerate() {
                self.stats.iterations += 1;
                self.stats.tuples_processed += 1;
                self.stats.derivations += derived.len();
                for derivation in derived.drain(..) {
                    match derivation.location {
                        Some(dest) if dest != self.addr => {
                            self.route_remote(
                                dest,
                                derivation.delta,
                                &mut outbound,
                                &mut request_flush,
                            );
                        }
                        _ => {
                            // Local derivation (or location-free test
                            // program).
                            self.ingest(derivation.delta);
                        }
                    }
                }
                if !self.pending_deletes.is_empty() {
                    consumed = i + 1;
                    break;
                }
            }
            // A mid-batch removal invalidates the remaining precomputed
            // firings: their triggers return to the queue front (still
            // ahead of any derivation ingested above) and re-fire against
            // the post-DRed store on the next loop turn.
            for entry in round.into_iter().skip(consumed).rev() {
                self.queue.push_front(entry);
            }
        }

        Ok(ProcessOutput {
            outbound,
            changes: std::mem::take(&mut self.changes),
            request_flush,
        })
    }

    /// Fire every strand over a batch of applied-but-unfired insertion
    /// deltas against the current store snapshot, returning each trigger's
    /// derivations in the order the tuple-at-a-time loop would route them
    /// (strands in declaration order per trigger). Triggers whose tuple a
    /// DRed pass has since over-deleted (or a replacement vacated) yield
    /// nothing: the consequences are moot, and a re-derived tuple fires
    /// through its own queued insert. That status cannot change mid-batch,
    /// because any removal interrupts the batch for a DRed pass before the
    /// next trigger is consumed.
    fn fire_batch_round(
        &mut self,
        round: &[(TupleDelta, u64)],
    ) -> Result<Vec<Vec<Derivation>>, EvalError> {
        let mut per_trigger: Vec<Vec<Derivation>> = round.iter().map(|_| Vec::new()).collect();
        let live: Vec<bool> = round
            .iter()
            .map(|(delta, _)| {
                debug_assert_eq!(delta.sign, Sign::Insert);
                self.store
                    .relation(&delta.relation)
                    .is_some_and(|r| r.contains(&delta.tuple))
            })
            .collect();
        let mut joins = JoinStats::default();
        // Arm the cross-rule probe cache for this round when the plans
        // share probe signatures: every strand fires against this one
        // store snapshot (ingestion happens after the round), so cached
        // candidate sets stay valid for exactly the cache's lifetime.
        let mut cache = (!self.shared_sigs.is_empty())
            .then(|| ndlog_runtime::subplan::ProbeCache::new(&self.shared_sigs));
        let mut triggers: Vec<BatchTrigger> = Vec::new();
        let mut indices: Vec<usize> = Vec::new();
        for strand in self.strands.iter() {
            triggers.clear();
            indices.clear();
            for (i, (delta, seq)) in round.iter().enumerate() {
                if live[i] && strand.trigger_relation() == delta.relation {
                    triggers.push(BatchTrigger {
                        delta,
                        seq_limit: *seq,
                    });
                    indices.push(i);
                }
            }
            if triggers.is_empty() {
                continue;
            }
            match cache.as_mut() {
                Some(cache) => strand.fire_batch_shared(
                    &self.store,
                    &triggers,
                    &mut joins,
                    &mut self.scratch,
                    &mut self.batch_out,
                    cache,
                )?,
                None => strand.fire_batch(
                    &self.store,
                    &triggers,
                    &mut joins,
                    &mut self.scratch,
                    &mut self.batch_out,
                )?,
            }
            self.batch_out
                .drain_into(|local, derivation| per_trigger[indices[local]].push(derivation));
        }
        self.stats.absorb_joins(joins);
        Ok(per_trigger)
    }

    /// The flush interval currently in effect (sharing delay takes
    /// precedence over the periodic-selection interval when both are set,
    /// since it is the shorter-lived buffer in the paper's experiments).
    pub fn flush_interval(&self) -> Option<SimTime> {
        self.config.sharing_delay.or(self.config.periodic_flush)
    }

    /// Flush held outbound tuples.
    ///
    /// For relations under a monotonic aggregate selection, only the best
    /// held insertion per (destination, group) is sent — the *periodic
    /// aggregate selections* saving. Buffers containing deletions for a
    /// group are flushed verbatim to preserve FIFO correctness.
    ///
    /// Decisions are made over borrowed entries, then the survivors are
    /// *moved* out of the held buffer into arena-rented wire buffers — the
    /// flush tail allocates no tuples and clones no deltas.
    pub fn flush(&mut self) -> BTreeMap<NodeAddr, Vec<TupleDelta>> {
        let held = std::mem::take(&mut self.held);
        // Group keys that contain any deletion are exempt from deduplication.
        let mut has_delete: BTreeSet<(NodeAddr, String, Vec<ndlog_lang::Value>)> = BTreeSet::new();
        for (dest, delta) in &held {
            if delta.sign == Sign::Delete {
                if let Some(key) = self.group_key(delta) {
                    has_delete.insert((*dest, delta.relation.clone(), key));
                }
            }
        }
        // Decide each entry's fate: sent verbatim, or competing for best
        // insertion per (dest, relation, group).
        let mut verbatim = vec![false; held.len()];
        let mut best: BTreeMap<(NodeAddr, String, Vec<ndlog_lang::Value>), (usize, f64)> =
            BTreeMap::new();
        for (idx, (dest, delta)) in held.iter().enumerate() {
            let Some(sel) = self.selection_for(&delta.relation) else {
                verbatim[idx] = true;
                continue;
            };
            if delta.sign == Sign::Delete {
                verbatim[idx] = true;
                continue;
            }
            let Some(key) = self.group_key(delta) else {
                verbatim[idx] = true;
                continue;
            };
            let full_key = (*dest, delta.relation.clone(), key);
            if has_delete.contains(&full_key) {
                verbatim[idx] = true;
                continue;
            }
            let value = delta
                .tuple
                .get(sel.value_col)
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::INFINITY);
            match best.get(&full_key) {
                Some((_, current)) if !sel.is_better(value, *current) => {}
                _ => {
                    best.insert(full_key, (idx, value));
                }
            }
        }
        let winners: BTreeSet<usize> = best.into_values().map(|(idx, _)| idx).collect();
        let mut out: BTreeMap<NodeAddr, Vec<TupleDelta>> = BTreeMap::new();
        for (idx, (dest, delta)) in held.into_iter().enumerate() {
            if verbatim[idx] || winners.contains(&idx) {
                out.entry(dest)
                    .or_insert_with(|| self.arena.rent())
                    .push(delta);
            }
        }
        out
    }

    fn selection_for(&self, relation: &str) -> Option<&AggSelectionSpec> {
        self.selections
            .iter()
            .find(|(sel, _)| sel.relation == relation)
            .map(|(sel, _)| sel)
    }

    fn group_key(&self, delta: &TupleDelta) -> Option<Vec<ndlog_lang::Value>> {
        let sel = self.selection_for(&delta.relation)?;
        if sel.group_cols.iter().any(|&c| delta.tuple.get(c).is_none()) {
            return None;
        }
        Some(delta.tuple.project(&sel.group_cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan;
    use ndlog_lang::{programs, Value};

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(vec![addr(s), addr(d), Value::Float(c)])
    }

    fn make_node(node: u32, config: NodeConfig) -> NodeEngine {
        let plan = plan(&programs::shortest_path("")).unwrap();
        let strands = Arc::new(plan.strands.clone());
        NodeEngine::new(NodeAddr(node), &[plan], strands, config).unwrap()
    }

    #[test]
    fn one_hop_path_stays_local_and_transfer_goes_remote() {
        let mut node = make_node(0, NodeConfig::default());
        node.receive(vec![TupleDelta::insert("link", link(0, 1, 5.0))]);
        let out = node.process().unwrap();
        // sp1 derives path(0,1,...) locally; sp2a derives sp2_xd(@1, @0, 5)
        // which must be shipped to node 1.
        assert_eq!(node.store().count("path"), 1);
        assert!(out.outbound.contains_key(&NodeAddr(1)));
        let to_1 = &out.outbound[&NodeAddr(1)];
        assert!(to_1.iter().any(|d| d.relation == "path_sp2_xd"));
        assert!(to_1.iter().all(|d| d.tuple.location() == Some(NodeAddr(1))));
    }

    #[test]
    fn aggregate_selection_prunes_worse_paths() {
        let config = NodeConfig {
            aggregate_selections: true,
            ..Default::default()
        };
        let mut node = make_node(0, config);
        let path = |z: u32, c: f64| {
            Tuple::new(vec![
                addr(0),
                addr(9),
                addr(z),
                Value::list(vec![addr(0), addr(z), addr(9)]),
                Value::Float(c),
            ])
        };
        node.receive(vec![TupleDelta::insert("path", path(1, 5.0))]);
        node.process().unwrap();
        assert_eq!(node.store().count("path"), 1);
        assert_eq!(
            node.current_best("path", &path(1, 5.0)),
            Some(Value::Float(5.0))
        );
        // A worse path for the same (S, D) group is pruned entirely.
        node.receive(vec![TupleDelta::insert("path", path(2, 7.0))]);
        node.process().unwrap();
        assert_eq!(node.store().count("path"), 1);
        assert_eq!(node.pruned(), 1);
        // A better one replaces the aggregate and is stored.
        node.receive(vec![TupleDelta::insert("path", path(3, 2.0))]);
        node.process().unwrap();
        assert_eq!(node.store().count("path"), 2);
        assert_eq!(
            node.current_best("path", &path(1, 0.0)),
            Some(Value::Float(2.0))
        );
        // The shortestPath result reflects the best cost.
        let sp = node.store().tuples("shortestPath");
        assert_eq!(sp.len(), 1);
        assert_eq!(sp[0].get(3), Some(&Value::Float(2.0)));
    }

    #[test]
    fn without_selections_all_paths_are_stored() {
        let mut node = make_node(0, NodeConfig::default());
        let path = |z: u32, c: f64| {
            Tuple::new(vec![
                addr(0),
                addr(9),
                addr(z),
                Value::list(vec![addr(0), addr(z), addr(9)]),
                Value::Float(c),
            ])
        };
        node.receive(vec![
            TupleDelta::insert("path", path(1, 5.0)),
            TupleDelta::insert("path", path(2, 7.0)),
        ]);
        node.process().unwrap();
        assert_eq!(node.store().count("path"), 2);
        assert_eq!(node.pruned(), 0);
    }

    #[test]
    fn tracked_relations_report_changes() {
        let config = NodeConfig {
            tracked_relations: ["shortestPath".to_string()].into_iter().collect(),
            ..Default::default()
        };
        let mut node = make_node(0, config);
        node.receive(vec![TupleDelta::insert("link", link(0, 1, 5.0))]);
        let out = node.process().unwrap();
        assert!(out
            .changes
            .iter()
            .any(|c| c.relation == "shortestPath" && c.sign == Sign::Insert));
    }

    #[test]
    fn tap_records_insert_and_retract_transitions() {
        let mut node = make_node(0, NodeConfig::default());
        node.tap_mut().subscribe("shortestPath");
        node.receive(vec![
            TupleDelta::insert("link", link(0, 1, 5.0)),
            TupleDelta::insert(
                "path_sp2_xd",
                Tuple::new(vec![addr(0), addr(1), Value::Float(5.0)]),
            ),
        ]);
        node.process().unwrap();
        let events = node.drain_tap();
        assert!(events
            .iter()
            .any(|d| d.relation == "shortestPath" && d.sign == Sign::Insert));
        assert!(events.iter().all(|d| d.relation == "shortestPath"));

        // Deleting the link retracts the derived shortest path: the
        // subscriber sees the exact retraction, not a silent disappearance.
        node.receive(vec![TupleDelta::delete("link", link(0, 1, 5.0))]);
        node.process().unwrap();
        let retractions = node.drain_tap();
        assert!(retractions
            .iter()
            .any(|d| d.relation == "shortestPath" && d.sign == Sign::Delete));
        assert!(node.store().tuples("shortestPath").is_empty());
    }

    #[test]
    fn periodic_flush_holds_and_dedups_outbound_paths() {
        let config = NodeConfig {
            aggregate_selections: true,
            periodic_flush: Some(100_000),
            ..Default::default()
        };
        // This node (1) stores paths to destination 9 and ships extension
        // candidates to its neighbor 0.
        let plan = plan(&programs::shortest_path("")).unwrap();
        let strands = Arc::new(plan.strands.clone());
        let mut node = NodeEngine::new(NodeAddr(1), &[plan], strands, config).unwrap();
        // Neighbor relationship: node 1 knows the reverse link and transfer
        // tuple for node 0.
        node.receive(vec![
            TupleDelta::insert("link", link(1, 0, 1.0)),
            TupleDelta::insert(
                "path_sp2_xd",
                Tuple::new(vec![addr(1), addr(0), Value::Float(1.0)]),
            ),
        ]);
        node.process().unwrap();
        // Two successively better paths to 9 (via different next hops, so no
        // primary-key replacement) arrive within one flush window.
        let path = |z: u32, c: f64| {
            Tuple::new(vec![
                addr(1),
                addr(9),
                addr(z),
                Value::list(vec![addr(1), addr(z), addr(9)]),
                Value::Float(c),
            ])
        };
        node.receive(vec![TupleDelta::insert("path", path(2, 5.0))]);
        let out1 = node.process().unwrap();
        node.receive(vec![TupleDelta::insert("path", path(3, 3.0))]);
        let out2 = node.process().unwrap();
        // Nothing was sent immediately; a flush was requested.
        assert!(out1.outbound.is_empty() && out2.outbound.is_empty());
        assert!(out1.request_flush);
        // The flush sends only the better of the two buffered extensions.
        let flushed = node.flush();
        let to_0 = &flushed[&NodeAddr(0)];
        let path_msgs: Vec<_> = to_0.iter().filter(|d| d.relation == "path").collect();
        assert_eq!(path_msgs.len(), 1);
        assert_eq!(path_msgs[0].tuple.get(4), Some(&Value::Float(4.0)));
        // Flushing again sends nothing.
        assert!(node.flush().is_empty());
    }

    #[test]
    fn sharing_delay_holds_all_outbound() {
        let config = NodeConfig {
            sharing_delay: Some(300_000),
            ..Default::default()
        };
        let mut node = make_node(0, config);
        node.receive(vec![TupleDelta::insert("link", link(0, 1, 5.0))]);
        let out = node.process().unwrap();
        assert!(out.outbound.is_empty());
        assert!(out.request_flush);
        let flushed = node.flush();
        assert!(flushed.contains_key(&NodeAddr(1)));
        assert_eq!(node.flush_interval(), Some(300_000));
    }

    #[test]
    fn blocked_relations_are_not_propagated() {
        let config = NodeConfig {
            blocked_relations: ["path_sp2_xd".to_string()].into_iter().collect(),
            ..Default::default()
        };
        let mut node = make_node(0, config);
        node.receive(vec![TupleDelta::insert("link", link(0, 1, 5.0))]);
        let out = node.process().unwrap();
        assert!(
            !out.outbound
                .values()
                .flatten()
                .any(|d| d.relation == "path_sp2_xd"),
            "blocked relation must not leave the node"
        );
    }

    #[test]
    fn soft_state_expiry_queues_deletions() {
        let program = ndlog_lang::parse_program(
            r#"
            materialize(ping, keys(1,2), ttl(1)).
            materialize(alive, keys(1,2)).
            a1 alive(@S,@D) :- ping(@S,@D).
            "#,
        )
        .unwrap();
        let plan = plan(&program).unwrap();
        let strands = Arc::new(plan.strands.clone());
        let mut node =
            NodeEngine::new(NodeAddr(0), &[plan], strands, NodeConfig::default()).unwrap();
        node.receive(vec![TupleDelta::insert(
            "ping",
            Tuple::new(vec![addr(0), addr(1)]),
        )]);
        node.process().unwrap();
        assert_eq!(node.store().count("alive"), 1);
        node.expire_soft_state(2_000_000);
        node.process().unwrap();
        assert_eq!(node.store().count("ping"), 0);
        assert_eq!(node.store().count("alive"), 0, "derived tuple retracted");
    }
}
