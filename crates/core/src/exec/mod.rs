//! Parallel epoch execution: deterministic multi-threaded evaluation of
//! the distributed engine.
//!
//! The per-node engines are fully state-partitioned — each
//! [`crate::node::NodeEngine`] owns its store and talks to the rest of the
//! network only through simulator messages — which is precisely the
//! precondition for *conservative* parallel discrete-event simulation.
//! This module is the layer between the simulator and the per-node
//! evaluators that exploits it:
//!
//! | module | role |
//! |---|---|
//! | [`worker`] | reusable pool of long-lived `std` worker threads with scoped dispatch |
//! | [`queue`] | shared work queue: lanes steal per-node items dynamically |
//! | [`executor`] | per-epoch dispatch, delivery coalescing, effect pre-serialization and the deterministic `(time, seq)` merge |
//! | [`arena`] | per-node pools recycling wire-payload buffers through the send → simulate → receive cycle |
//!
//! The engine drives it: [`crate::engine::DistributedEngine::run_until`]
//! drains the simulator in epochs ([`ndlog_net::Simulator::drain_epoch`]),
//! hands each epoch to the [`executor::EpochExecutor`], and replays the
//! merged outcomes — pre-timestamped result records, pre-sized outbound
//! batches, flush timers — back into the simulator in the exact order the
//! sequential loop would have produced them. The formerly serial half of
//! each epoch (rendering tracked changes into result records and walking
//! every outbound tuple for wire-size accounting) is computed inside the
//! lanes; the replay tail only appends buffers in `(time, seq)` order. A
//! run with `parallelism = N` is therefore bit-for-bit identical to
//! `parallelism = 1`: same stores, same statistics, same message trace
//! (see the determinism contract in [`executor`]).
//!
//! Two allocation-level optimizations ride on the same structure without
//! weakening that contract. *Delivery coalescing* merges each run of
//! consecutive same-node deliveries within an epoch into one receive
//! batch, so `NodeEngine::process` fires the strands' batch plans over
//! wide delta batches instead of single-row rounds; the merge structure is
//! fixed before lanes run, so it is thread-count invariant (see
//! [`executor`]). *Wire-buffer pooling* ([`arena`]) recycles every
//! delivered payload vector back into the receiving node's pool, from
//! which the node's own send path rents its next outbound batches —
//! payload buffers move end to end (node → simulator → node) and are
//! reused instead of reallocated.

pub mod arena;
pub mod executor;
pub mod queue;
pub mod worker;

pub use arena::{ArenaStats, DeltaArena};
pub use executor::{
    outbound_batches, result_records, EpochExecutor, EpochOutcome, EpochResult, NodeAction,
    NodeTask, OutboundBatch,
};
pub use worker::WorkerPool;
