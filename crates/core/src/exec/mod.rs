//! Parallel epoch execution: deterministic multi-threaded evaluation of
//! the distributed engine.
//!
//! The per-node engines are fully state-partitioned — each
//! [`crate::node::NodeEngine`] owns its store and talks to the rest of the
//! network only through simulator messages — which is precisely the
//! precondition for *conservative* parallel discrete-event simulation.
//! This module is the layer between the simulator and the per-node
//! evaluators that exploits it:
//!
//! | module | role |
//! |---|---|
//! | [`worker`] | reusable pool of long-lived `std` worker threads with scoped dispatch |
//! | [`shard`] | round-robin partitioning of an epoch's active nodes across workers |
//! | [`executor`] | per-epoch dispatch and the deterministic `(time, seq)` merge |
//!
//! The engine drives it: [`crate::engine::DistributedEngine::run_until`]
//! drains the simulator in epochs ([`ndlog_net::Simulator::drain_epoch`]),
//! hands each epoch to the [`executor::EpochExecutor`], and replays the
//! merged outcomes — result records, outbound batches, flush timers — back
//! into the simulator in the exact order the sequential loop would have
//! produced them. A run with `parallelism = N` is therefore bit-for-bit
//! identical to `parallelism = 1`: same stores, same statistics, same
//! message trace (see the determinism contract in [`executor`]).

pub mod executor;
pub mod shard;
pub mod worker;

pub use executor::{EpochExecutor, EpochOutcome, EpochResult, NodeAction, NodeTask};
pub use worker::WorkerPool;
