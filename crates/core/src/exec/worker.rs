//! A reusable pool of OS worker threads with a scoped-dispatch API.
//!
//! The epoch executor dispatches one job per shard per epoch — typically
//! thousands of small batches over a run — so spawning fresh threads per
//! epoch would dominate the work. [`WorkerPool`] keeps `std` threads alive
//! for the lifetime of the pool and hands them closures that may borrow
//! from the caller's stack, like [`std::thread::scope`] does, by blocking
//! in [`WorkerPool::scope`] until every dispatched job has finished.
//!
//! No external dependencies: jobs travel over [`std::sync::mpsc`]
//! channels, and completion is tracked with a per-call acknowledgement
//! channel.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A job plus the acknowledgement sender for the `scope` call that
/// dispatched it.
struct Shuttle {
    job: Box<dyn FnOnce() + Send + 'static>,
    done: Sender<()>,
}

/// A fixed-size pool of long-lived worker threads.
///
/// Jobs are dispatched with [`WorkerPool::scope`], which accepts closures
/// borrowing non-`'static` data and blocks until all of them have run — the
/// pool equivalent of [`std::thread::scope`], without the per-call thread
/// spawns.
pub struct WorkerPool {
    senders: Vec<Sender<Shuttle>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx): (Sender<Shuttle>, Receiver<Shuttle>) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("ndlog-exec-{i}"))
                .spawn(move || {
                    while let Ok(Shuttle { job, done }) = rx.recv() {
                        // Calling the boxed FnOnce consumes it, so every
                        // borrow the closure captured is gone before the
                        // acknowledgement is sent (see the safety argument
                        // in `scope`).
                        job();
                        let _ = done.send(());
                    }
                })
                .expect("spawning an executor worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `jobs` across the pool *and* the calling thread, blocking until
    /// all of them have completed: the first job runs on the caller (so a
    /// pool of `N` workers serves `N + 1`-way parallelism without the
    /// caller idling in `recv`), the rest are dealt to the workers
    /// round-robin. Jobs may borrow from the caller's stack; the borrow
    /// checker sees them leave through this call, and the call does not
    /// return until the borrows are dead.
    ///
    /// # Panics
    ///
    /// Panics if a job panicked — the caller's inline job or a worker's
    /// (this run's or a previous run's). The panic is raised only once no
    /// job is executing anymore, so the borrowed data is never observed by
    /// a worker after `scope` unwinds.
    pub fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let mut jobs = jobs.into_iter();
        let Some(inline_job) = jobs.next() else {
            return;
        };
        let expected = jobs.len();
        let (done_tx, done_rx) = channel();
        let mut dispatch_failed = false;
        for (i, job) in jobs.enumerate() {
            // SAFETY: the only way a `'env` borrow escapes this function is
            // inside `job`, and we do not return (or unwind) until every
            // job is finished with it:
            //
            // * a job that ran to completion was consumed by the `FnOnce`
            //   call before its `done` acknowledgement was sent;
            // * a job that never ran (its worker died first, or dispatch
            //   stopped after a failed send) is dropped inside the channel
            //   or by the send error / iterator drop, releasing the
            //   captured borrows without using them;
            // * a job that panicked was consumed by the unwinding call.
            //
            // The acknowledgement loop below returns only after `expected`
            // acks — or after *every* `done` sender is gone, and a job
            // still executing keeps its `done` sender alive. Crucially,
            // nothing between dispatch and that loop can unwind (a failed
            // send only sets a flag), so no worker can touch `'env` data
            // once `scope` returns or panics.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            let sent = self.senders[i % self.senders.len()].send(Shuttle {
                job,
                done: done_tx.clone(),
            });
            if sent.is_err() {
                // The target worker died (a previous job panicked). Do NOT
                // unwind here: jobs already dispatched to live workers may
                // be running. Stop dispatching — the undelivered job and
                // the rest of the iterator are dropped unexecuted — drain
                // the acknowledgements below, and panic only then.
                dispatch_failed = true;
                break;
            }
        }
        drop(done_tx);
        // Work alongside the pool: the first job runs here. A panic in it
        // must not unwind past the acknowledgement loop while workers may
        // still hold `'env` borrows, so it is caught and re-raised after
        // the loop.
        let inline_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(inline_job));
        let mut completed = 0;
        let mut worker_died = false;
        while completed < expected {
            match done_rx.recv() {
                Ok(()) => completed += 1,
                Err(_) => {
                    // Every `done` sender is gone: all remaining jobs were
                    // consumed or dropped, none is still running.
                    worker_died = true;
                    break;
                }
            }
        }
        if let Err(panic) = inline_result {
            std::panic::resume_unwind(panic);
        }
        if worker_died || dispatch_failed {
            panic!("executor worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels ends the worker loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // A worker that panicked already aborted its loop; surfacing
            // the panic again while unwinding would abort the process, so
            // ignore join errors during drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_borrow_and_mutate_disjoint_slots() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0u64; 16];
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            jobs.push(Box::new(move || {
                *slot = (i as u64 + 1) * 10;
            }));
        }
        pool.scope(jobs);
        let expect: Vec<u64> = (1..=16).map(|i| i * 10).collect();
        assert_eq!(slots, expect);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.threads(), 2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut partial = [0u64; 3];
            {
                let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
                for slot in partial.iter_mut() {
                    jobs.push(Box::new(move || *slot = round));
                }
                pool.scope(jobs);
            }
            total += partial.iter().sum::<u64>();
        }
        assert_eq!(total, 3 * (0..50).sum::<u64>());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut hit = false;
        pool.scope(vec![Box::new(|| hit = true)]);
        assert!(hit);
    }

    #[test]
    fn empty_scope_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.scope(Vec::new());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn inline_job_panic_is_propagated() {
        // The first job runs on the calling thread; its panic payload
        // surfaces unchanged.
        let pool = WorkerPool::new(1);
        pool.scope(vec![Box::new(|| panic!("boom"))]);
    }

    #[test]
    #[should_panic(expected = "executor worker thread panicked")]
    fn worker_panic_is_propagated() {
        let pool = WorkerPool::new(1);
        pool.scope(vec![Box::new(|| {}), Box::new(|| panic!("boom"))]);
    }

    #[test]
    fn scope_after_worker_death_fails_cleanly() {
        // A caller that catches the worker-death panic and reuses the pool
        // must get another clean panic — never a mid-dispatch unwind while
        // jobs still borrow the caller's stack.
        let pool = WorkerPool::new(1);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(vec![Box::new(|| {}), Box::new(|| panic!("boom"))]);
        }));
        assert!(first.is_err());
        let mut inline_ran = false;
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(vec![Box::new(|| inline_ran = true), Box::new(|| {})]);
        }));
        assert!(second.is_err(), "the dead worker must surface as a panic");
        assert!(inline_ran, "the inline job still ran to completion first");
    }
}
