//! Dynamic work distribution for the epoch executor.
//!
//! Node state is fully partitioned — every [`crate::node::NodeEngine`] owns
//! its store and interacts with the rest of the network only through
//! simulator messages — so any assignment of nodes to workers is *correct*;
//! distribution only affects load balance. Because the deterministic merge
//! in [`crate::exec::executor`] re-orders all epoch effects by their
//! `(time, seq)` key afterwards, the schedule is free to chase balance
//! without ever influencing results.
//!
//! Earlier revisions dealt the epoch's active nodes round-robin into static
//! per-worker shards, which balances node *counts* but not per-node *cost*:
//! one hub node replaying a large delta batch could pin its worker while
//! the others idled. [`WorkQueue`] replaces the static layout with
//! self-scheduling — a shared pop-only queue of per-node work items that
//! every lane (the caller and each pool worker) drains until empty. A lane
//! that finishes a cheap node immediately steals the next pending node, so
//! the epoch's wall time tracks the *sum* of node costs divided by lanes
//! instead of the heaviest static shard. Items are popped in ascending
//! node-address order, keeping the schedule deterministic up to timing;
//! results never depend on it.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A shared pop-only queue of work items, drained concurrently by every
/// executor lane. The mutex guards only the pop itself — the work runs
/// outside the lock — so contention is one uncontended lock per item.
pub struct WorkQueue<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> WorkQueue<T> {
    /// A queue over the given items, served in order.
    pub fn new(items: impl IntoIterator<Item = T>) -> WorkQueue<T> {
        WorkQueue {
            items: Mutex::new(items.into_iter().collect()),
        }
    }

    /// Steal the next pending item, or `None` when the epoch is drained.
    pub fn pop(&self) -> Option<T> {
        self.items.lock().expect("work queue lock").pop_front()
    }

    /// Number of items still pending.
    pub fn len(&self) -> usize {
        self.items.lock().expect("work queue lock").len()
    }

    /// Whether no items remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_order_until_empty() {
        let q = WorkQueue::new(0..5);
        assert_eq!(q.len(), 5);
        for expect in 0..5 {
            assert_eq!(q.pop(), Some(expect));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_lanes_drain_every_item_exactly_once() {
        let q = WorkQueue::new(0..1000u32);
        let totals: Vec<u64> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sum = 0u64;
                        while let Some(item) = q.pop() {
                            sum += u64::from(item);
                        }
                        sum
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(q.is_empty());
        assert_eq!(totals.iter().sum::<u64>(), (0..1000u64).sum::<u64>());
    }
}
