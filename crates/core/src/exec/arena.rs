//! Pooled delta-buffer allocation for the wire path.
//!
//! Every message the engine sends is a `Vec<TupleDelta>` that is born in a
//! node's outbound map, moved (never cloned) into an
//! [`crate::exec::OutboundBatch`], then into the simulator's queue as the
//! message payload, and finally handed to the receiving node's
//! `receive()`. Before this module, each of those vectors was freshly
//! allocated and dropped after ingestion — tens of megabytes of buffer
//! churn per scaling run. [`DeltaArena`] closes the loop: the receiver
//! drains the payload and *recycles* the empty vector into its pool, and
//! the node's send path *rents* from that pool when it opens a new
//! outbound batch, so a small set of buffers circulates through the whole
//! send → simulate → receive cycle.
//!
//! The pool is per-node (nodes partition across executor lanes, so no
//! locking), and its contents are plain capacity — renting or recycling
//! never touches evaluation state, so pool behavior cannot perturb the
//! bitwise-identity determinism contract. A per-epoch bump-reset arena
//! would be wrong here: payloads outlive the epoch that allocated them
//! (link delays exceed the conservative epoch window by construction), so
//! buffers must live until their receiver returns them.
//!
//! [`ArenaStats`] quantifies the win. `demand_bytes` counts the allocator
//! traffic of the pre-arena implementation, which grew a fresh `Vec` per
//! message by pushing: for a payload of n deltas that is the whole
//! doubling series 4 + 8 + … + next_pow2(n) backing allocations
//! ([`unpooled_alloc_bytes`]), accounted when the payload is recycled.
//! [`ArenaStats::allocated_bytes`] telescopes rented-out capacity against
//! recycled capacity, which sums to the real net backing capacity the
//! pools ever had to create (growth of a pooled buffer *within* a rent
//! shows up in its next recycle). Their ratio is the buffer-churn
//! reduction reported by the scaling bench.

use ndlog_runtime::TupleDelta;

/// Largest number of idle buffers a node keeps; beyond this, recycled
/// buffers are dropped (their accounting stands — a dropped buffer's
/// capacity was genuinely allocated). Overlay nodes talk to a handful of
/// neighbors, so the pool stays far below this in practice.
const MAX_POOLED: usize = 64;

const DELTA_BYTES: u64 = std::mem::size_of::<TupleDelta>() as u64;

fn capacity_bytes(buf: &Vec<TupleDelta>) -> u64 {
    buf.capacity() as u64 * DELTA_BYTES
}

/// Backing bytes a per-message `Vec` grown from empty by `push` requests
/// from the allocator for a payload of `len` deltas: the doubling series
/// 4, 8, …, next_pow2(len) — every intermediate backing store is a real
/// allocation (and a copy) the pool-free wire path performed.
pub fn unpooled_alloc_bytes(len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let mut cap: u64 = 4;
    let mut total: u64 = 0;
    while cap < len as u64 {
        total += cap;
        cap *= 2;
    }
    (total + cap) * DELTA_BYTES
}

/// Allocation statistics of one or more [`DeltaArena`]s.
///
/// Buffers rent at one node and recycle at another, so a single node's
/// numbers are not meaningful alone; summed over all nodes (the engine
/// does this) the telescoping works out exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out by `rent` (fresh or reused).
    pub rents: u64,
    /// Rents served from the pool instead of a fresh allocation.
    pub reuses: u64,
    /// Bytes the pre-arena per-message growth path would have requested
    /// from the allocator: Σ over recycled payloads of
    /// [`unpooled_alloc_bytes`] of their length.
    pub demand_bytes: u64,
    /// Capacity bytes handed out by `rent`.
    pub rented_capacity_bytes: u64,
    /// Capacity bytes returned by `recycle`.
    pub recycled_capacity_bytes: u64,
}

impl ArenaStats {
    /// Net new backing capacity the pools created. Each buffer's rents
    /// subtract the capacity it came back with last time, so the sum
    /// telescopes to Σ over distinct buffers of their final capacity —
    /// the buffer memory actually allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.recycled_capacity_bytes
            .saturating_sub(self.rented_capacity_bytes)
    }

    /// How many times smaller the pooled allocation volume is than the
    /// per-message demand (`f64::INFINITY` when nothing was allocated).
    pub fn reduction_factor(&self) -> f64 {
        let allocated = self.allocated_bytes();
        if allocated == 0 {
            if self.demand_bytes == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.demand_bytes as f64 / allocated as f64
        }
    }

    /// Sum another arena's counters into this one.
    pub fn absorb(&mut self, other: ArenaStats) {
        self.rents += other.rents;
        self.reuses += other.reuses;
        self.demand_bytes += other.demand_bytes;
        self.rented_capacity_bytes += other.rented_capacity_bytes;
        self.recycled_capacity_bytes += other.recycled_capacity_bytes;
    }
}

/// A per-node pool of reusable `Vec<TupleDelta>` wire buffers.
#[derive(Debug, Default)]
pub struct DeltaArena {
    free: Vec<Vec<TupleDelta>>,
    stats: ArenaStats,
}

impl DeltaArena {
    /// Take a buffer for a new outbound batch: a pooled one when
    /// available, else a fresh (zero-capacity) vector.
    pub fn rent(&mut self) -> Vec<TupleDelta> {
        self.stats.rents += 1;
        match self.free.pop() {
            Some(buf) => {
                self.stats.reuses += 1;
                self.stats.rented_capacity_bytes += capacity_bytes(&buf);
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a payload buffer to the pool. `payload_len` is the number
    /// of deltas the buffer carried over the wire (receivers drain the
    /// buffer before returning it, so the length cannot be read off the
    /// buffer itself here) — it is what the demand accounting records.
    pub fn recycle(&mut self, payload_len: usize, mut buf: Vec<TupleDelta>) {
        self.stats.demand_bytes += unpooled_alloc_bytes(payload_len);
        self.stats.recycled_capacity_bytes += capacity_bytes(&buf);
        if buf.capacity() > 0 && self.free.len() < MAX_POOLED {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// This arena's accumulated counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;
    use ndlog_runtime::Tuple;

    fn delta(i: u32) -> TupleDelta {
        TupleDelta::insert("r", Tuple::new(vec![Value::addr(i)]))
    }

    #[test]
    fn buffers_circulate_through_the_pool() {
        let mut arena = DeltaArena::default();
        let mut buf = arena.rent();
        assert_eq!(arena.stats().rents, 1);
        assert_eq!(arena.stats().reuses, 0);
        buf.extend((0..10).map(delta));
        let cap = buf.capacity();
        let len = buf.len();
        arena.recycle(len, buf);

        let reused = arena.rent();
        assert_eq!(reused.capacity(), cap, "the same backing store comes back");
        assert!(reused.is_empty());
        assert_eq!(arena.stats().reuses, 1);
    }

    #[test]
    fn accounting_telescopes_to_real_allocation() {
        let mut arena = DeltaArena::default();
        // One buffer, recycled twice at the same capacity: allocated bytes
        // equal its final capacity, demand counts both passes.
        let mut buf = arena.rent();
        buf.extend((0..8).map(delta));
        let cap_bytes = buf.capacity() as u64 * DELTA_BYTES;
        arena.recycle(8, buf);
        let mut buf = arena.rent();
        buf.extend((0..8).map(delta));
        arena.recycle(8, buf);

        let stats = arena.stats();
        assert_eq!(stats.allocated_bytes(), cap_bytes);
        // len 8 → growth series 4 + 8 per pass, two passes.
        assert_eq!(stats.demand_bytes, 2 * unpooled_alloc_bytes(8));
        assert_eq!(unpooled_alloc_bytes(8), 12 * DELTA_BYTES);
        assert!(stats.reduction_factor() > 1.0);
    }

    #[test]
    fn absorb_sums_counters_across_nodes() {
        // Rent at node A, recycle at node B — only the sum is meaningful.
        let mut a = DeltaArena::default();
        let mut b = DeltaArena::default();
        let mut buf = a.rent();
        buf.extend((0..4).map(delta));
        b.recycle(4, buf);
        let mut total = a.stats();
        total.absorb(b.stats());
        assert_eq!(total.rents, 1);
        assert!(total.allocated_bytes() > 0);
        assert_eq!(total.demand_bytes, unpooled_alloc_bytes(4));
    }

    #[test]
    fn empty_stats_report_unity_reduction() {
        assert_eq!(ArenaStats::default().reduction_factor(), 1.0);
    }
}
