//! Node → shard partitioning for the epoch executor.
//!
//! Node state is fully partitioned — every [`crate::node::NodeEngine`] owns
//! its store and interacts with the rest of the network only through
//! simulator messages — so any assignment of nodes to workers is *correct*;
//! the partitioner only affects load balance. Because the deterministic
//! merge in [`crate::exec::executor`] re-orders all epoch effects by their
//! `(time, seq)` key afterwards, the shard layout is free to chase balance
//! without ever influencing results.
//!
//! The strategy is round-robin over the epoch's *active* nodes (the nodes
//! that actually have events this epoch), in ascending address order:
//! active node `i` goes to shard `i % shards`. This spreads hot spots that
//! are adjacent in address space — e.g. a stub subnet converging together —
//! across all workers, unlike a static `addr % shards` map which can load
//! one worker with an entire busy subnet while others idle.

use ndlog_net::NodeAddr;

/// Assign `active` nodes (must be in ascending address order, as produced
/// by iterating a `BTreeMap`) to `shards` round-robin shards. Empty shards
/// are possible when there are fewer active nodes than shards.
pub fn plan_shards(
    active: impl IntoIterator<Item = NodeAddr>,
    shards: usize,
) -> Vec<Vec<NodeAddr>> {
    let shards = shards.max(1);
    let mut out: Vec<Vec<NodeAddr>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, node) in active.into_iter().enumerate() {
        out[i % shards].push(node);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(ids: &[u32]) -> Vec<NodeAddr> {
        ids.iter().map(|&i| NodeAddr(i)).collect()
    }

    #[test]
    fn round_robin_balances_counts() {
        let shards = plan_shards(addrs(&[0, 1, 2, 3, 4, 5, 6]), 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0], addrs(&[0, 3, 6]));
        assert_eq!(shards[1], addrs(&[1, 4]));
        assert_eq!(shards[2], addrs(&[2, 5]));
    }

    #[test]
    fn fewer_nodes_than_shards_leaves_empty_shards() {
        let shards = plan_shards(addrs(&[7]), 4);
        assert_eq!(shards[0], addrs(&[7]));
        assert!(shards[1..].iter().all(Vec::is_empty));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let shards = plan_shards(addrs(&[1, 2]), 0);
        assert_eq!(shards, vec![addrs(&[1, 2])]);
    }
}
