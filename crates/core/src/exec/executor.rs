//! The epoch executor: concurrent per-node evaluation with a deterministic
//! merge.
//!
//! # Execution model
//!
//! One epoch = one batch of simulator events drained by
//! [`ndlog_net::Simulator::drain_epoch`]: all events sharing the next
//! timestamp, or within a conservative lookahead window no larger than the
//! minimum link propagation delay. Within such a window no event can
//! causally affect a *different* node's events (a message sent inside the
//! window arrives after it), so the executor may evaluate each node's
//! events concurrently as long as every node sees *its own* events in
//! `(time, seq)` order.
//!
//! [`EpochExecutor::run_epoch`] does exactly that:
//!
//! 1. group the epoch's [`NodeTask`]s by destination node, preserving
//!    order;
//! 2. put one work item per active node on a shared [`WorkQueue`] and let
//!    every lane — the calling thread plus the reusable
//!    [`WorkerPool`] — *steal* items until the queue is dry, so a lane
//!    stuck on one expensive node never idles the others
//!    ([`crate::exec::queue`]);
//! 3. each lane runs the sequential engine's per-event recipe for its
//!    stolen nodes — `receive` → `set_time` → `expire_soft_state` →
//!    `process` for deliveries, `flush` for flush timers — recording one
//!    [`EpochOutcome`] per task *without* touching any shared mutable
//!    state. With **delivery coalescing** (the default), a run of
//!    consecutive deliveries to the same node is merged into one receive
//!    batch: every payload is ingested, then a single
//!    `set_time`/`expire_soft_state`/`process` runs at the run's *last*
//!    `(time, seq)`, handing `fire_batch` one wide delta batch instead of
//!    many single-row rounds (the whole point of the key-grouped probe
//!    path). Flush timers break a run, so flush ordering relative to
//!    deliveries is preserved;
//! 4. **pre-serialization**: the lane also renders each outcome's effects
//!    into their replay-ready form — tracked-relation changes become
//!    timestamped [`ResultRecord`]s and each outbound batch's wire size is
//!    computed up front ([`OutboundBatch`]) — so the serial replay tail
//!    only appends records and pushes pre-sized messages;
//! 5. merge: concatenate the lanes' outcome buffers and sort by the unique
//!    `(time, seq)` key of the triggering event.
//!
//! # Determinism contract
//!
//! The merged outcome sequence is exactly the sequence of
//! (result-recording, send, timer-scheduling) effects the sequential event
//! loop produces, because (a) per node, events are evaluated in the same
//! order with the same store clock, (b) across nodes, effects are replayed
//! in the same global order the sequential loop would have emitted them,
//! and (c) the pre-serialized forms (records, wire sizes) are pure
//! functions of each outcome, computed by the same code the sequential
//! loop uses. Which lane evaluates which node is timing-dependent and
//! deliberately irrelevant. The driver replays the merged outcomes into
//! the simulator in order, advancing simulated time to each outcome's
//! timestamp first, so message sequence numbers, FIFO link clocks, traffic
//! statistics and the result log are all byte-for-byte identical to a
//! single-threaded run — `threads = N` is observationally equivalent to
//! `threads = 1`.
//!
//! Delivery coalescing preserves this contract across thread counts: the
//! merge structure (which consecutive deliveries fuse into one batch) is a
//! pure function of the epoch's per-node task sequences, which are fixed
//! before any lane runs — it never depends on lane assignment or timing.
//! Coalescing *is* a different evaluation schedule than per-event delivery
//! (a merged batch processes at its last member's timestamp, so sends
//! merge and traffic traces differ between the two modes), which is why it
//! is a mode on the executor rather than an always-on rewrite: within
//! either mode, any thread count is bit-for-bit identical to the same mode
//! at `threads = 1`, and both modes reach the same fixpoint on the result
//! relations (see the `coalescing` integration test).
//!
//! On an evaluation error the guarantee is narrower (see [`EpochResult`]):
//! the error surfaced is the one the sequential loop would have hit first,
//! and every effect strictly preceding the failing event is still replayed;
//! state beyond that point is unspecified in both modes.

use crate::engine::ResultRecord;
use crate::exec::queue::WorkQueue;
use crate::exec::worker::WorkerPool;
use crate::node::{NodeEngine, ResultChange};
use crate::sharing;
use ndlog_net::sim::SimTime;
use ndlog_net::NodeAddr;
use ndlog_runtime::{EvalError, TupleDelta};
use std::collections::BTreeMap;

/// What an epoch event asks a node to do.
#[derive(Debug)]
pub enum NodeAction {
    /// A message delivery: ingest the payload and process to a local
    /// fixpoint.
    Deliver(Vec<TupleDelta>),
    /// A flush timer: release the node's held outbound tuples.
    Flush,
    /// A crash: the node loses all volatile state (store tuples, queues,
    /// aggregate views) and retracts its tracked results.
    Crash,
    /// A soft-state refresh tick (also the rejoin path): re-announce the
    /// node's seed facts, re-fire its stored state, and process to a local
    /// fixpoint — re-sending current remote conclusions so lost messages
    /// are repaired and receiver-side expiry clocks move forward.
    Refresh(Vec<TupleDelta>),
}

/// One epoch event routed to a node, keyed by the simulator's `(time, seq)`
/// so its effects can be merged back into the sequential order.
#[derive(Debug)]
pub struct NodeTask {
    /// Simulation time of the event.
    pub time: SimTime,
    /// The simulator queue sequence number (unique tie-breaker).
    pub seq: u64,
    /// The node the event targets.
    pub node: NodeAddr,
    /// What to do at the node.
    pub action: NodeAction,
}

/// One outbound message batch with its payload wire size pre-computed
/// (sharing-combined or plain, matching the engine's sharing mode), so the
/// serial replay tail hands the simulator a ready-to-send message instead
/// of walking every tuple again.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundBatch {
    /// Destination node.
    pub dest: NodeAddr,
    /// The tuple deltas of the batch.
    pub deltas: Vec<TupleDelta>,
    /// Payload bytes as accounted on the wire (header excluded — the
    /// simulator adds it).
    pub payload_bytes: usize,
}

/// Render an outbound map into pre-sized batches in ascending destination
/// order — the order the sequential loop sends them in. The single wire-
/// size implementation shared by the sequential path and the epoch lanes,
/// so the two cannot drift.
pub fn outbound_batches(
    sharing_enabled: bool,
    outbound: BTreeMap<NodeAddr, Vec<TupleDelta>>,
) -> Vec<OutboundBatch> {
    outbound
        .into_iter()
        .map(|(dest, deltas)| {
            let payload_bytes = if sharing_enabled {
                sharing::combined_wire_size(&deltas)
            } else {
                sharing::plain_wire_size(&deltas)
            };
            OutboundBatch {
                dest,
                deltas,
                payload_bytes,
            }
        })
        .collect()
}

/// Timestamp tracked-relation changes into result-log records. Shared by
/// the sequential path and the epoch lanes.
pub fn result_records(
    node: NodeAddr,
    time: SimTime,
    changes: Vec<ResultChange>,
) -> Vec<ResultRecord> {
    changes
        .into_iter()
        .map(|c| ResultRecord {
            time,
            node,
            relation: c.relation,
            tuple: c.tuple,
            sign: c.sign,
        })
        .collect()
}

/// The externally visible effects of one [`NodeTask`], pre-serialized and
/// ready to replay into the simulator in merged `(time, seq)` order.
#[derive(Debug)]
pub struct EpochOutcome {
    /// Simulation time of the triggering event.
    pub time: SimTime,
    /// Sequence number of the triggering event.
    pub seq: u64,
    /// The node the event ran at.
    pub node: NodeAddr,
    /// Timestamped result-log records for tracked-relation changes.
    pub records: Vec<ResultRecord>,
    /// Pre-sized outbound batches in ascending destination order — the
    /// order the sequential loop sends them in.
    pub sends: Vec<OutboundBatch>,
    /// Whether the node buffered outbound tuples and wants a flush timer.
    pub request_flush: bool,
    /// Whether this outcome came from a flush timer (the driver clears its
    /// pending-flush flag before replaying the sends).
    pub was_flush: bool,
}

/// An evaluation error tagged with the `(time, seq)` of the event that
/// raised it, so concurrent failures resolve to the one the sequential
/// loop would have hit first.
struct FailedAt {
    time: SimTime,
    seq: u64,
    error: EvalError,
}

/// What one epoch produced: the merged outcomes to replay, and the first
/// evaluation error (by event order) if any task failed.
///
/// On error, `outcomes` still contains every outcome whose `(time, seq)`
/// strictly precedes the failing event — the driver replays them before
/// surfacing the error, so the result log, message trace and statistics up
/// to the failure point match the sequential engine's. (Node-local store
/// mutations from events *concurrent with* the failure may have happened
/// anyway; like the sequential engine's state after a mid-run error, the
/// post-error state is not specified beyond that.)
pub struct EpochResult {
    /// Replayable outcomes in `(time, seq)` order (truncated to the events
    /// before the error when `error` is set).
    pub outcomes: Vec<EpochOutcome>,
    /// The earliest evaluation error, if any task failed.
    pub error: Option<EvalError>,
    /// Number of message deliveries the epoch ingested.
    pub deliveries: u64,
    /// Number of receive batches those deliveries were processed in
    /// (`deliveries / receive_batches` is the mean receive-batch width the
    /// coalescer achieved; equal to `deliveries` when coalescing is off).
    pub receive_batches: u64,
}

/// The parallel epoch executor: a worker pool plus the dispatch/merge
/// logic. Construction is cheap relative to a run; the pool threads live
/// for the executor's lifetime.
pub struct EpochExecutor {
    pool: Option<WorkerPool>,
    threads: usize,
    /// Message-sharing mode of the owning engine, needed to pre-compute
    /// outbound wire sizes in the lanes.
    sharing_enabled: bool,
    /// Merge consecutive same-node deliveries into one receive batch
    /// (default on; see the module docs).
    coalesce: bool,
}

impl EpochExecutor {
    /// An executor with `threads`-way parallelism: the calling thread
    /// counts as one lane and a pool of `threads - 1` workers supplies the
    /// rest. `threads <= 1` runs epochs inline on the caller's thread (no
    /// pool), which exercises the same queue/steal/merge path and is
    /// useful for differential testing. `sharing_enabled` selects the
    /// wire-size accounting used to pre-serialize outbound batches.
    /// Delivery coalescing defaults to on; [`EpochExecutor::coalescing`]
    /// turns it off.
    pub fn new(threads: usize, sharing_enabled: bool) -> EpochExecutor {
        let threads = threads.max(1);
        EpochExecutor {
            pool: (threads > 1).then(|| WorkerPool::new(threads - 1)),
            threads,
            sharing_enabled,
            coalesce: true,
        }
    }

    /// Enable or disable delivery coalescing (builder-style).
    pub fn coalescing(mut self, on: bool) -> EpochExecutor {
        self.coalesce = on;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate one epoch of tasks against the nodes, concurrently, and
    /// return the merged outcomes in `(time, seq)` order (see the module
    /// docs for the determinism contract and [`EpochResult`] for the
    /// error-path guarantees).
    pub fn run_epoch(
        &self,
        nodes: &mut BTreeMap<NodeAddr, NodeEngine>,
        tasks: Vec<NodeTask>,
    ) -> EpochResult {
        if tasks.is_empty() {
            return EpochResult {
                outcomes: Vec::new(),
                error: None,
                deliveries: 0,
                receive_batches: 0,
            };
        }
        // Group per node, preserving (time, seq) order within each node.
        let mut by_node: BTreeMap<NodeAddr, Vec<NodeTask>> = BTreeMap::new();
        for task in tasks {
            by_node.entry(task.node).or_default().push(task);
        }

        // One work item per active node, claimed dynamically by the lanes.
        let mut items: Vec<(&mut NodeEngine, Vec<NodeTask>)> = Vec::with_capacity(by_node.len());
        for (addr, engine) in nodes.iter_mut() {
            if let Some(tasks) = by_node.remove(addr) {
                items.push((engine, tasks));
            }
        }
        // Fail identically to the sequential loop's "delivery to known
        // node" panic instead of silently dropping the event.
        assert!(
            by_node.is_empty(),
            "epoch event for unknown node {:?}",
            by_node.keys().next()
        );
        let queue = WorkQueue::new(items);

        let lanes = self.threads;
        let sharing = self.sharing_enabled;
        let coalesce = self.coalesce;
        let mut results: Vec<LaneResult> = (0..lanes).map(|_| LaneResult::default()).collect();
        match &self.pool {
            Some(pool) => {
                let queue = &queue;
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
                    .iter_mut()
                    .map(|slot| {
                        let job: Box<dyn FnOnce() + Send + '_> =
                            Box::new(move || *slot = drain_lane(queue, sharing, coalesce));
                        job
                    })
                    .collect();
                pool.scope(jobs);
            }
            None => {
                results[0] = drain_lane(&queue, sharing, coalesce);
            }
        }

        // Deterministic merge: interleave all lanes' outcomes back into
        // global (time, seq) order. With failures, surface the earliest
        // error by event order — the one the sequential loop would have hit
        // first — and keep only the outcomes that precede it, so the driver
        // replays exactly the effects the sequential loop would have
        // applied before failing.
        let mut outcomes = Vec::new();
        let mut first_error: Option<FailedAt> = None;
        let mut deliveries = 0u64;
        let mut receive_batches = 0u64;
        for lane in results {
            outcomes.extend(lane.outcomes);
            deliveries += lane.deliveries;
            receive_batches += lane.receive_batches;
            if let Some(failed) = lane.error {
                match &first_error {
                    Some(existing)
                        if (existing.time, existing.seq) <= (failed.time, failed.seq) => {}
                    _ => first_error = Some(failed),
                }
            }
        }
        outcomes.sort_unstable_by_key(|o| (o.time, o.seq));
        if let Some(failed) = &first_error {
            outcomes.retain(|o| (o.time, o.seq) < (failed.time, failed.seq));
        }
        EpochResult {
            outcomes,
            error: first_error.map(|f| f.error),
            deliveries,
            receive_batches,
        }
    }
}

/// What one lane collected: outcomes, the earliest failure, and the
/// delivery/receive-batch counters feeding the engine's batch-width
/// statistics. Counters are kept out of [`crate::node::NodeEngine`]'s
/// `EvalStats` on purpose — they describe the *schedule*, not the
/// evaluation, and must not perturb the bitwise-identity oracle.
#[derive(Default)]
struct LaneResult {
    outcomes: Vec<EpochOutcome>,
    error: Option<FailedAt>,
    deliveries: u64,
    receive_batches: u64,
}

/// One lane's share of an epoch: steal per-node work items from the shared
/// queue until it is dry, mirroring the sequential engine's per-event
/// recipe exactly and pre-serializing each outcome's effects. With
/// `coalesce` on, a run of consecutive deliveries to the node is ingested
/// back to back and processed once at the run's last `(time, seq)` — the
/// merge structure depends only on the node's task sequence, never on lane
/// assignment, so it is identical at every thread count. A task error
/// stops that *node* (its remaining tasks are skipped, as the sequential
/// loop would never reach them) but not the lane: other nodes still run,
/// and the earliest failure by `(time, seq)` is reported alongside the
/// collected outcomes.
fn drain_lane(
    queue: &WorkQueue<(&mut NodeEngine, Vec<NodeTask>)>,
    sharing_enabled: bool,
    coalesce: bool,
) -> LaneResult {
    let mut lane = LaneResult::default();
    'nodes: while let Some((node, tasks)) = queue.pop() {
        let mut tasks = tasks.into_iter().peekable();
        while let Some(task) = tasks.next() {
            debug_assert_eq!(task.node, node.addr());
            match task.action {
                NodeAction::Deliver(payload) => {
                    node.receive(payload);
                    let (mut time, mut seq) = (task.time, task.seq);
                    lane.deliveries += 1;
                    lane.receive_batches += 1;
                    if coalesce {
                        // Extend the receive batch over the consecutive
                        // deliveries that follow; a flush timer ends it.
                        while matches!(
                            tasks.peek(),
                            Some(NodeTask {
                                action: NodeAction::Deliver(_),
                                ..
                            })
                        ) {
                            let next = tasks.next().expect("peeked task exists");
                            let NodeAction::Deliver(payload) = next.action else {
                                unreachable!("peek guaranteed a delivery");
                            };
                            node.receive(payload);
                            (time, seq) = (next.time, next.seq);
                            lane.deliveries += 1;
                        }
                    }
                    node.set_time(time);
                    node.expire_soft_state(time);
                    match node.process() {
                        Ok(output) => lane.outcomes.push(EpochOutcome {
                            time,
                            seq,
                            node: task.node,
                            records: result_records(task.node, time, output.changes),
                            sends: outbound_batches(sharing_enabled, output.outbound),
                            request_flush: output.request_flush,
                            was_flush: false,
                        }),
                        Err(error) => {
                            let failed = FailedAt { time, seq, error };
                            match &lane.error {
                                Some(existing)
                                    if (existing.time, existing.seq)
                                        <= (failed.time, failed.seq) => {}
                                _ => lane.error = Some(failed),
                            }
                            continue 'nodes;
                        }
                    }
                }
                NodeAction::Flush => {
                    let flushed = node.flush();
                    lane.outcomes.push(EpochOutcome {
                        time: task.time,
                        seq: task.seq,
                        node: task.node,
                        records: Vec::new(),
                        sends: outbound_batches(sharing_enabled, flushed),
                        request_flush: false,
                        was_flush: true,
                    });
                }
                NodeAction::Crash => {
                    let changes = node.crash_reset();
                    lane.outcomes.push(EpochOutcome {
                        time: task.time,
                        seq: task.seq,
                        node: task.node,
                        records: result_records(task.node, task.time, changes),
                        sends: Vec::new(),
                        request_flush: false,
                        was_flush: false,
                    });
                }
                NodeAction::Refresh(seeds) => {
                    node.set_time(task.time);
                    node.expire_soft_state(task.time);
                    node.receive(seeds);
                    node.refresh_refire();
                    match node.process() {
                        Ok(output) => lane.outcomes.push(EpochOutcome {
                            time: task.time,
                            seq: task.seq,
                            node: task.node,
                            records: result_records(task.node, task.time, output.changes),
                            sends: outbound_batches(sharing_enabled, output.outbound),
                            request_flush: output.request_flush,
                            was_flush: false,
                        }),
                        Err(error) => {
                            let failed = FailedAt {
                                time: task.time,
                                seq: task.seq,
                                error,
                            };
                            match &lane.error {
                                Some(existing)
                                    if (existing.time, existing.seq)
                                        <= (failed.time, failed.seq) => {}
                                _ => lane.error = Some(failed),
                            }
                            continue 'nodes;
                        }
                    }
                }
            }
        }
    }
    lane
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use crate::plan::plan;
    use ndlog_lang::{programs, Value};
    use ndlog_runtime::Tuple;
    use std::sync::Arc;

    fn make_nodes(count: u32) -> BTreeMap<NodeAddr, NodeEngine> {
        let plan = plan(&programs::shortest_path("")).unwrap();
        let strands = Arc::new(plan.strands.clone());
        (0..count)
            .map(|i| {
                let engine = NodeEngine::new(
                    NodeAddr(i),
                    std::slice::from_ref(&plan),
                    Arc::clone(&strands),
                    NodeConfig::default(),
                )
                .unwrap();
                (NodeAddr(i), engine)
            })
            .collect()
    }

    fn link(s: u32, d: u32, c: f64) -> TupleDelta {
        TupleDelta::insert(
            "link",
            Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
        )
    }

    fn deliveries(count: u32) -> Vec<NodeTask> {
        (0..count)
            .map(|i| NodeTask {
                time: 1000 + (i as u64 % 3),
                seq: i as u64,
                node: NodeAddr(i),
                action: NodeAction::Deliver(vec![link(i, (i + 1) % count, 1.0)]),
            })
            .collect()
    }

    #[test]
    fn outcomes_are_merged_in_time_seq_order() {
        for threads in [1, 2, 4] {
            let executor = EpochExecutor::new(threads, false);
            let mut nodes = make_nodes(8);
            let result = executor.run_epoch(&mut nodes, deliveries(8));
            assert!(result.error.is_none());
            let outcomes = result.outcomes;
            assert_eq!(outcomes.len(), 8);
            assert!(
                outcomes
                    .windows(2)
                    .all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)),
                "merge must restore the global (time, seq) order"
            );
            // Every delivery derived a one-hop path locally and a transfer
            // tuple for the neighbor.
            for (addr, node) in &nodes {
                assert_eq!(node.store().count("path"), 1, "node {addr}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_node_state_or_outcomes() {
        let run = |threads: usize| {
            let executor = EpochExecutor::new(threads, false);
            let mut nodes = make_nodes(6);
            let result = executor.run_epoch(&mut nodes, deliveries(6));
            assert!(result.error.is_none());
            let effects: Vec<_> = result
                .outcomes
                .iter()
                .map(|o| (o.time, o.seq, o.node, o.sends.clone(), o.request_flush))
                .collect();
            let stores: Vec<_> = nodes
                .values()
                .map(|n| (n.store().tuples("path"), n.eval_stats()))
                .collect();
            (effects, stores)
        };
        let baseline = run(1);
        assert_eq!(run(2), baseline);
        assert_eq!(run(4), baseline);
    }

    #[test]
    fn pre_sized_sends_match_the_wire_accounting() {
        let executor = EpochExecutor::new(2, false);
        let mut nodes = make_nodes(4);
        let result = executor.run_epoch(&mut nodes, deliveries(4));
        assert!(result.error.is_none());
        let mut sends = 0usize;
        for outcome in &result.outcomes {
            for batch in &outcome.sends {
                sends += 1;
                assert_eq!(
                    batch.payload_bytes,
                    crate::sharing::plain_wire_size(&batch.deltas),
                    "lane-computed size must equal the sequential accounting"
                );
            }
        }
        assert!(sends > 0, "deliveries must produce outbound batches");
    }

    #[test]
    fn empty_epoch_is_a_no_op() {
        let executor = EpochExecutor::new(2, false);
        let mut nodes = make_nodes(2);
        let result = executor.run_epoch(&mut nodes, Vec::new());
        assert!(result.outcomes.is_empty() && result.error.is_none());
    }

    #[test]
    fn earliest_error_wins_and_preceding_effects_survive() {
        // A strand with an unbound head variable errors when fired
        // (validation is bypassed by compiling the strand directly).
        let program = ndlog_lang::parse_program("r1 out(@S, X) :- q(@S, C).").unwrap();
        let strands: Arc<Vec<ndlog_runtime::CompiledStrand>> = Arc::new(
            ndlog_lang::seminaive::delta_rewrite_full(&program)
                .into_iter()
                .map(ndlog_runtime::CompiledStrand::new)
                .collect(),
        );
        for threads in [1, 2, 4] {
            let executor = EpochExecutor::new(threads, false);
            let mut nodes: BTreeMap<NodeAddr, NodeEngine> = (0..2u32)
                .map(|i| {
                    let engine = NodeEngine::new(
                        NodeAddr(i),
                        &[],
                        Arc::clone(&strands),
                        NodeConfig::default(),
                    )
                    .unwrap();
                    (NodeAddr(i), engine)
                })
                .collect();
            let tasks = vec![
                NodeTask {
                    time: 1,
                    seq: 0,
                    node: NodeAddr(0),
                    action: NodeAction::Deliver(vec![TupleDelta::insert(
                        "unrelated",
                        Tuple::new(vec![Value::addr(0u32)]),
                    )]),
                },
                NodeTask {
                    time: 2,
                    seq: 1,
                    node: NodeAddr(1),
                    action: NodeAction::Deliver(vec![TupleDelta::insert(
                        "q",
                        Tuple::new(vec![Value::addr(1u32), Value::Int(5)]),
                    )]),
                },
            ];
            let result = executor.run_epoch(&mut nodes, tasks);
            assert!(result.error.is_some(), "firing the bad strand must error");
            assert_eq!(
                result.outcomes.len(),
                1,
                "the outcome preceding the error survives ({threads} threads)"
            );
            assert_eq!(result.outcomes[0].node, NodeAddr(0));
        }
    }

    #[test]
    fn inline_and_pooled_executors_report_threads() {
        assert_eq!(EpochExecutor::new(0, false).threads(), 1);
        assert_eq!(EpochExecutor::new(1, false).threads(), 1);
        assert_eq!(EpochExecutor::new(3, false).threads(), 3);
    }

    fn same_node_deliveries() -> Vec<NodeTask> {
        (0..3u64)
            .map(|i| NodeTask {
                time: 1000 + i,
                seq: i,
                node: NodeAddr(0),
                action: NodeAction::Deliver(vec![link(0, i as u32 + 1, 1.0)]),
            })
            .collect()
    }

    #[test]
    fn consecutive_deliveries_coalesce_into_one_receive_batch() {
        let executor = EpochExecutor::new(1, false);
        let mut nodes = make_nodes(1);
        let result = executor.run_epoch(&mut nodes, same_node_deliveries());
        assert!(result.error.is_none());
        assert_eq!(result.outcomes.len(), 1, "one merged outcome");
        // The merged outcome carries the last member's (time, seq).
        assert_eq!((result.outcomes[0].time, result.outcomes[0].seq), (1002, 2));
        assert_eq!(result.deliveries, 3);
        assert_eq!(result.receive_batches, 1);
        assert_eq!(nodes[&NodeAddr(0)].store().count("path"), 3);
    }

    #[test]
    fn coalescing_off_restores_per_event_outcomes() {
        let executor = EpochExecutor::new(1, false).coalescing(false);
        let mut nodes = make_nodes(1);
        let result = executor.run_epoch(&mut nodes, same_node_deliveries());
        assert!(result.error.is_none());
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.deliveries, 3);
        assert_eq!(result.receive_batches, 3);
        assert_eq!(nodes[&NodeAddr(0)].store().count("path"), 3);
    }

    #[test]
    fn flush_timers_break_a_coalesced_run() {
        let executor = EpochExecutor::new(1, false);
        let plan = plan(&programs::shortest_path("")).unwrap();
        let strands = Arc::new(plan.strands.clone());
        let config = NodeConfig {
            sharing_delay: Some(300_000),
            ..Default::default()
        };
        let engine = NodeEngine::new(NodeAddr(0), &[plan], strands, config).unwrap();
        let mut nodes: BTreeMap<NodeAddr, NodeEngine> = [(NodeAddr(0), engine)].into();
        let deliver = |time: u64, seq: u64, d: u32| NodeTask {
            time,
            seq,
            node: NodeAddr(0),
            action: NodeAction::Deliver(vec![link(0, d, 1.0)]),
        };
        let tasks = vec![
            deliver(1000, 0, 1),
            NodeTask {
                time: 1001,
                seq: 1,
                node: NodeAddr(0),
                action: NodeAction::Flush,
            },
            deliver(1002, 2, 2),
        ];
        let result = executor.run_epoch(&mut nodes, tasks);
        assert!(result.error.is_none());
        assert_eq!(result.outcomes.len(), 3, "the flush is not absorbed");
        assert!(result.outcomes[1].was_flush);
        assert!(
            !result.outcomes[1].sends.is_empty(),
            "the flush releases the held tuples of the first delivery"
        );
        assert_eq!(result.deliveries, 2);
        assert_eq!(result.receive_batches, 2);
    }
}
