//! The query planner: NDlog program → executable plan.
//!
//! Planning follows Section 3 of the paper:
//!
//! 1. **validate** the program against the NDlog constraints (Definition 6);
//! 2. **localize** non-local link-restricted rules (Algorithm 2) so every
//!    rule body is evaluable at a single node;
//! 3. split off **aggregate rules** (maintained as incremental views) from
//!    join rules;
//! 4. apply the **semi-naive delta rewrite** to the join rules and compile
//!    each delta rule into a [`CompiledStrand`];
//! 5. infer **aggregate selections** (Section 5.1.1) so the engine can
//!    prune non-improving tuples when the optimization is enabled.
//!
//! The resulting [`QueryPlan`] is immutable and can be shared by every node
//! in the network (each node keeps its own mutable store and view state).

use ndlog_lang::aggsel::{infer_aggregate_selections, AggSelectionSpec};
use ndlog_lang::localize::localize;
use ndlog_lang::seminaive::delta_rewrite_full;
use ndlog_lang::validate::validate_strict;
use ndlog_lang::{LangError, Program, Rule};
use ndlog_runtime::CompiledStrand;

/// An executable plan for one NDlog program.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// A short name (used in reports), taken from the program.
    pub name: String,
    /// The localized program (table declarations, rules, queries).
    pub program: Program,
    /// Compiled strands for the non-aggregate rules.
    pub strands: Vec<CompiledStrand>,
    /// Aggregate rules, maintained as incremental views per node.
    pub aggregate_rules: Vec<Rule>,
    /// Inferred aggregate selections (pruning opportunities).
    pub selections: Vec<AggSelectionSpec>,
}

impl QueryPlan {
    /// Relations named in `query ...` statements: the result relations a
    /// caller usually wants to track for convergence.
    pub fn query_relations(&self) -> Vec<String> {
        self.program
            .queries
            .iter()
            .map(|q| q.name.clone())
            .collect()
    }

    /// Primary-key columns declared for a relation (empty when keyed on all
    /// columns or undeclared).
    pub fn key_columns(&self, relation: &str) -> Vec<usize> {
        self.program
            .table_decl(relation)
            .map(|d| d.key_columns.clone())
            .unwrap_or_default()
    }
}

/// Plan a program. Fails if the program violates the NDlog constraints or
/// cannot be localized.
pub fn plan(program: &Program) -> Result<QueryPlan, LangError> {
    validate_strict(program)?;
    let localized = localize(program)?;

    let (aggregate_rules, join_rules): (Vec<Rule>, Vec<Rule>) = localized
        .rules
        .iter()
        .cloned()
        .partition(|r| r.head.has_aggregate());

    let mut join_program = localized.clone();
    join_program.rules = join_rules;
    let strands = delta_rewrite_full(&join_program)
        .into_iter()
        .map(CompiledStrand::new)
        .collect();

    let selections = infer_aggregate_selections(&localized);

    Ok(QueryPlan {
        name: if program.name.is_empty() {
            "ndlog".to_string()
        } else {
            program.name.clone()
        },
        program: localized,
        strands,
        aggregate_rules,
        selections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::{parse_program, programs};

    #[test]
    fn shortest_path_plan_shape() {
        let plan = plan(&programs::shortest_path("")).unwrap();
        // sp3 is the only aggregate rule; sp1, sp2a, sp2b, sp4 become strands.
        assert_eq!(plan.aggregate_rules.len(), 1);
        assert_eq!(plan.aggregate_rules[0].label, "sp3");
        assert!(plan.strands.len() >= 5);
        assert_eq!(plan.selections.len(), 1);
        assert_eq!(plan.selections[0].relation, "path");
        assert_eq!(plan.query_relations(), vec!["shortestPath".to_string()]);
        assert_eq!(plan.key_columns("shortestPath"), vec![0, 1]);
        assert_eq!(plan.key_columns("unknown"), Vec::<usize>::new());
        // No strand is triggered by or derives an aggregate rule's head via joins.
        assert!(plan.strands.iter().all(|s| s.rule_label() != "sp3"));
    }

    #[test]
    fn invalid_programs_are_rejected() {
        let bad = parse_program("a p(@S, X) :- q(@S, C).").unwrap();
        assert!(plan(&bad).is_err());
        let not_restricted = parse_program("a p(@S, C) :- q(@D, C), r(@S, C).").unwrap();
        assert!(plan(&not_restricted).is_err());
    }

    #[test]
    fn all_canonical_programs_plan() {
        for p in [
            programs::shortest_path("m"),
            programs::shortest_path_magic_dst("m"),
            programs::shortest_path_source_routing("m"),
            programs::reachability("m"),
            programs::distance_vector("m", 16),
        ] {
            let plan = plan(&p).expect("canonical program plans");
            assert!(!plan.strands.is_empty());
        }
    }

    #[test]
    fn source_routing_plan_needs_no_localization_split() {
        let plan = plan(&programs::shortest_path_source_routing("")).unwrap();
        // The TD program is already link-local: no `_xd` transfer rules.
        assert!(plan
            .program
            .rules
            .iter()
            .all(|r| !r.head.name.ends_with("_xd")));
    }
}
