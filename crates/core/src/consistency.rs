//! Consistency checks: distributed results versus the centralized
//! evaluator.
//!
//! Theorem 4 of the paper states that, with FIFO links, pipelined
//! semi-naive evaluation in the distributed setting reaches the same
//! fixpoint that would be computed from the quiesced base state. These
//! helpers compare a [`DistributedEngine`]'s gathered results against a
//! fresh centralized [`Evaluator`] run over the same (final) base facts,
//! which is how the integration tests validate the distributed engine and
//! how the negative test (non-FIFO links) demonstrates the precondition
//! matters.

use crate::engine::DistributedEngine;
use ndlog_lang::Program;
use ndlog_net::NodeAddr;
use ndlog_runtime::{Evaluator, Strategy, Tuple};
use std::collections::BTreeSet;

/// Run `program` centrally over `base_facts` (relation name, tuple) and
/// compare relation `relation` against the union of the distributed
/// engine's per-node stores. Returns `Ok(count)` with the number of result
/// tuples when the sets match, or a description of the difference.
pub fn check_against_centralized(
    engine: &DistributedEngine,
    program: &Program,
    base_facts: &[(String, Tuple)],
    relation: &str,
) -> Result<usize, String> {
    let mut evaluator = Evaluator::new(program).map_err(|e| format!("planning failed: {e}"))?;
    for (rel, tuple) in base_facts {
        evaluator.insert_fact(rel, tuple.clone());
    }
    evaluator
        .run(Strategy::Pipelined)
        .map_err(|e| format!("centralized evaluation failed: {e}"))?;

    let central: BTreeSet<Tuple> = evaluator.results(relation).into_iter().collect();
    let distributed: BTreeSet<Tuple> = engine
        .results(relation)
        .into_iter()
        .map(|(_, t)| t)
        .collect();

    if central == distributed {
        return Ok(central.len());
    }
    let missing: Vec<String> = central
        .difference(&distributed)
        .take(5)
        .map(|t| t.to_string())
        .collect();
    let extra: Vec<String> = distributed
        .difference(&central)
        .take(5)
        .map(|t| t.to_string())
        .collect();
    Err(format!(
        "relation {relation}: centralized has {} tuples, distributed has {}; \
         missing from distributed: [{}]; unexpected in distributed: [{}]",
        central.len(),
        distributed.len(),
        missing.join(", "),
        extra.join(", ")
    ))
}

/// Check that two engines reached *bit-for-bit identical* states: same
/// nodes, same stores (every relation's tuples with their derivation
/// counts, timestamps and expiry times), same per-node evaluation
/// statistics, same network statistics (the full per-send message trace)
/// and same result logs.
///
/// This is the oracle of the parallel-executor determinism tests: an
/// engine run with `parallelism = N` must pass against the same scenario
/// run sequentially. It is intentionally much stricter than
/// [`check_against_centralized`], which only compares result sets.
pub fn check_bitwise_identical(a: &DistributedEngine, b: &DistributedEngine) -> Result<(), String> {
    let a_nodes: Vec<NodeAddr> = a.nodes().map(|(addr, _)| addr).collect();
    let b_nodes: Vec<NodeAddr> = b.nodes().map(|(addr, _)| addr).collect();
    if a_nodes != b_nodes {
        return Err(format!(
            "node sets differ: {} vs {} nodes",
            a_nodes.len(),
            b_nodes.len()
        ));
    }
    for ((addr, node_a), (_, node_b)) in a.nodes().zip(b.nodes()) {
        if node_a.eval_stats() != node_b.eval_stats() {
            return Err(format!(
                "evaluation statistics differ at node {addr}: {:?} vs {:?}",
                node_a.eval_stats(),
                node_b.eval_stats()
            ));
        }
        let store_a = node_a.store();
        let store_b = node_b.store();
        if store_a.current_seq() != store_b.current_seq() {
            return Err(format!(
                "store timestamp counters differ at node {addr}: {} vs {}",
                store_a.current_seq(),
                store_b.current_seq()
            ));
        }
        let names_a: Vec<&str> = store_a.relation_names().collect();
        let names_b: Vec<&str> = store_b.relation_names().collect();
        if names_a != names_b {
            return Err(format!("relation sets differ at node {addr}"));
        }
        for name in names_a {
            let rel_a = store_a.relation(name).expect("listed relation");
            let rel_b = store_b.relation(name).expect("listed relation");
            let tuples_a: Vec<_> = rel_a.iter().collect();
            let tuples_b: Vec<_> = rel_b.iter().collect();
            if tuples_a != tuples_b {
                return Err(format!(
                    "relation {name} differs at node {addr}: {} vs {} tuples \
                     (or mismatched counts/timestamps/expiries)",
                    tuples_a.len(),
                    tuples_b.len()
                ));
            }
        }
    }
    if a.stats() != b.stats() {
        return Err(format!(
            "network statistics differ: {} msgs / {} bytes vs {} msgs / {} bytes \
             (or a reordered send trace)",
            a.stats().message_count(),
            a.stats().total_bytes(),
            b.stats().message_count(),
            b.stats().total_bytes()
        ));
    }
    if a.result_log() != b.result_log() {
        return Err(format!(
            "result logs differ: {} vs {} records",
            a.result_log().len(),
            b.result_log().len()
        ));
    }
    Ok(())
}

/// Check that every result tuple is stored at the node named by its
/// location specifier — the invariant that NDlog data placement is honored.
pub fn check_location_placement(
    engine: &DistributedEngine,
    relation: &str,
) -> Result<usize, String> {
    let mut count = 0;
    for (node, tuple) in engine.results(relation) {
        match tuple.location() {
            Some(loc) if loc == node => count += 1,
            Some(loc) => {
                return Err(format!(
                    "tuple {tuple} of {relation} is stored at {node} but its location specifier is {loc}"
                ))
            }
            None => {
                return Err(format!(
                    "tuple {tuple} of {relation} has a non-address location specifier"
                ))
            }
        }
    }
    Ok(count)
}

/// Convenience: the set of (source, destination, cost) triples of a
/// shortest-path style relation, for comparisons in tests and experiments.
pub fn path_costs(
    engine: &DistributedEngine,
    relation: &str,
) -> BTreeSet<(NodeAddr, NodeAddr, String)> {
    engine
        .results(relation)
        .into_iter()
        .filter_map(|(_, t)| {
            let s = t.get(0)?.as_addr()?;
            let d = t.get(1)?.as_addr()?;
            let c = t.values().last()?.to_string();
            Some((s, d, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::node::NodeConfig;
    use crate::plan::plan;
    use ndlog_lang::{programs, Value};
    use ndlog_net::topology::{LinkMetrics, Topology};

    fn link_tuple(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)])
    }

    fn run_diamond(aggregate_selections: bool) -> (DistributedEngine, Vec<(String, Tuple)>) {
        let mut graph = Topology::with_nodes(4);
        let edges = [(0u32, 1u32, 5.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)];
        for &(a, b, _) in &edges {
            graph
                .add_link(NodeAddr(a), NodeAddr(b), LinkMetrics::uniform())
                .unwrap();
        }
        let plan = plan(&programs::shortest_path("")).unwrap();
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(graph, &[plan], config).unwrap();
        let mut base = Vec::new();
        for (a, b, c) in edges {
            for (s, d) in [(a, b), (b, a)] {
                let t = link_tuple(s, d, c);
                engine.insert_base(NodeAddr(s), "link", t.clone()).unwrap();
                base.push(("link".to_string(), t));
            }
        }
        engine.run_to_quiescence().unwrap();
        (engine, base)
    }

    #[test]
    fn distributed_matches_centralized_fixpoint() {
        let (engine, base) = run_diamond(false);
        let program = programs::shortest_path("");
        let count = check_against_centralized(&engine, &program, &base, "shortestPath").unwrap();
        assert_eq!(count, 12);
    }

    #[test]
    fn distributed_with_selections_still_matches_on_static_network() {
        let (engine, base) = run_diamond(true);
        let program = programs::shortest_path("");
        let count = check_against_centralized(&engine, &program, &base, "shortestPath").unwrap();
        assert_eq!(count, 12);
    }

    #[test]
    fn placement_invariant_holds() {
        let (engine, _) = run_diamond(true);
        assert_eq!(
            check_location_placement(&engine, "shortestPath").unwrap(),
            12
        );
        assert!(check_location_placement(&engine, "path").unwrap() > 0);
    }

    #[test]
    fn path_costs_helper_extracts_triples() {
        let (engine, _) = run_diamond(true);
        let costs = path_costs(&engine, "shortestPath");
        assert_eq!(costs.len(), 12);
        assert!(costs.contains(&(NodeAddr(0), NodeAddr(1), "2.0".to_string())));
    }

    #[test]
    fn mismatch_is_reported() {
        let (engine, base) = run_diamond(false);
        // Compare against a *different* base set (the 1-3 links missing, so
        // node 3 is unreachable centrally): the check must fail and
        // describe the difference.
        let program = programs::shortest_path("");
        let smaller: Vec<_> = base.iter().take(base.len() - 2).cloned().collect();
        let err =
            check_against_centralized(&engine, &program, &smaller, "shortestPath").unwrap_err();
        assert!(err.contains("shortestPath"));
    }
}
