//! Bursty update workloads (Section 4's bursty model, Section 6.5's
//! experiments).
//!
//! The paper's incremental-evaluation experiments subject the network to
//! periodic bursts of link-cost updates: every burst randomly selects 10%
//! of the overlay links and changes their cost metric by up to 10%. Each
//! update is applied as a deletion of the old base tuple followed by an
//! insertion of the new one (Section 4's definition of an update), at both
//! endpoints since links are bidirectional.

use ndlog_net::overlay::OverlayLink;
use ndlog_net::topology::Metric;
use ndlog_net::NodeAddr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One link-cost update (applies to both directions of the link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkUpdate {
    /// One endpoint.
    pub a: NodeAddr,
    /// The other endpoint.
    pub b: NodeAddr,
    /// The cost before the update.
    pub old_cost: f64,
    /// The cost after the update.
    pub new_cost: f64,
}

/// A generator of periodic update bursts over a fixed overlay link set.
#[derive(Debug, Clone)]
pub struct UpdateWorkload {
    rng: StdRng,
    /// Fraction of links updated per burst (the paper uses 0.10).
    pub fraction: f64,
    /// Maximum relative cost change per update (the paper uses 0.10).
    pub magnitude: f64,
    /// Current cost of every (undirected) link.
    costs: BTreeMap<(NodeAddr, NodeAddr), f64>,
}

impl UpdateWorkload {
    /// Build a workload over the overlay's links, reading the initial costs
    /// from the chosen metric. `fraction` of links change by up to
    /// `magnitude` (relative) per burst.
    pub fn new(
        links: &[OverlayLink],
        metric: Metric,
        fraction: f64,
        magnitude: f64,
        seed: u64,
    ) -> Self {
        let mut costs = BTreeMap::new();
        for l in links {
            let key = canonical(l.src, l.dst);
            costs.entry(key).or_insert_with(|| l.cost(metric));
        }
        UpdateWorkload {
            rng: StdRng::seed_from_u64(seed),
            fraction,
            magnitude,
            costs,
        }
    }

    /// The paper's configuration: 10% of links, up to 10% cost change.
    pub fn paper(links: &[OverlayLink], metric: Metric, seed: u64) -> Self {
        Self::new(links, metric, 0.10, 0.10, seed)
    }

    /// Number of links under management.
    pub fn link_count(&self) -> usize {
        self.costs.len()
    }

    /// The current cost of a link (either direction), if known.
    pub fn current_cost(&self, a: NodeAddr, b: NodeAddr) -> Option<f64> {
        self.costs.get(&canonical(a, b)).copied()
    }

    /// Generate one burst of updates and advance the internal cost state.
    pub fn burst(&mut self) -> Vec<LinkUpdate> {
        let mut keys: Vec<(NodeAddr, NodeAddr)> = self.costs.keys().copied().collect();
        keys.shuffle(&mut self.rng);
        let take = ((keys.len() as f64) * self.fraction).round().max(1.0) as usize;
        let mut out = Vec::with_capacity(take);
        for key in keys.into_iter().take(take) {
            let old_cost = self.costs[&key];
            // Change by up to ±magnitude, avoiding a zero-sized change.
            let delta = self.rng.random_range(-self.magnitude..self.magnitude);
            let mut new_cost = old_cost * (1.0 + delta);
            if (new_cost - old_cost).abs() < f64::EPSILON {
                new_cost = old_cost * (1.0 + self.magnitude / 2.0);
            }
            new_cost = new_cost.max(0.01);
            self.costs.insert(key, new_cost);
            out.push(LinkUpdate {
                a: key.0,
                b: key.1,
                old_cost,
                new_cost,
            });
        }
        out
    }
}

fn canonical(a: NodeAddr, b: NodeAddr) -> (NodeAddr, NodeAddr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_net::gtitm::{generate, TransitStubConfig};
    use ndlog_net::overlay::{Overlay, OverlayConfig};

    fn overlay_links() -> Vec<OverlayLink> {
        let ts = generate(&TransitStubConfig::small());
        Overlay::random_neighbors(&ts.topology, &OverlayConfig::default()).links()
    }

    #[test]
    fn burst_touches_the_configured_fraction() {
        let links = overlay_links();
        let mut w = UpdateWorkload::paper(&links, Metric::Random, 7);
        let n_links = w.link_count();
        let burst = w.burst();
        let expected = ((n_links as f64) * 0.10).round().max(1.0) as usize;
        assert_eq!(burst.len(), expected);
        for u in &burst {
            assert!(u.new_cost > 0.0);
            assert!(
                (u.new_cost - u.old_cost).abs() / u.old_cost <= 0.11,
                "change within ~10%"
            );
            assert_ne!(u.new_cost, u.old_cost);
            assert_eq!(w.current_cost(u.a, u.b), Some(u.new_cost));
        }
    }

    #[test]
    fn bursts_are_deterministic_per_seed() {
        let links = overlay_links();
        let mut a = UpdateWorkload::paper(&links, Metric::Random, 42);
        let mut b = UpdateWorkload::paper(&links, Metric::Random, 42);
        assert_eq!(a.burst(), b.burst());
        assert_eq!(a.burst(), b.burst());
        let mut c = UpdateWorkload::paper(&links, Metric::Random, 43);
        assert_ne!(a.burst(), c.burst());
    }

    #[test]
    fn costs_drift_across_bursts() {
        let links = overlay_links();
        let mut w = UpdateWorkload::paper(&links, Metric::Latency, 1);
        let before: Vec<f64> = (0..3).flat_map(|_| w.burst()).map(|u| u.new_cost).collect();
        assert!(!before.is_empty());
        // Subsequent bursts start from the drifted state, not the original.
        let burst = w.burst();
        for u in &burst {
            assert_eq!(w.current_cost(u.a, u.b), Some(u.new_cost));
        }
    }

    #[test]
    fn fraction_of_one_updates_every_link() {
        let links = overlay_links();
        let mut w = UpdateWorkload::new(&links, Metric::HopCount, 1.0, 0.1, 3);
        assert_eq!(w.burst().len(), w.link_count());
    }
}
