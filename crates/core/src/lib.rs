//! The distributed declarative networking engine — the analogue of the P2
//! system used in the paper's evaluation.
//!
//! The engine takes NDlog programs, plans them (validation → rule
//! localization → semi-naive strand generation → aggregate-view and
//! aggregate-selection extraction), instantiates one [`node::NodeEngine`]
//! per overlay node, and executes the resulting dataflow over the
//! discrete-event network simulator from `ndlog-net`, with per-link FIFO
//! delivery and byte-level communication accounting.
//!
//! | module | role |
//! |---|---|
//! | [`plan`] | the query planner: program → [`plan::QueryPlan`] |
//! | [`node`] | a single node's engine: store, strands, views, PSN queue, aggregate selections, outbound buffering |
//! | [`engine`] | the distributed executor: event loop, messaging, convergence/result tracking |
//! | [`exec`] | parallel epoch executor: worker pool, node sharding, deterministic merge |
//! | [`sharing`] | opportunistic message sharing (Section 5.2) |
//! | [`caching`] | query-result caching support for magic queries (Section 5.2) |
//! | [`updates`] | bursty update workloads (Section 4 / Section 6.5) |
//! | [`costmodel`] | cost-based planning: live store statistics ([`costmodel::StatsCatalog`]) ranking join orders by estimated tuples examined, plus neighborhood-function TD/BU/hybrid radius splits (Section 5.3) |
//! | [`consistency`] | helpers to check distributed results against the centralized evaluator (Theorem 4) |

pub mod caching;
pub mod consistency;
pub mod costmodel;
pub mod engine;
pub mod exec;
pub mod node;
pub mod plan;
pub mod sharing;
pub mod updates;

pub use costmodel::{JoinAtom, RankedOrder, StatsCatalog};
pub use engine::{
    ConvergenceReport, DeliveryStats, DistributedEngine, EngineConfig, FaultRepairReport,
    RefreshConfig, RunReport,
};
pub use exec::{ArenaStats, EpochExecutor};
pub use node::{NodeConfig, NodeEngine};
pub use plan::{plan, QueryPlan};
pub use updates::{LinkUpdate, UpdateWorkload};
