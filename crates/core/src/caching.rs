//! Query-result caching for magic path queries (Section 5.2).
//!
//! The paper caches `shortestPath` results at the nodes they traverse while
//! the answer is shipped back to the query source: a node `a` on the
//! shortest path from `e` to `d` learns (and caches) its own shortest path
//! to `d`, because subpaths of shortest paths are themselves shortest
//! paths. A later query for destination `d` whose exploration reaches `a`
//! can be answered from `a`'s cache instead of exploring the rest of the
//! network.
//!
//! [`QueryCache`] maintains those per-node entries and tells the engine
//! which nodes can stop propagating exploration tuples for a given
//! destination (the engine models the cache answer by *blocking*
//! propagation of the exploration relation at cache-hit nodes and
//! accounting a fixed-size answer message per hit). As in the paper, cache
//! hits may be **false positives**: the cached path through `a` is the best
//! path *through `a`*, not necessarily the best path overall, which is why
//! Figure 11 shows caching overhead for small query counts.

use crate::exec::executor::OutboundBatch;
use ndlog_net::NodeAddr;
use ndlog_runtime::{Sign, TupleDelta};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A cached result at one node: the known path from that node to the
/// destination and its cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Remaining path from the caching node to the destination (inclusive
    /// of both endpoints).
    pub suffix: Vec<NodeAddr>,
    /// Cost of that remaining path.
    pub cost: f64,
}

/// The distributed query-result cache (one logical cache per node,
/// maintained centrally by the experiment harness for accounting).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryCache {
    /// (node, destination) -> cached entry.
    entries: BTreeMap<(NodeAddr, NodeAddr), CacheEntry>,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cache entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Record a completed query result: the full path (source first,
    /// destination last) and per-hop cumulative costs are cached at every
    /// node along the path, keyed by the destination. `hop_costs[i]` is the
    /// cost of the link from `path[i]` to `path[i+1]`.
    pub fn record_result(&mut self, path: &[NodeAddr], hop_costs: &[f64]) {
        if path.len() < 2 || hop_costs.len() + 1 != path.len() {
            return;
        }
        let dst = *path.last().expect("non-empty path");
        for i in 0..path.len() - 1 {
            let node = path[i];
            let suffix = path[i..].to_vec();
            let cost: f64 = hop_costs[i..].iter().sum();
            let entry = CacheEntry { suffix, cost };
            // Keep the better entry when one already exists.
            match self.entries.get(&(node, dst)) {
                Some(existing) if existing.cost <= entry.cost => {}
                _ => {
                    self.entries.insert((node, dst), entry);
                }
            }
        }
    }

    /// Record a result directly from a wire-format tuple delta — the same
    /// artifact the engine ships and [`crate::sharing::result_wire_bytes`]
    /// sizes, so caching and byte accounting consume one object instead of
    /// separately reconstructed paths. `path_col` must hold a list of
    /// addresses (source first, destination last) and `cost_col` the total
    /// path cost; per-hop costs are the even split of the total, which is
    /// exact for hop-count metrics (each hop costs 1) and an approximation
    /// otherwise. Returns whether anything was recorded (deletions and
    /// malformed tuples are ignored).
    pub fn record_result_delta(
        &mut self,
        delta: &TupleDelta,
        path_col: usize,
        cost_col: usize,
    ) -> bool {
        if delta.sign != Sign::Insert {
            return false;
        }
        let Some(path) = delta.tuple.get(path_col).and_then(|v| {
            v.as_list()
                .map(|l| l.iter().filter_map(|x| x.as_addr()).collect::<Vec<_>>())
        }) else {
            return false;
        };
        if path.len() < 2 {
            return false;
        }
        let Some(cost) = delta.tuple.get(cost_col).and_then(|v| v.as_f64()) else {
            return false;
        };
        let hops = path.len() - 1;
        self.record_result(&path, &vec![cost / hops as f64; hops]);
        true
    }

    /// Scan real outbound batches for result tuples of `relation` and
    /// record each one via [`QueryCache::record_result_delta`]. Returns the
    /// number of results recorded.
    pub fn record_from_batches(
        &mut self,
        batches: &[OutboundBatch],
        relation: &str,
        path_col: usize,
        cost_col: usize,
    ) -> usize {
        let mut recorded = 0;
        for delta in batches.iter().flat_map(|b| &b.deltas) {
            if delta.relation == relation && self.record_result_delta(delta, path_col, cost_col) {
                recorded += 1;
            }
        }
        recorded
    }

    /// Look up the cached entry for `(node, dst)` and record a hit/miss.
    pub fn lookup(&mut self, node: NodeAddr, dst: NodeAddr) -> Option<CacheEntry> {
        match self.entries.get(&(node, dst)) {
            Some(e) => {
                self.hits += 1;
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The set of nodes that hold a cache entry for `dst` (the nodes at
    /// which exploration for `dst` can be cut short).
    pub fn nodes_with_entry_for(&self, dst: NodeAddr) -> BTreeSet<NodeAddr> {
        self.entries
            .keys()
            .filter(|(_, d)| *d == dst)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Build the per-relation propagation-blocking map the engine consumes:
    /// exploration tuples of `exploration_relation` are not propagated
    /// beyond nodes that can answer destination `dst` from their cache.
    pub fn blocked_map(
        &self,
        exploration_relation: &str,
        dst: NodeAddr,
    ) -> BTreeMap<String, BTreeSet<NodeAddr>> {
        let mut map = BTreeMap::new();
        let nodes = self.nodes_with_entry_for(dst);
        if !nodes.is_empty() {
            map.insert(exploration_relation.to_string(), nodes);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeAddr {
        NodeAddr(i)
    }

    #[test]
    fn record_caches_every_suffix() {
        let mut cache = QueryCache::new();
        cache.record_result(&[n(0), n(1), n(2), n(3)], &[1.0, 2.0, 3.0]);
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.lookup(n(1), n(3)),
            Some(CacheEntry {
                suffix: vec![n(1), n(2), n(3)],
                cost: 5.0
            })
        );
        assert_eq!(cache.lookup(n(2), n(3)).unwrap().cost, 3.0);
        assert!(
            cache.lookup(n(3), n(3)).is_none(),
            "destination itself is not cached"
        );
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn better_entries_replace_worse_ones() {
        let mut cache = QueryCache::new();
        cache.record_result(&[n(0), n(1), n(3)], &[4.0, 4.0]);
        assert_eq!(cache.lookup(n(0), n(3)).unwrap().cost, 8.0);
        cache.record_result(&[n(0), n(2), n(3)], &[1.0, 1.0]);
        assert_eq!(cache.lookup(n(0), n(3)).unwrap().cost, 2.0);
        // A worse later result does not overwrite.
        cache.record_result(&[n(0), n(4), n(3)], &[5.0, 5.0]);
        assert_eq!(cache.lookup(n(0), n(3)).unwrap().cost, 2.0);
    }

    #[test]
    fn malformed_results_are_ignored() {
        let mut cache = QueryCache::new();
        cache.record_result(&[n(0)], &[]);
        cache.record_result(&[n(0), n(1)], &[1.0, 2.0]);
        assert!(cache.is_empty());
    }

    #[test]
    fn wire_deltas_record_like_reconstructed_paths() {
        use crate::exec::executor::OutboundBatch;
        use ndlog_lang::Value;
        use ndlog_runtime::Tuple;

        // shortestPath(@D, @S, P, C) with P = [0, 1, 2, 3] and C = 3 hops.
        let delta = TupleDelta::insert(
            "shortestPath",
            Tuple::new(vec![
                Value::Addr(n(3)),
                Value::Addr(n(0)),
                Value::list(vec![
                    Value::Addr(n(0)),
                    Value::Addr(n(1)),
                    Value::Addr(n(2)),
                    Value::Addr(n(3)),
                ]),
                Value::Float(3.0),
            ]),
        );
        let mut from_delta = QueryCache::new();
        assert!(from_delta.record_result_delta(&delta, 2, 3));
        let mut from_path = QueryCache::new();
        from_path.record_result(&[n(0), n(1), n(2), n(3)], &[1.0, 1.0, 1.0]);
        assert_eq!(from_delta.len(), from_path.len());
        assert_eq!(from_delta.lookup(n(1), n(3)), from_path.lookup(n(1), n(3)));

        // Deletions and tuples without a path vector are ignored.
        let mut del = delta.clone();
        del.sign = ndlog_runtime::Sign::Delete;
        assert!(!from_delta.record_result_delta(&del, 2, 3));
        let bare = TupleDelta::insert("t", Tuple::new(vec![Value::Int(1)]));
        assert!(!from_delta.record_result_delta(&bare, 0, 0));

        // The batch scanner filters by relation name.
        let batch = OutboundBatch {
            dest: n(0),
            deltas: vec![delta.clone(), bare],
            payload_bytes: 0,
        };
        let mut from_batch = QueryCache::new();
        assert_eq!(
            from_batch.record_from_batches(std::slice::from_ref(&batch), "shortestPath", 2, 3),
            1
        );
        assert_eq!(from_batch.len(), from_path.len());
    }

    #[test]
    fn blocked_map_lists_cache_nodes_per_destination() {
        let mut cache = QueryCache::new();
        cache.record_result(&[n(0), n(1), n(9)], &[1.0, 1.0]);
        cache.record_result(&[n(4), n(5), n(8)], &[1.0, 1.0]);
        let blocked = cache.blocked_map("pathDst", n(9));
        assert_eq!(
            blocked.get("pathDst"),
            Some(&[n(0), n(1)].into_iter().collect())
        );
        assert!(cache.blocked_map("pathDst", n(7)).is_empty());
        assert_eq!(cache.nodes_with_entry_for(n(8)).len(), 2);
    }
}
