//! Recursive-descent parser for the NDlog surface syntax.
//!
//! Supported statements:
//!
//! ```text
//! materialize(path, keys(1,2,3), ttl(30)).        % table declaration
//! sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C),       % rule with optional label
//!       P := f_concat(S, f_cons(D, nil)).
//! sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C). % aggregate head
//! query shortestPath(@S,@D,P,C).                  % query declaration
//! ```
//!
//! Conventions (following the paper):
//! * predicate and function names start with a lower-case letter; builtin
//!   function names start with `f_`;
//! * variables start with an upper-case letter; `@`-prefixed variables are
//!   address-typed; `@n3` is an address constant;
//! * `#` marks a link literal;
//! * `V := expr` (or `V = expr`) is an assignment; other expressions in the
//!   body are boolean filters;
//! * `min<C>`, `max<C>`, `count<C>`, `sum<C>` are head aggregates.

use crate::ast::{
    AggFunc, Assignment, Atom, BinOp, Expr, Literal, Program, Rule, TableDecl, Term, Variable,
};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::Value;
use ndlog_net::NodeAddr;

/// Parse a complete NDlog program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).parse_program()
}

/// Parse a single rule (convenience for tests and builders).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let program = parse_program(src)?;
    program
        .rules
        .into_iter()
        .next()
        .ok_or_else(|| ParseError::new(1, 1, "expected a rule"))
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    auto_label: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            auto_label: 0,
        }
    }

    pub(crate) fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    pub(crate) fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn peek_ahead(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    pub(crate) fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn error(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(t.line, t.column, msg.into())
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.advance())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new("ndlog");
        while self.peek_kind() != &TokenKind::Eof {
            match self.peek_kind() {
                TokenKind::Ident(id) if id == "materialize" => {
                    let decl = self.parse_materialize()?;
                    program.tables.push(decl);
                }
                TokenKind::Ident(id) if id == "query" => {
                    self.advance();
                    let atom = self.parse_atom()?;
                    self.expect(&TokenKind::Period)?;
                    program.queries.push(atom);
                }
                _ => {
                    let rule = self.parse_rule_stmt()?;
                    program.rules.push(rule);
                }
            }
        }
        Ok(program)
    }

    pub(crate) fn parse_materialize(&mut self) -> Result<TableDecl, ParseError> {
        self.advance(); // materialize
        self.expect(&TokenKind::LParen)?;
        let name = match self.advance().kind {
            TokenKind::Ident(s) => s,
            other => {
                return Err(self.error(format!(
                    "expected relation name, found {}",
                    other.describe()
                )))
            }
        };
        let mut decl = TableDecl {
            name,
            key_columns: Vec::new(),
            ttl_seconds: None,
            arity: None,
        };
        let mut bare_positional = 0;
        while self.eat(&TokenKind::Comma) {
            match self.peek_kind().clone() {
                TokenKind::Ident(id) if id == "keys" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    loop {
                        match self.advance().kind {
                            TokenKind::Int(k) if k >= 1 => {
                                decl.key_columns.push((k - 1) as usize);
                            }
                            other => {
                                return Err(self.error(format!(
                                    "expected 1-based key column index, found {}",
                                    other.describe()
                                )))
                            }
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                TokenKind::Ident(id) if id == "ttl" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    decl.ttl_seconds = Some(self.parse_number()?);
                    self.expect(&TokenKind::RParen)?;
                }
                TokenKind::Ident(id) if id == "arity" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let n = self.parse_number()?;
                    decl.arity = Some(n as usize);
                    self.expect(&TokenKind::RParen)?;
                }
                // P2-style positional arguments: materialize(link, infinity, infinity, keys(1,2)).
                // The first positional argument is the lifetime (TTL), the
                // second is the table size bound (ignored here).
                TokenKind::Ident(id) if id == "infinity" => {
                    self.advance();
                    bare_positional += 1;
                }
                TokenKind::Int(_) | TokenKind::Float(_) => {
                    let v = self.parse_number()?;
                    bare_positional += 1;
                    if bare_positional == 1 {
                        decl.ttl_seconds = Some(v);
                    }
                }
                other => {
                    return Err(self.error(format!(
                        "unexpected materialize argument {}",
                        other.describe()
                    )))
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Period)?;
        Ok(decl)
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        match self.advance().kind {
            TokenKind::Int(i) => Ok(i as f64),
            TokenKind::Float(f) => Ok(f),
            other => Err(self.error(format!("expected number, found {}", other.describe()))),
        }
    }

    pub(crate) fn parse_rule_stmt(&mut self) -> Result<Rule, ParseError> {
        // Optional label: an identifier directly followed by another
        // identifier or `#` (the head atom) rather than `(`.
        let label = match (self.peek_kind(), self.peek_ahead(1)) {
            (TokenKind::Ident(l), TokenKind::Ident(_)) | (TokenKind::Ident(l), TokenKind::Hash) => {
                let l = l.clone();
                self.advance();
                l
            }
            _ => {
                self.auto_label += 1;
                format!("r{}", self.auto_label)
            }
        };
        let head = self.parse_atom()?;
        let mut body = Vec::new();
        if self.eat(&TokenKind::ColonDash) {
            loop {
                body.push(self.parse_literal()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::Period)?;
        Ok(Rule { label, head, body })
    }

    pub(crate) fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let link = self.eat(&TokenKind::Hash);
        let name = match self.advance().kind {
            TokenKind::Ident(s) => s,
            other => {
                return Err(self.error(format!(
                    "expected predicate name, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            loop {
                args.push(self.parse_term()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Atom { name, link, args })
    }

    pub(crate) fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::AtVar(name) => {
                self.advance();
                Ok(Term::Var(Variable::located(name)))
            }
            TokenKind::AtConst(a) => {
                self.advance();
                Ok(Term::Const(Value::Addr(NodeAddr(a))))
            }
            TokenKind::Var(name) => {
                self.advance();
                Ok(Term::Var(Variable::plain(name)))
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Term::Const(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Term::Const(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Term::Const(Value::str(s)))
            }
            TokenKind::LBracket => {
                let v = self.parse_list_value()?;
                Ok(Term::Const(v))
            }
            TokenKind::Ident(id) => {
                if id == "nil" {
                    self.advance();
                    return Ok(Term::Const(Value::nil()));
                }
                if id == "true" || id == "false" {
                    self.advance();
                    return Ok(Term::Const(Value::Bool(id == "true")));
                }
                // Aggregate: min<C>, max<C>, count<C>, sum<C>.
                if let Some(func) = AggFunc::from_name(&id) {
                    if self.peek_ahead(1) == &TokenKind::Lt {
                        self.advance(); // func name
                        self.advance(); // <
                        let var = match self.advance().kind {
                            TokenKind::Var(v) => v,
                            other => {
                                return Err(self.error(format!(
                                    "expected variable inside aggregate, found {}",
                                    other.describe()
                                )))
                            }
                        };
                        self.expect(&TokenKind::Gt)?;
                        return Ok(Term::agg(func, var));
                    }
                }
                Err(self.error(format!(
                    "unexpected identifier `{id}` in predicate argument"
                )))
            }
            other => Err(self.error(format!(
                "unexpected {} in predicate argument",
                other.describe()
            ))),
        }
    }

    pub(crate) fn parse_list_value(&mut self) -> Result<Value, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let mut items = Vec::new();
        if self.peek_kind() != &TokenKind::RBracket {
            loop {
                let v = match self.advance().kind {
                    TokenKind::Int(i) => Value::Int(i),
                    TokenKind::Float(f) => Value::Float(f),
                    TokenKind::Str(s) => Value::str(s),
                    TokenKind::AtConst(a) => Value::Addr(NodeAddr(a)),
                    other => {
                        return Err(self.error(format!(
                            "only constants are allowed in list literals, found {}",
                            other.describe()
                        )))
                    }
                };
                items.push(v);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(Value::list(items))
    }

    pub(crate) fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek_kind().clone() {
            // Assignment: Var := expr  or  Var = expr.
            TokenKind::Var(name)
                if matches!(self.peek_ahead(1), TokenKind::Assign | TokenKind::EqSign) =>
            {
                self.advance();
                self.advance();
                let expr = self.parse_expr()?;
                Ok(Literal::Assign(Assignment { var: name, expr }))
            }
            // Predicate atom: `#link(...)` or `pred(...)` where the name is
            // not an `f_`-prefixed builtin function.
            TokenKind::Hash => Ok(Literal::Atom(self.parse_atom()?)),
            TokenKind::Ident(id)
                if !id.starts_with("f_")
                    && id != "nil"
                    && id != "true"
                    && id != "false"
                    && self.peek_ahead(1) == &TokenKind::LParen =>
            {
                Ok(Literal::Atom(self.parse_atom()?))
            }
            // Anything else is a boolean filter expression.
            _ => Ok(Literal::Filter(self.parse_expr()?)),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq | TokenKind::EqSign => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_additive()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_mul()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_primary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Const(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::Const(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Const(Value::str(s)))
            }
            TokenKind::Var(v) => {
                self.advance();
                Ok(Expr::Var(v))
            }
            TokenKind::AtVar(v) => {
                self.advance();
                Ok(Expr::Var(v))
            }
            TokenKind::AtConst(a) => {
                self.advance();
                Ok(Expr::Const(Value::Addr(NodeAddr(a))))
            }
            TokenKind::LBracket => {
                let v = self.parse_list_value()?;
                Ok(Expr::Const(v))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Minus => {
                self.advance();
                let e = self.parse_primary()?;
                Ok(Expr::bin(BinOp::Sub, Expr::Const(Value::Int(0)), e))
            }
            TokenKind::Ident(id) => {
                self.advance();
                match id.as_str() {
                    "nil" => Ok(Expr::Const(Value::nil())),
                    "true" => Ok(Expr::Const(Value::Bool(true))),
                    "false" => Ok(Expr::Const(Value::Bool(false))),
                    _ => {
                        // Function call.
                        self.expect(&TokenKind::LParen)?;
                        let mut args = Vec::new();
                        if self.peek_kind() != &TokenKind::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Call(id, args))
                    }
                }
            }
            other => Err(self.error(format!("unexpected {} in expression", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, BinOp, Literal, Term};

    #[test]
    fn parses_shortest_path_program() {
        let src = r#"
            materialize(link, keys(1,2), ttl(60)).
            materialize(path, keys(1,2,3,4)).

            sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C),
                P := f_cons(S, f_cons(D, nil)).
            sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
                C := C1 + C2, P := f_cons(S, P2), f_member(P2, S) == 0.
            sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
            sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).

            query shortestPath(@S,@D,P,C).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.tables.len(), 2);
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.queries.len(), 1);

        let link_decl = p.table_decl("link").unwrap();
        assert_eq!(link_decl.key_columns, vec![0, 1]);
        assert_eq!(link_decl.ttl_seconds, Some(60.0));

        let sp1 = p.rule("sp1").unwrap();
        assert_eq!(sp1.head.name, "path");
        assert_eq!(sp1.head.arity(), 5);
        assert!(sp1.body_atoms().next().unwrap().link);

        let sp2 = p.rule("sp2").unwrap();
        assert_eq!(sp2.body.len(), 5);
        assert!(matches!(sp2.body[4], Literal::Filter(_)));

        let sp3 = p.rule("sp3").unwrap();
        assert!(matches!(
            sp3.head.args[2],
            Term::Agg(ref a) if a.func == AggFunc::Min && a.var == "C"
        ));
    }

    #[test]
    fn parses_p2_style_materialize() {
        let p = parse_program("materialize(link, infinity, infinity, keys(1,2)).").unwrap();
        assert_eq!(p.tables[0].key_columns, vec![0, 1]);
        assert_eq!(p.tables[0].ttl_seconds, None);

        let p = parse_program("materialize(cache, 120, infinity, keys(1)).").unwrap();
        assert_eq!(p.tables[0].ttl_seconds, Some(120.0));
    }

    #[test]
    fn facts_and_unlabelled_rules() {
        let p = parse_program("link(@n0, @n1, 5). reach(@S,@D) :- #link(@S,@D,C).").unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].is_fact());
        assert_eq!(p.rules[0].label, "r1");
        assert_eq!(p.rules[1].label, "r2");
        assert_eq!(
            p.rules[0].head.args[0],
            Term::Const(Value::Addr(NodeAddr(0)))
        );
    }

    #[test]
    fn assignment_with_plain_equals() {
        let r = parse_rule("a p(@S,C) :- q(@S,C1), C = C1 + 1.").unwrap();
        match &r.body[1] {
            Literal::Assign(a) => {
                assert_eq!(a.var, "C");
                assert!(matches!(a.expr, Expr::Binary(BinOp::Add, _, _)));
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn filter_expressions() {
        let r = parse_rule("a p(@S) :- q(@S,C), C < 10, f_size(C) != 2.").unwrap();
        assert!(matches!(r.body[1], Literal::Filter(_)));
        assert!(matches!(r.body[2], Literal::Filter(_)));
    }

    #[test]
    fn operator_precedence() {
        let r = parse_rule("a p(@S,C) :- q(@S,A,B), C := A + B * 2.").unwrap();
        let Literal::Assign(assign) = &r.body[1] else {
            panic!()
        };
        // A + (B * 2)
        match &assign.expr {
            Expr::Binary(BinOp::Add, l, r) => {
                assert!(matches!(**l, Expr::Var(ref v) if v == "A"));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expressions() {
        let r = parse_rule("a p(@S,C) :- q(@S,A,B), C := (A + B) * 2.").unwrap();
        let Literal::Assign(assign) = &r.body[1] else {
            panic!()
        };
        assert!(matches!(assign.expr, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn list_and_nil_constants() {
        let r = parse_rule("a p(@S, [1, 2, @n3], nil) :- q(@S).").unwrap();
        let Term::Const(Value::List(items)) = &r.head.args[1] else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert_eq!(r.head.args[2], Term::Const(Value::nil()));
    }

    #[test]
    fn query_statement() {
        let p = parse_program("query shortestPath(@S, @D, P, C).").unwrap();
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.queries[0].name, "shortestPath");
    }

    #[test]
    fn negative_numbers_in_expressions() {
        let r = parse_rule("a p(@S,C) :- q(@S,A), C := -1 + A.").unwrap();
        assert!(matches!(r.body[1], Literal::Assign(_)));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_program("a p(@S) :- q(@S)").unwrap_err();
        assert!(err.message.contains("expected"));
        assert!(err.line >= 1);

        assert!(parse_program("p(@S) :- .").is_err());
        assert!(
            parse_program("p(@S) :- 42abc.").is_err() || parse_program("p(@S) :- f_x(.").is_err()
        );
        assert!(
            parse_program("materialize(p, keys(0)).").is_err(),
            "key columns are 1-based"
        );
    }

    #[test]
    fn aggregate_requires_variable() {
        assert!(parse_program("a s(@S, min<3>) :- p(@S, C).").is_err());
    }

    #[test]
    fn min_without_angle_bracket_is_error() {
        // `min` not followed by `<` is not a valid term.
        assert!(parse_program("a s(@S, min) :- p(@S, C).").is_err());
    }

    #[test]
    fn display_then_reparse_is_stable() {
        let src = r#"
            sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
                C := C1 + C2, P := f_cons(S, P2).
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1.rules, p2.rules);
    }
}
