//! Tokenizer for the NDlog surface syntax.
//!
//! The token stream feeds the recursive-descent parser in [`crate::parser`].
//! Comments run from `//` or `%` to end of line. Identifiers starting with a
//! lower-case letter are predicate/function names; identifiers starting with
//! an upper-case letter (or `_`) are variables; `@`-prefixed identifiers are
//! address-typed variables or address constants (`@n3`).

use crate::error::ParseError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Lower-case identifier (predicate, function, keyword).
    Ident(String),
    /// Upper-case identifier (variable).
    Var(String),
    /// `@X` — address-typed variable.
    AtVar(String),
    /// `@n3` / `@17` — address constant.
    AtConst(u32),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `#` (link literal marker).
    Hash,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `.` (end of statement).
    Period,
    /// `:-`.
    ColonDash,
    /// `?-` (interactive query prompt).
    QuestionDash,
    /// `:=`.
    Assign,
    /// `=` (context-dependent: assignment or equality).
    EqSign,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Var(s) => format!("variable `{s}`"),
            TokenKind::AtVar(s) => format!("address variable `@{s}`"),
            TokenKind::AtConst(a) => format!("address constant `@n{a}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Float(x) => format!("float `{x}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Hash => "#",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Period => ".",
            TokenKind::ColonDash => ":-",
            TokenKind::QuestionDash => "?-",
            TokenKind::Assign => ":=",
            TokenKind::EqSign => "=",
            TokenKind::EqEq => "==",
            TokenKind::NotEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            _ => "?",
        }
    }
}

/// Tokenize NDlog source text.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                column: $c,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
            }
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '#' => {
                push!(TokenKind::Hash, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '(' => {
                push!(TokenKind::LParen, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                push!(TokenKind::RParen, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '[' => {
                push!(TokenKind::LBracket, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            ']' => {
                push!(TokenKind::RBracket, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            ',' => {
                push!(TokenKind::Comma, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '+' => {
                push!(TokenKind::Plus, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '-' => {
                push!(TokenKind::Minus, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '*' => {
                push!(TokenKind::Star, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '/' => {
                push!(TokenKind::Slash, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            '.' => {
                // Distinguish a statement terminator from a float like `.5`
                // (we do not support leading-dot floats; always a period).
                push!(TokenKind::Period, tl, tc);
                advance(&mut i, &mut line, &mut col);
            }
            ':' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '-' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::ColonDash, tl, tc);
                } else if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::Assign, tl, tc);
                } else {
                    return Err(ParseError::new(tl, tc, "expected `:-` or `:=` after `:`"));
                }
            }
            '?' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '-' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::QuestionDash, tl, tc);
                } else {
                    return Err(ParseError::new(tl, tc, "expected `?-` after `?`"));
                }
            }
            '=' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::EqEq, tl, tc);
                } else {
                    push!(TokenKind::EqSign, tl, tc);
                }
            }
            '!' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::NotEq, tl, tc);
                } else {
                    return Err(ParseError::new(tl, tc, "expected `!=`"));
                }
            }
            '<' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::Le, tl, tc);
                } else {
                    push!(TokenKind::Lt, tl, tc);
                }
            }
            '>' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::Ge, tl, tc);
                } else {
                    push!(TokenKind::Gt, tl, tc);
                }
            }
            '&' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '&' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::AndAnd, tl, tc);
                } else {
                    return Err(ParseError::new(tl, tc, "expected `&&`"));
                }
            }
            '|' => {
                advance(&mut i, &mut line, &mut col);
                if i < chars.len() && chars[i] == '|' {
                    advance(&mut i, &mut line, &mut col);
                    push!(TokenKind::OrOr, tl, tc);
                } else {
                    return Err(ParseError::new(tl, tc, "expected `||`"));
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        return Err(ParseError::new(tl, tc, "unterminated string literal"));
                    }
                    if chars[i] == '"' {
                        advance(&mut i, &mut line, &mut col);
                        break;
                    }
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                push!(TokenKind::Str(s), tl, tc);
            }
            '@' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                if s.is_empty() {
                    return Err(ParseError::new(tl, tc, "expected identifier after `@`"));
                }
                // @n3 or @3 is an address constant; @Upper is an address variable.
                let digits = s.strip_prefix('n').unwrap_or(&s);
                if digits.chars().all(|c| c.is_ascii_digit()) && !digits.is_empty() {
                    let id: u32 = digits.parse().map_err(|_| {
                        ParseError::new(tl, tc, format!("invalid address constant `@{s}`"))
                    })?;
                    push!(TokenKind::AtConst(id), tl, tc);
                } else {
                    push!(TokenKind::AtVar(s), tl, tc);
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.'
                            && !is_float
                            && i + 1 < chars.len()
                            && chars[i + 1].is_ascii_digit()))
                {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                if is_float {
                    let v: f64 = s
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("invalid float `{s}`")))?;
                    push!(TokenKind::Float(v), tl, tc);
                } else {
                    let v: i64 = s
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("invalid integer `{s}`")))?;
                    push!(TokenKind::Int(v), tl, tc);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                let first = s.chars().next().unwrap();
                if first.is_uppercase() || first == '_' {
                    push!(TokenKind::Var(s), tl, tc);
                } else {
                    push!(TokenKind::Ident(s), tl, tc);
                }
            }
            other => {
                return Err(ParseError::new(
                    tl,
                    tc,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_rule() {
        let ks = kinds("sp1 path(@S,@D,C) :- #link(@S,@D,C).");
        assert_eq!(ks[0], TokenKind::Ident("sp1".into()));
        assert_eq!(ks[1], TokenKind::Ident("path".into()));
        assert_eq!(ks[2], TokenKind::LParen);
        assert_eq!(ks[3], TokenKind::AtVar("S".into()));
        assert!(ks.contains(&TokenKind::ColonDash));
        assert!(ks.contains(&TokenKind::Hash));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
        assert_eq!(ks[ks.len() - 2], TokenKind::Period);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5), TokenKind::Eof]
        );
    }

    #[test]
    fn period_vs_float() {
        // "10." is an integer followed by a statement period.
        assert_eq!(
            kinds("10."),
            vec![TokenKind::Int(10), TokenKind::Period, TokenKind::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds(":= :- == != <= >= < > + - * / && ||"),
            vec![
                TokenKind::Assign,
                TokenKind::ColonDash,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn address_constants_and_variables() {
        assert_eq!(
            kinds("@S @n3 @12"),
            vec![
                TokenKind::AtVar("S".into()),
                TokenKind::AtConst(3),
                TokenKind::AtConst(12),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\n% another\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds(r#""hello world""#),
            vec![TokenKind::Str("hello world".into()), TokenKind::Eof]
        );
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn error_positions() {
        let e = tokenize("a\n  ^").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 3);
    }

    #[test]
    fn question_dash() {
        assert_eq!(
            kinds("?- path(@S,@D)."),
            vec![
                TokenKind::QuestionDash,
                TokenKind::Ident("path".into()),
                TokenKind::LParen,
                TokenKind::AtVar("S".into()),
                TokenKind::Comma,
                TokenKind::AtVar("D".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof
            ]
        );
        assert!(tokenize("? x").is_err());
    }

    #[test]
    fn bad_tokens_error() {
        assert!(tokenize("!x").is_err());
        assert!(tokenize("&x").is_err());
        assert!(tokenize("|x").is_err());
        assert!(tokenize(": x").is_err());
        assert!(tokenize("@ ").is_err());
    }

    #[test]
    fn underscore_is_variable() {
        assert_eq!(
            kinds("_ _Foo"),
            vec![
                TokenKind::Var("_".into()),
                TokenKind::Var("_Foo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn describe_tokens() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::ColonDash.describe(), "`:-`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
