//! Validation of the NDlog syntactic constraints (Definition 6).
//!
//! A valid NDlog program satisfies:
//!
//! 1. **Location specificity** — each predicate has a location specifier as
//!    its first attribute;
//! 2. **Address type safety** — a variable that appears as an address type
//!    must not appear elsewhere in the rule as a non-address type;
//! 3. **Stored link relations** — link relations never appear in the head
//!    of a rule with a non-empty body;
//! 4. **Link-restriction** — any non-local rule is link-restricted by some
//!    link relation (Definition 5): exactly one link literal in the body,
//!    and every other literal (including the head) has its location
//!    specifier set to the link's source or destination field.
//!
//! Beyond Definition 6 we also check basic Datalog sanity: consistent
//! arities, rule safety (head variables bound in the body) and that
//! aggregates only appear in head arguments.

use crate::ast::{Literal, Program, Rule, Term};
use crate::error::ValidationError;
use std::collections::{BTreeMap, BTreeSet};

/// Validate a program, returning all violations found (empty = valid).
pub fn validate(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let link_relations = program.link_relations();
    let mut arities: BTreeMap<String, usize> = BTreeMap::new();
    for t in &program.tables {
        if let Some(a) = t.arity {
            arities.insert(t.name.clone(), a);
        }
    }

    for rule in &program.rules {
        check_location_specificity(rule, &mut errors);
        check_address_type_safety(rule, &mut errors);
        check_stored_link_relations(rule, &link_relations, &mut errors);
        check_link_restriction(rule, &mut errors);
        check_safety(rule, &mut errors);
        check_aggregates(rule, &mut errors);
        check_arities(rule, &mut arities, &mut errors);
    }
    errors
}

/// Validate and return `Ok(())` or the list of violations as an error.
pub fn validate_strict(program: &Program) -> Result<(), crate::error::LangError> {
    let errors = validate(program);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(crate::error::LangError::Validation(errors))
    }
}

fn check_location_specificity(rule: &Rule, errors: &mut Vec<ValidationError>) {
    let mut check_atom = |atom: &crate::ast::Atom| match atom.location() {
        None => errors.push(ValidationError::EmptyPredicate {
            rule: rule.label.clone(),
            predicate: atom.name.clone(),
        }),
        Some(loc) if !loc.is_address() => errors.push(ValidationError::MissingLocationSpecifier {
            rule: rule.label.clone(),
            predicate: atom.name.clone(),
        }),
        _ => {}
    };
    check_atom(&rule.head);
    for a in rule.body_atoms() {
        check_atom(a);
    }
}

fn check_address_type_safety(rule: &Rule, errors: &mut Vec<ValidationError>) {
    for (var, (as_addr, as_plain)) in rule.address_usage() {
        if as_addr && as_plain {
            errors.push(ValidationError::AddressTypeViolation {
                rule: rule.label.clone(),
                variable: var,
            });
        }
    }
}

fn check_stored_link_relations(
    rule: &Rule,
    link_relations: &BTreeSet<String>,
    errors: &mut Vec<ValidationError>,
) {
    if !rule.is_fact() && link_relations.contains(&rule.head.name) {
        errors.push(ValidationError::DerivedLinkRelation {
            rule: rule.label.clone(),
            predicate: rule.head.name.clone(),
        });
    }
}

fn check_link_restriction(rule: &Rule, errors: &mut Vec<ValidationError>) {
    if rule.is_local() || rule.is_fact() {
        return;
    }
    let links: Vec<_> = rule.link_literals().collect();
    if links.len() != 1 {
        errors.push(ValidationError::NotLinkRestricted {
            rule: rule.label.clone(),
            reason: format!(
                "non-local rules must have exactly one link literal, found {}",
                links.len()
            ),
        });
        return;
    }
    let link = links[0];
    if link.arity() < 2 {
        errors.push(ValidationError::NotLinkRestricted {
            rule: rule.label.clone(),
            reason: "link literal must have at least source and destination fields".into(),
        });
        return;
    }
    let endpoints = [&link.args[0], &link.args[1]];
    let mut offenders = Vec::new();
    let mut check = |atom: &crate::ast::Atom| {
        if atom.link {
            return;
        }
        match atom.location() {
            Some(loc) if endpoints.contains(&loc) => {}
            Some(loc) => offenders.push(format!("{}@{}", atom.name, loc)),
            None => offenders.push(atom.name.clone()),
        }
    };
    check(&rule.head);
    for a in rule.body_atoms() {
        check(a);
    }
    if !offenders.is_empty() {
        errors.push(ValidationError::NotLinkRestricted {
            rule: rule.label.clone(),
            reason: format!(
                "location specifiers must be an endpoint of the link literal; offending predicates: {}",
                offenders.join(", ")
            ),
        });
    }
}

fn check_safety(rule: &Rule, errors: &mut Vec<ValidationError>) {
    if rule.is_fact() {
        // Facts must be ground.
        for t in &rule.head.args {
            if let Term::Var(v) = t {
                errors.push(ValidationError::UnboundHeadVariable {
                    rule: rule.label.clone(),
                    variable: v.name.clone(),
                });
            }
        }
        return;
    }
    // Variables bound by body atoms or by assignments.
    let mut bound: BTreeSet<String> = BTreeSet::new();
    for a in rule.body_atoms() {
        bound.extend(a.variables());
    }
    for l in &rule.body {
        if let Literal::Assign(a) = l {
            bound.insert(a.var.clone());
        }
    }
    for t in &rule.head.args {
        for v in t.variables() {
            if !bound.contains(v) {
                errors.push(ValidationError::UnboundHeadVariable {
                    rule: rule.label.clone(),
                    variable: v.to_string(),
                });
            }
        }
    }
}

fn check_aggregates(rule: &Rule, errors: &mut Vec<ValidationError>) {
    for a in rule.body_atoms() {
        if a.has_aggregate() {
            errors.push(ValidationError::MisplacedAggregate {
                rule: rule.label.clone(),
            });
        }
    }
}

fn check_arities(
    rule: &Rule,
    arities: &mut BTreeMap<String, usize>,
    errors: &mut Vec<ValidationError>,
) {
    let mut check = |name: &str, arity: usize| match arities.get(name) {
        Some(&expected) if expected != arity => {
            errors.push(ValidationError::ArityMismatch {
                predicate: name.to_string(),
                expected,
                found: arity,
                rule: rule.label.clone(),
            });
        }
        Some(_) => {}
        None => {
            arities.insert(name.to_string(), arity);
        }
    };
    check(&rule.head.name, rule.head.arity());
    for a in rule.body_atoms() {
        check(&a.name, a.arity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn errors_of(src: &str) -> Vec<ValidationError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn shortest_path_program_is_valid() {
        let src = r#"
            sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_cons(S, f_cons(D, nil)).
            sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
                C := C1 + C2, P := f_cons(S, P2).
            sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
            sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn missing_location_specifier() {
        let errs = errors_of("a p(X, @S) :- q(@S, X).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MissingLocationSpecifier { predicate, .. } if predicate == "p")));
    }

    #[test]
    fn address_type_safety_violation() {
        // S is used as an address in the head and as a plain variable in the body.
        let errs = errors_of("a p(@S, C) :- q(@S, C), C := f_f(S).");
        // S appears in f_f(S) as an expression variable, which is fine (the
        // check is about predicate argument positions), so construct a real
        // violation instead:
        let errs2 = errors_of("a p(@S, S) :- q(@S, S).");
        assert!(errs2
            .iter()
            .any(|e| matches!(e, ValidationError::AddressTypeViolation { variable, .. } if variable == "S")));
        assert!(errs.is_empty());
    }

    #[test]
    fn derived_link_relation_rejected() {
        let errs = errors_of("a link(@S, @D, C) :- path(@S, @D, C).");
        assert!(
            errs.is_empty(),
            "link only counts as a link relation when used with #"
        );
        let errs = errors_of("a link(@S,@D,C) :- path(@S,@D,C). b reach(@S,@D) :- #link(@S,@D,C).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::DerivedLinkRelation { predicate, .. } if predicate == "link")));
    }

    #[test]
    fn link_facts_are_allowed() {
        let errs = errors_of("f link(@n0, @n1, 3). b reach(@S,@D) :- #link(@S,@D,C).");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn non_local_rule_without_link_literal() {
        let errs = errors_of("a p(@S, C) :- q(@D, C), r(@S, D).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::NotLinkRestricted { .. })));
    }

    #[test]
    fn non_local_rule_with_two_link_literals() {
        let errs = errors_of("a p(@S, C) :- #link(@S, @D, C), #link(@D, @E, C2), q(@D, C).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::NotLinkRestricted { reason, .. } if reason.contains("exactly one"))));
    }

    #[test]
    fn non_local_rule_with_off_link_location() {
        // q is located at @E which is not an endpoint of the link literal.
        let errs = errors_of("a p(@S, C) :- #link(@S, @D, C), q(@E, C), r(@D, E).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::NotLinkRestricted { reason, .. } if reason.contains("q"))));
    }

    #[test]
    fn local_rules_need_no_link() {
        let errs = errors_of("a p(@S, C) :- q(@S, C), r(@S, C).");
        assert!(errs.is_empty());
    }

    #[test]
    fn unsafe_head_variable() {
        let errs = errors_of("a p(@S, X) :- q(@S, C).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundHeadVariable { variable, .. } if variable == "X")));
    }

    #[test]
    fn assignment_binds_head_variable() {
        let errs = errors_of("a p(@S, X) :- q(@S, C), X := C + 1.");
        assert!(errs.is_empty());
    }

    #[test]
    fn non_ground_fact_rejected() {
        let errs = errors_of("a p(@S, 3).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::UnboundHeadVariable { .. })));
    }

    #[test]
    fn aggregate_in_body_rejected() {
        let errs = errors_of("a p(@S, C) :- q(@S, min<C>).");
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::MisplacedAggregate { .. })));
    }

    #[test]
    fn arity_mismatch_detected() {
        let errs = errors_of("a p(@S, C) :- q(@S, C). b r(@S) :- q(@S, C, D).");
        assert!(errs.iter().any(
            |e| matches!(e, ValidationError::ArityMismatch { predicate, .. } if predicate == "q")
        ));
    }

    #[test]
    fn validate_strict_wraps_errors() {
        assert!(validate_strict(&parse_program("a p(@S, X) :- q(@S, C).").unwrap()).is_err());
        assert!(validate_strict(&parse_program("a p(@S, C) :- q(@S, C).").unwrap()).is_ok());
    }
}
