//! Rule localization (Algorithm 2 of the paper).
//!
//! Non-local link-restricted rules join relations stored at different nodes
//! (e.g. rule SP2 joins `#link(@S,@Z,...)` stored at `@S` with
//! `path(@Z,...)` stored at `@Z`). The localization rewrite transforms such
//! a rule into rules whose bodies are each evaluable at a single node, with
//! the only communication being derived tuples sent along a link:
//!
//! ```text
//! SP2  path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
//!                            C := C1 + C2, P := f_concatPath(...).
//! ```
//!
//! becomes (following the paper's SP2a/SP2b):
//!
//! ```text
//! SP2a path_sp2_xd(@Z,@S,C1)    :- #link(@S,@Z,C1).
//! SP2b path(@S,@D,@Z,P,C)  :- #link(@Z,@S,LR0), path_sp2_xd(@Z,@S,C1),
//!                             path(@Z,@D,@Z2,P2,C2),
//!                             C := C1 + C2, P := f_concatPath(...).
//! ```
//!
//! The intermediate relation (`path_sp2_xd` here, `linkD` in the paper) carries
//! the link-source-side bindings across the link to the destination. If the
//! original head is located at the link *source*, a reverse link literal is
//! added to the final rule so the result can be shipped back along the link
//! (links are bidirectional, Section 2.1).
//!
//! Rules that are already evaluable at a single node (local rules, facts, or
//! rules whose non-link body predicates are all co-located with the link
//! source) are left untouched: for those, the only communication is the
//! shipment of the derived head tuple, which the planner handles.

use crate::ast::{Atom, Literal, Program, Rule, Term, Variable};
use crate::error::LangError;
use std::collections::BTreeSet;

/// Suffix used for the intermediate "transfer" relation of a localized rule.
pub const XFER_SUFFIX: &str = "_xd";

/// Localize every rule of a program. The input is assumed to have passed
/// [`crate::validate::validate`]; rules that cannot be localized (e.g.
/// non-link-restricted rules) produce an error.
pub fn localize(program: &Program) -> Result<Program, LangError> {
    let mut out = Program::new(program.name.clone());
    out.tables = program.tables.clone();
    out.queries = program.queries.clone();
    for rule in &program.rules {
        out.rules.extend(localize_rule(rule)?);
    }
    Ok(out)
}

/// Localize a single rule, producing one or two rules.
pub fn localize_rule(rule: &Rule) -> Result<Vec<Rule>, LangError> {
    if rule.is_fact() || rule.is_local() {
        return Ok(vec![rule.clone()]);
    }
    let links: Vec<&Atom> = rule.link_literals().collect();
    if links.len() != 1 {
        return Err(LangError::Rewrite(format!(
            "rule {} is non-local but has {} link literals; it is not link-restricted",
            rule.label,
            links.len()
        )));
    }
    let link = links[0].clone();
    if link.arity() < 2 {
        return Err(LangError::Rewrite(format!(
            "rule {}: link literal must have source and destination fields",
            rule.label
        )));
    }
    let src_term = link.args[0].clone();
    let dst_term = link.args[1].clone();

    // Partition non-link body atoms by side.
    let mut src_side: Vec<Atom> = Vec::new();
    let mut dst_side: Vec<Atom> = Vec::new();
    for atom in rule.body_atoms() {
        if atom.link {
            continue;
        }
        let loc = atom.location().ok_or_else(|| {
            LangError::Rewrite(format!(
                "rule {}: predicate {} has no location specifier",
                rule.label, atom.name
            ))
        })?;
        if *loc == src_term {
            src_side.push(atom.clone());
        } else if *loc == dst_term {
            dst_side.push(atom.clone());
        } else {
            return Err(LangError::Rewrite(format!(
                "rule {}: predicate {} is located at {} which is not an endpoint of the link",
                rule.label, atom.name, loc
            )));
        }
    }

    // If nothing needs to be evaluated on the destination side, the whole
    // body already lives at the link source and no rewrite is required.
    if dst_side.is_empty() {
        return Ok(vec![rule.clone()]);
    }

    let head_loc = rule.head.location().cloned().ok_or_else(|| {
        LangError::Rewrite(format!(
            "rule {}: head has no location specifier",
            rule.label
        ))
    })?;
    if head_loc != src_term && head_loc != dst_term {
        return Err(LangError::Rewrite(format!(
            "rule {}: head location {} is not an endpoint of the link literal",
            rule.label, head_loc
        )));
    }

    // Variables bound on the source side (by the link literal or source-side
    // predicates).
    let mut src_bound: BTreeSet<String> = link.variables().into_iter().collect();
    for a in &src_side {
        src_bound.extend(a.variables());
    }
    // Variables needed after the transfer: by destination-side predicates,
    // constraints, or the head.
    let mut needed: BTreeSet<String> = rule.head.variables().into_iter().collect();
    for a in &dst_side {
        needed.extend(a.variables());
    }
    for c in rule.constraints() {
        needed.extend(c.variables());
    }
    let src_var = src_term.var_name().map(str::to_string);
    let dst_var = dst_term.var_name().map(str::to_string);
    let carried: Vec<String> = src_bound
        .intersection(&needed)
        .filter(|v| {
            Some(v.as_str()) != src_var.as_deref() && Some(v.as_str()) != dst_var.as_deref()
        })
        .cloned()
        .collect();

    // The transfer relation: xd(@Dst, @Src, carried...). Its name includes
    // the head relation so that several instances of the same rule set
    // (e.g. per-metric suffixed copies of the shortest-path query running
    // concurrently) never share transfer tuples.
    let xfer_name = format!("{}_{}{}", rule.head.name, rule.label, XFER_SUFFIX);
    let mut xfer_args = vec![as_located(&dst_term), as_located(&src_term)];
    xfer_args.extend(carried.iter().map(|v| Term::var(v.clone())));
    let xfer_head = Atom::new(xfer_name.clone(), xfer_args.clone());

    // Rule A: evaluate the source side and ship the bindings to the
    // destination endpoint of the link.
    let mut rule_a_body: Vec<Literal> = vec![Literal::Atom(link.clone())];
    rule_a_body.extend(src_side.iter().cloned().map(Literal::Atom));
    let rule_a = Rule::new(format!("{}a", rule.label), xfer_head, rule_a_body);

    // Rule B: evaluate the destination side (plus all constraints) and
    // derive the original head. If the head lives at the link source, add a
    // reverse link literal so the result travels back along the link.
    let mut rule_b_body: Vec<Literal> = Vec::new();
    if head_loc == src_term {
        // Fresh variables for the remaining fields of the reverse link.
        let mut reverse_args = vec![as_located(&dst_term), as_located(&src_term)];
        for i in 2..link.arity() {
            reverse_args.push(Term::Var(Variable::plain(format!("LR{}", i - 2))));
        }
        rule_b_body.push(Literal::Atom(Atom::link(link.name.clone(), reverse_args)));
    }
    rule_b_body.push(Literal::Atom(Atom::new(xfer_name, xfer_args)));
    rule_b_body.extend(dst_side.iter().cloned().map(Literal::Atom));
    rule_b_body.extend(rule.constraints().cloned());
    let rule_b = Rule::new(format!("{}b", rule.label), rule.head.clone(), rule_b_body);

    Ok(vec![rule_a, rule_b])
}

/// Force a term to be address-typed when it is a variable (the transfer
/// relation's first two fields are addresses by construction).
fn as_located(t: &Term) -> Term {
    match t {
        Term::Var(v) => Term::Var(Variable::located(v.name.clone())),
        other => other.clone(),
    }
}

/// Check whether a program is fully localized: every rule's body predicates
/// share a single location specifier (the body is evaluable at one node).
pub fn is_localized(program: &Program) -> bool {
    program.rules.iter().all(|r| {
        let mut locs = r.body_atoms().filter_map(|a| a.location());
        match locs.next() {
            None => true,
            Some(first) => locs.all(|l| l == first),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::validate::validate;

    const SP: &str = r#"
        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_cons(S, f_cons(D, nil)).
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            C := C1 + C2, P := f_cons(S, P2).
        sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
        sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).
    "#;

    #[test]
    fn local_rules_pass_through() {
        let p = parse_program(SP).unwrap();
        let sp3 = p.rule("sp3").unwrap();
        assert_eq!(localize_rule(sp3).unwrap(), vec![sp3.clone()]);
        let sp1 = p.rule("sp1").unwrap();
        assert_eq!(localize_rule(sp1).unwrap().len(), 1);
    }

    #[test]
    fn sp2_splits_into_transfer_and_join() {
        let p = parse_program(SP).unwrap();
        let rules = localize_rule(p.rule("sp2").unwrap()).unwrap();
        assert_eq!(rules.len(), 2);

        let a = &rules[0];
        assert_eq!(a.label, "sp2a");
        assert_eq!(a.head.name, "path_sp2_xd");
        // xd(@Z, @S, C1): destination, source, carried cost.
        assert_eq!(a.head.arity(), 3);
        assert_eq!(a.head.location_var(), Some("Z"));
        assert_eq!(a.body_atoms().count(), 1);
        assert!(a.body_atoms().next().unwrap().link);

        let b = &rules[1];
        assert_eq!(b.label, "sp2b");
        assert_eq!(b.head.name, "path");
        // Head at @S (link source) so a reverse link literal is added.
        let first = b.body_atoms().next().unwrap();
        assert!(
            first.link,
            "reverse link literal added for backward shipping"
        );
        assert_eq!(first.location_var(), Some("Z"));
        // Constraints moved to rule B.
        assert_eq!(b.constraints().count(), 2);
    }

    #[test]
    fn localized_program_is_locally_evaluable() {
        let p = parse_program(SP).unwrap();
        assert!(validate(&p).is_empty());
        assert!(!is_localized(&p));
        let localized = localize(&p).unwrap();
        assert!(is_localized(&localized));
        assert_eq!(localized.rules.len(), 5);
        // The rewritten program still passes the NDlog constraints.
        assert!(
            validate(&localized).is_empty(),
            "{:?}",
            validate(&localized)
        );
    }

    #[test]
    fn head_at_destination_needs_no_reverse_link() {
        // p is derived at the destination of the link; q lives at the
        // destination too, so the rule must be split but rule B needs no
        // reverse link literal.
        let src = "a p(@D, X) :- #link(@S, @D, C), q(@D, X), r(@S, X).";
        let p = parse_program(src).unwrap();
        let rules = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(rules.len(), 2);
        let b = &rules[1];
        assert!(b.body_atoms().all(|a| !a.link));
        assert_eq!(b.head.location_var(), Some("D"));
        let localized = localize(&p).unwrap();
        assert!(is_localized(&localized));
    }

    #[test]
    fn all_source_side_rule_untouched() {
        // Body entirely at @S; head shipped to @D. Already evaluable at one
        // node, so no rewrite.
        let src = "a p(@D, X) :- #link(@S, @D, C), q(@S, X).";
        let p = parse_program(src).unwrap();
        let rules = localize_rule(&p.rules[0]).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0], p.rules[0]);
    }

    #[test]
    fn carried_variables_are_minimal() {
        // C1 is needed downstream (for the cost sum); the unused link field
        // U is not carried.
        let src = "a p(@S, C) :- #link(@S, @Z, C1, U), q(@Z, C2), C := C1 + C2.";
        let p = parse_program(src).unwrap();
        let rules = localize_rule(&p.rules[0]).unwrap();
        let xd = &rules[0].head;
        let vars = xd.variables();
        assert!(vars.contains(&"C1".to_string()));
        assert!(!vars.contains(&"U".to_string()));
    }

    #[test]
    fn non_link_restricted_rule_errors() {
        let src = "a p(@S, X) :- q(@D, X), r(@S, X).";
        let p = parse_program(src).unwrap();
        assert!(localize_rule(&p.rules[0]).is_err());
    }

    #[test]
    fn facts_pass_through() {
        let p = parse_program("f link(@n0, @n1, 1).").unwrap();
        assert_eq!(localize_rule(&p.rules[0]).unwrap().len(), 1);
    }
}
