//! Semi-naive delta rewrite: rules → rule strands.
//!
//! Semi-naive evaluation avoids re-deriving tuples by making each rule fire
//! off the *delta* (newly derived tuples) of one body predicate at a time.
//! Following footnote 2 of the paper, the delta form of a rule
//!
//! ```text
//! p :- p1, ..., pk, ..., pn, b1, ..., bm.
//! ```
//!
//! is the family of rules (one per `k`)
//!
//! ```text
//! Δp_new :- p1_old, ..., p(k-1)_old, Δpk_old, p(k+1), ..., pn, b1, ..., bm.
//! ```
//!
//! In the P2 execution model each such delta rule becomes a **rule strand**
//! (Figures 3 and 5): a dataflow fragment that is triggered by the arrival
//! of a new tuple of the trigger predicate, joins it against the locally
//! stored tables of the other body predicates, evaluates assignments and
//! filters, and emits the head tuple.
//!
//! The "old"/"new" distinction is enforced by the runtime: with pipelined
//! semi-naive evaluation every tuple carries a local timestamp (sequence
//! number) and joins only match tuples whose timestamp is not newer than
//! the trigger's (Section 3.3.2), which guarantees no repeated inferences
//! (Theorem 2). The rewrite here is therefore purely structural — it
//! enumerates the strands; [`DeltaRule::older_only`] records which body
//! positions the classic SN algorithm would restrict to "old" tuples, which
//! the non-pipelined evaluator uses.

use crate::ast::{Literal, Program, Rule, Term};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One rule strand: a rule plus the body literal that triggers it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRule {
    /// The (localized) rule this strand evaluates.
    pub rule: Rule,
    /// Index into `rule.body` of the triggering predicate literal.
    pub trigger: usize,
    /// Name of the trigger predicate (cached from the body literal).
    pub trigger_relation: String,
    /// Strand identifier, e.g. `sp2b-1` for the first strand of rule
    /// `sp2b`, following the paper's naming (SP2-1 etc.).
    pub strand_id: String,
    /// Body literal indexes that the textbook semi-naive algorithm joins
    /// against *old* tuples only (those derived before the previous
    /// iteration's deltas): the recursive predicates to the left of the
    /// trigger.
    pub older_only: Vec<usize>,
    /// Trigger-atom columns (ascending) whose variables also appear in the
    /// head. Binding a concrete head tuple pins these trigger columns, so
    /// re-derivation (the DRed maintenance pass) can probe the trigger
    /// relation instead of scanning it. Empty when the head shares no
    /// variable with the trigger atom.
    pub head_bound_trigger_cols: Vec<usize>,
}

/// Generate rule strands for a program.
///
/// `dynamic` is the set of relation names whose updates should trigger
/// strands. For classic semi-naive evaluation over static base data this is
/// the set of recursive (intensional) predicates; for declarative
/// networking, where base tuples (links) change during execution, it is
/// every stored relation, which [`delta_rewrite_full`] provides.
pub fn delta_rewrite(program: &Program, dynamic: &BTreeSet<String>) -> Vec<DeltaRule> {
    let intensional = program.intensional();
    let mut out = Vec::new();
    for rule in &program.rules {
        if rule.is_fact() {
            continue;
        }
        let mut strand_no = 0;
        for (idx, literal) in rule.body.iter().enumerate() {
            let Literal::Atom(atom) = literal else {
                continue;
            };
            if !dynamic.contains(&atom.name) {
                continue;
            }
            strand_no += 1;
            // Recursive predicates that appear before the trigger join
            // against old tuples only (footnote 2 of the paper).
            let older_only = rule
                .body
                .iter()
                .enumerate()
                .take(idx)
                .filter_map(|(i, l)| match l {
                    Literal::Atom(a) if intensional.contains(&a.name) => Some(i),
                    _ => None,
                })
                .collect();
            // Which trigger columns a concrete head tuple pins down: the
            // columns whose variables the head mentions directly.
            let head_vars: BTreeSet<&str> =
                rule.head.args.iter().filter_map(Term::var_name).collect();
            let head_bound_trigger_cols: Vec<usize> = atom
                .args
                .iter()
                .enumerate()
                .filter_map(|(col, term)| match term {
                    Term::Var(v) if head_vars.contains(v.name.as_str()) => Some(col),
                    _ => None,
                })
                .collect();
            out.push(DeltaRule {
                rule: rule.clone(),
                trigger: idx,
                trigger_relation: atom.name.clone(),
                strand_id: format!("{}-{}", rule.label, strand_no),
                older_only,
                head_bound_trigger_cols,
            });
        }
    }
    out
}

/// Generate rule strands triggered by *every* body predicate, which is what
/// the distributed engine installs: in a dynamic network any stored
/// relation (including `link`) can receive updates at any time.
pub fn delta_rewrite_full(program: &Program) -> Vec<DeltaRule> {
    let mut all: BTreeSet<String> = program.intensional();
    all.extend(program.extensional());
    delta_rewrite(program, &all)
}

/// Generate strands triggered only by recursive (intensional) predicates —
/// the textbook semi-naive rewrite used for static base data.
pub fn delta_rewrite_recursive(program: &Program) -> Vec<DeltaRule> {
    delta_rewrite(program, &program.intensional())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::localize;
    use crate::parser::parse_program;

    const SP: &str = r#"
        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_cons(S, f_cons(D, nil)).
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            C := C1 + C2, P := f_cons(S, P2).
        sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
        sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).
    "#;

    #[test]
    fn recursive_rewrite_matches_textbook() {
        let p = parse_program(SP).unwrap();
        let strands = delta_rewrite_recursive(&p);
        // sp1: no recursive body predicate -> no strand.
        // sp2: one (path). sp3: one (path). sp4: two (spCost, path).
        assert_eq!(strands.len(), 4);
        let sp2: Vec<_> = strands.iter().filter(|s| s.rule.label == "sp2").collect();
        assert_eq!(sp2.len(), 1);
        assert_eq!(sp2[0].trigger_relation, "path");
        assert_eq!(sp2[0].strand_id, "sp2-1");
        assert!(sp2[0].older_only.is_empty());
    }

    #[test]
    fn full_rewrite_triggers_on_base_relations_too() {
        let p = parse_program(SP).unwrap();
        let strands = delta_rewrite_full(&p);
        // sp1: link. sp2: link + path. sp3: path. sp4: spCost + path.
        assert_eq!(strands.len(), 6);
        assert!(strands
            .iter()
            .any(|s| s.rule.label == "sp1" && s.trigger_relation == "link"));
        assert!(strands
            .iter()
            .any(|s| s.rule.label == "sp2" && s.trigger_relation == "link"));
    }

    #[test]
    fn older_only_marks_left_recursive_predicates() {
        // Non-linear rule: two recursive predicates.
        let p = parse_program(
            "t reach(@S,@D) :- reach(@S,@Z), reach2(@Z,@D). t2 reach2(@S,@D) :- reach(@S,@D).",
        )
        .unwrap();
        let strands = delta_rewrite_recursive(&p);
        let triggered_by_second: Vec<_> = strands
            .iter()
            .filter(|s| s.rule.label == "t" && s.trigger == 1)
            .collect();
        assert_eq!(triggered_by_second.len(), 1);
        assert_eq!(triggered_by_second[0].older_only, vec![0]);
        let triggered_by_first: Vec<_> = strands
            .iter()
            .filter(|s| s.rule.label == "t" && s.trigger == 0)
            .collect();
        assert!(triggered_by_first[0].older_only.is_empty());
    }

    #[test]
    fn localized_sp_produces_distributed_strands() {
        let p = localize(&parse_program(SP).unwrap()).unwrap();
        let strands = delta_rewrite_full(&p);
        // Figure 5 of the paper: the localized SP2 yields a strand for the
        // transfer rule (triggered by link) and strands for the join rule
        // (triggered by the reverse link, the transfer relation and path).
        assert!(strands.iter().any(|s| s.rule.label == "sp2a"));
        let sp2b: Vec<_> = strands.iter().filter(|s| s.rule.label == "sp2b").collect();
        assert_eq!(sp2b.len(), 3);
        let triggers: BTreeSet<_> = sp2b.iter().map(|s| s.trigger_relation.clone()).collect();
        assert!(triggers.contains("path_sp2_xd"));
        assert!(triggers.contains("path"));
        assert!(triggers.contains("link"));
    }

    #[test]
    fn head_bound_trigger_cols_pin_rederivation_probes() {
        let p = parse_program(SP).unwrap();
        let strands = delta_rewrite_full(&p);
        // sp2 triggered by link(@S,@Z,C1): the head path(@S,@D,@Z,P,C)
        // mentions S and Z — trigger columns 0 and 1 — but not C1.
        let sp2_link = strands
            .iter()
            .find(|s| s.rule.label == "sp2" && s.trigger_relation == "link")
            .unwrap();
        assert_eq!(sp2_link.head_bound_trigger_cols, vec![0, 1]);
        // sp4 triggered by spCost(@S,@D,C): every trigger column appears in
        // the head shortestPath(@S,@D,P,C).
        let sp4_spc = strands
            .iter()
            .find(|s| s.rule.label == "sp4" && s.trigger_relation == "spCost")
            .unwrap();
        assert_eq!(sp4_spc.head_bound_trigger_cols, vec![0, 1, 2]);
    }

    #[test]
    fn facts_produce_no_strands() {
        let p = parse_program("f link(@n0, @n1, 1). r reach(@S,@D) :- #link(@S,@D,C).").unwrap();
        let strands = delta_rewrite_full(&p);
        assert_eq!(strands.len(), 1);
        assert_eq!(strands[0].rule.label, "r");
    }

    #[test]
    fn strand_ids_are_unique() {
        let p = localize(&parse_program(SP).unwrap()).unwrap();
        let strands = delta_rewrite_full(&p);
        let ids: BTreeSet<_> = strands.iter().map(|s| s.strand_id.clone()).collect();
        assert_eq!(ids.len(), strands.len());
    }
}
