//! Predicate reordering (Section 5.1.2).
//!
//! The shortest-path recursion can be evaluated **bottom-up** (BU) — paths
//! grow from the destination backwards, the right-recursive form SP2 — or
//! **top-down** (TD) — paths grow from the source forwards, the
//! left-recursive form SP2-SD. The paper observes that the two differ only
//! in the order of the `#link` and `path` predicates in the recursive rule
//! body (plus, for the TD variant, accumulating the path at the destination
//! rather than the source).
//!
//! The general utility here reorders body literals so that either the link
//! literal or the recursive predicate comes first, which controls the join
//! order the planner uses and documents the BU↔TD relationship. The
//! complete TD program used in the experiments (with its relocated
//! accumulator relation `pathDst`) is provided by
//! [`crate::programs::shortest_path_source_routing`].

use crate::ast::{Literal, Program, Rule};

/// Join-order preference for a rule body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyOrder {
    /// Link literals first, then other predicates (right-recursive / BU).
    LinkFirst,
    /// Recursive/other predicates first, link literals last
    /// (left-recursive / TD).
    LinkLast,
}

/// Reorder a rule's body predicates according to `order`. Assignments and
/// filters keep their relative order and stay after all predicate atoms
/// (they can only be evaluated once their inputs are bound).
pub fn reorder_rule(rule: &Rule, order: BodyOrder) -> Rule {
    let mut links = Vec::new();
    let mut atoms = Vec::new();
    let mut constraints = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Atom(a) if a.link => links.push(lit.clone()),
            Literal::Atom(_) => atoms.push(lit.clone()),
            _ => constraints.push(lit.clone()),
        }
    }
    let mut body = Vec::with_capacity(rule.body.len());
    match order {
        BodyOrder::LinkFirst => {
            body.extend(links);
            body.extend(atoms);
        }
        BodyOrder::LinkLast => {
            body.extend(atoms);
            body.extend(links);
        }
    }
    body.extend(constraints);
    Rule {
        label: rule.label.clone(),
        head: rule.head.clone(),
        body,
    }
}

/// Reorder every rule in a program.
pub fn reorder_program(program: &Program, order: BodyOrder) -> Program {
    let mut out = program.clone();
    out.rules = out.rules.iter().map(|r| reorder_rule(r, order)).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SP2: &str = r#"
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            C := C1 + C2, P := f_cons(S, P2).
    "#;

    #[test]
    fn link_last_makes_rule_left_recursive() {
        let p = parse_program(SP2).unwrap();
        let td = reorder_rule(&p.rules[0], BodyOrder::LinkLast);
        let first = td.body_atoms().next().unwrap();
        assert_eq!(first.name, "path");
        assert!(!first.link);
        let second = td.body_atoms().nth(1).unwrap();
        assert!(second.link);
        // Constraints still trail the predicates.
        assert!(matches!(td.body[2], Literal::Assign(_)));
        assert!(matches!(td.body[3], Literal::Assign(_)));
    }

    #[test]
    fn link_first_restores_right_recursive_form() {
        let p = parse_program(SP2).unwrap();
        let td = reorder_rule(&p.rules[0], BodyOrder::LinkLast);
        let bu = reorder_rule(&td, BodyOrder::LinkFirst);
        assert_eq!(bu.body, p.rules[0].body);
    }

    #[test]
    fn reorder_is_idempotent() {
        let p = parse_program(SP2).unwrap();
        let once = reorder_rule(&p.rules[0], BodyOrder::LinkLast);
        let twice = reorder_rule(&once, BodyOrder::LinkLast);
        assert_eq!(once, twice);
    }

    #[test]
    fn program_level_reordering() {
        let p = parse_program(SP2).unwrap();
        let td = reorder_program(&p, BodyOrder::LinkLast);
        assert_eq!(td.rules.len(), 1);
        assert_eq!(td.rules[0].label, "sp2");
        assert!(!td.rules[0].body_atoms().next().unwrap().link);
    }

    #[test]
    fn rules_without_links_unchanged() {
        let p = parse_program("a p(@S, C) :- q(@S, C), C < 5.").unwrap();
        let r = reorder_rule(&p.rules[0], BodyOrder::LinkLast);
        assert_eq!(r, p.rules[0]);
    }
}
