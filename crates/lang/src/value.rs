//! Runtime values carried by NDlog tuples.
//!
//! NDlog fields hold network addresses (the value of location specifiers),
//! numbers, strings, booleans and lists (used for path vectors such as
//! `[a, b, d]` in the shortest-path query). Values need a total order and a
//! hash so they can serve as primary-key components and join keys; floating
//! point values are ordered with `f64::total_cmp`.

use ndlog_net::NodeAddr;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single NDlog field value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A network address (the type of location specifiers).
    Addr(NodeAddr),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float (costs, metrics).
    Float(f64),
    /// An interned string.
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A list of values, e.g. a path vector.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// The empty list (`nil` in the paper's syntax).
    pub fn nil() -> Value {
        Value::List(Arc::new(Vec::new()))
    }

    /// Build an address value.
    pub fn addr(a: impl Into<NodeAddr>) -> Value {
        Value::Addr(a.into())
    }

    /// The address inside, if this is an address.
    pub fn as_addr(&self) -> Option<NodeAddr> {
        match self {
            Value::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// Numeric view (ints coerce to float), if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer inside, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The list inside, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Whether this value is an address (address type safety checks).
    pub fn is_addr(&self) -> bool {
        matches!(self, Value::Addr(_))
    }

    /// A small integer describing the variant, used only to order values of
    /// different types consistently.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Addr(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // ints and floats compare numerically
            Value::Str(_) => 2,
            Value::Bool(_) => 3,
            Value::List(_) => 4,
        }
    }

    /// Approximate serialized size in bytes, used for message-size
    /// accounting in the simulator (the paper reports communication
    /// overhead in bytes).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Addr(_) => 4,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 2 + s.len(),
            Value::List(l) => 2 + l.iter().map(Value::wire_size).sum::<usize>(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Addr(a), Addr(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Addr(a) => {
                0u8.hash(state);
                a.hash(state);
            }
            // Ints and floats that are numerically equal must hash equally;
            // hash through the f64 bit pattern of the numeric value.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::List(l) => {
                4u8.hash(state);
                for v in l.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Addr(a) => write!(f, "{a}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<NodeAddr> for Value {
    fn from(a: NodeAddr) -> Self {
        Value::Addr(a)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::addr(1u32) < Value::addr(2u32));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::list(vec![Value::Int(1)]) < Value::list(vec![Value::Int(2)]));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn cross_type_ordering_is_total_and_consistent() {
        let vals = vec![
            Value::addr(0u32),
            Value::Int(5),
            Value::Float(1.5),
            Value::str("x"),
            Value::Bool(true),
            Value::nil(),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::addr(7u32).as_addr(), Some(NodeAddr(7)));
        assert_eq!(Value::Int(7).as_addr(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(1).as_int(), Some(1));
        assert!(Value::addr(0u32).is_addr());
        let l = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(l.as_list().unwrap().len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::addr(3u32).to_string(), "@n3");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(6.0).to_string(), "6.0");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::list(vec![Value::addr(0u32), Value::addr(1u32)]).to_string(),
            "[@n0, @n1]"
        );
        assert_eq!(Value::nil().to_string(), "[]");
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::addr(1u32).wire_size(), 4);
        assert_eq!(Value::Int(1).wire_size(), 8);
        assert_eq!(Value::str("abc").wire_size(), 5);
        assert_eq!(
            Value::list(vec![Value::addr(1u32), Value::addr(2u32)]).wire_size(),
            10
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(NodeAddr(9)), Value::addr(9u32));
    }
}
