//! Error types for the NDlog language frontend.

use std::fmt;

/// An error produced while parsing NDlog text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// 1-based column where the error occurred.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Construct a parse error.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    /// The offending source line with a caret pointing at the error column,
    /// or `None` when the recorded position falls outside `src` (e.g. an
    /// end-of-input error one past the last line).
    ///
    /// ```text
    ///   path(@S, @D :- link(@S, @D).
    ///               ^
    /// ```
    pub fn snippet(&self, src: &str) -> Option<String> {
        let line = src.lines().nth(self.line.checked_sub(1)?)?;
        // Columns are 1-based character offsets; pad with spaces, preserving
        // tabs so the caret stays aligned under tab-indented source.
        let mut pad = String::new();
        for (idx, c) in line.chars().enumerate() {
            if idx + 1 >= self.column {
                break;
            }
            pad.push(if c == '\t' { '\t' } else { ' ' });
        }
        // A column one past the end of the line (end-of-line errors) still
        // gets a caret; anything further out is not anchored to this line.
        if self.column > line.chars().count() + 1 {
            return None;
        }
        Some(format!("  {line}\n  {pad}^"))
    }

    /// Full diagnostic: the `line:column: message` header plus the caret
    /// snippet when the position maps into `src`. This is what interactive
    /// front ends (REPL, service) show for a bad command.
    pub fn render(&self, src: &str) -> String {
        match self.snippet(src) {
            Some(snippet) => format!("{self}\n{snippet}"),
            None => self.to_string(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A violation of the NDlog syntactic constraints (Definition 6 in the
/// paper), reported per rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A predicate's first attribute is not a location specifier
    /// (constraint 1, *location specificity*).
    MissingLocationSpecifier { rule: String, predicate: String },
    /// A variable is used both as an address and as a non-address
    /// (constraint 2, *address type safety*).
    AddressTypeViolation { rule: String, variable: String },
    /// A link relation appears in the head of a rule with a non-empty body
    /// (constraint 3, *stored link relations*).
    DerivedLinkRelation { rule: String, predicate: String },
    /// A non-local rule is not link-restricted (constraint 4): either it has
    /// no link literal, more than one, or some literal's location specifier
    /// is not an endpoint of the link literal.
    NotLinkRestricted { rule: String, reason: String },
    /// A rule head or body predicate has no arguments at all.
    EmptyPredicate { rule: String, predicate: String },
    /// The same predicate is used with inconsistent arities.
    ArityMismatch {
        predicate: String,
        expected: usize,
        found: usize,
        rule: String,
    },
    /// A variable in the head does not appear in the body (unsafe rule).
    UnboundHeadVariable { rule: String, variable: String },
    /// An aggregate appears somewhere other than a head argument.
    MisplacedAggregate { rule: String },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::MissingLocationSpecifier { rule, predicate } => write!(
                f,
                "rule {rule}: predicate {predicate} does not start with a location specifier"
            ),
            ValidationError::AddressTypeViolation { rule, variable } => write!(
                f,
                "rule {rule}: variable {variable} is used both as an address and as a non-address"
            ),
            ValidationError::DerivedLinkRelation { rule, predicate } => write!(
                f,
                "rule {rule}: link relation {predicate} may not be derived (it must be stored)"
            ),
            ValidationError::NotLinkRestricted { rule, reason } => {
                write!(f, "rule {rule}: not link-restricted: {reason}")
            }
            ValidationError::EmptyPredicate { rule, predicate } => {
                write!(f, "rule {rule}: predicate {predicate} has no arguments")
            }
            ValidationError::ArityMismatch {
                predicate,
                expected,
                found,
                rule,
            } => write!(
                f,
                "rule {rule}: predicate {predicate} used with arity {found}, expected {expected}"
            ),
            ValidationError::UnboundHeadVariable { rule, variable } => write!(
                f,
                "rule {rule}: head variable {variable} is not bound in the body"
            ),
            ValidationError::MisplacedAggregate { rule } => {
                write!(
                    f,
                    "rule {rule}: aggregates may only appear in head arguments"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Any error from the language frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Parsing failed.
    Parse(ParseError),
    /// The program violates the NDlog constraints.
    Validation(Vec<ValidationError>),
    /// A rewrite step could not be applied.
    Rewrite(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => write!(f, "{e}"),
            LangError::Validation(errors) => {
                writeln!(f, "program violates NDlog constraints:")?;
                for e in errors {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            LangError::Rewrite(msg) => write!(f, "rewrite error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = ParseError::new(3, 7, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
    }

    #[test]
    fn snippet_points_at_offending_column() {
        let src = "good line\n+path(@S @D).\n";
        let e = ParseError::new(2, 10, "expected `,` or `)`");
        assert_eq!(e.snippet(src).unwrap(), "  +path(@S @D).\n           ^");
        let rendered = e.render(src);
        assert!(rendered.starts_with("parse error at 2:10:"));
        assert!(rendered.ends_with("           ^"));
    }

    #[test]
    fn snippet_allows_end_of_line_column() {
        let src = "+edge(1,2)";
        let e = ParseError::new(1, 11, "expected `.`");
        assert_eq!(e.snippet(src).unwrap(), "  +edge(1,2)\n            ^");
    }

    #[test]
    fn snippet_preserves_tab_alignment() {
        let src = "\t+edge(,).";
        let e = ParseError::new(1, 8, "expected a term");
        assert_eq!(e.snippet(src).unwrap(), "  \t+edge(,).\n  \t      ^");
    }

    #[test]
    fn snippet_out_of_range_is_none() {
        let e = ParseError::new(9, 1, "eof");
        assert_eq!(e.snippet("one line"), None);
        assert_eq!(e.render("one line"), e.to_string());
        let far = ParseError::new(1, 40, "way out");
        assert_eq!(far.snippet("one line"), None);
    }

    #[test]
    fn display_validation_errors() {
        let e = ValidationError::NotLinkRestricted {
            rule: "sp2".into(),
            reason: "two link literals".into(),
        };
        assert!(e.to_string().contains("sp2"));
        assert!(e.to_string().contains("two link literals"));

        let all = LangError::Validation(vec![e]);
        assert!(all.to_string().contains("violates NDlog constraints"));
    }

    #[test]
    fn parse_error_converts_to_lang_error() {
        let e: LangError = ParseError::new(1, 1, "x").into();
        assert!(matches!(e, LangError::Parse(_)));
    }
}
