//! Aggregate-selection inference (Section 5.1.1).
//!
//! A naive execution of the shortest-path query derives *all* paths, even
//! those that can never contribute to a shortest path. When a rule like
//!
//! ```text
//! sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
//! ```
//!
//! computes a monotonic aggregate over a derived relation, the running
//! aggregate value can be used as a *selection* on the source relation:
//! a new `path` tuple whose cost is not better than the current minimum for
//! its `(S, D)` group can neither change `spCost` nor contribute a shorter
//! path downstream, so it can be pruned before storage and, crucially,
//! before being propagated over the network.
//!
//! This module infers such opportunities from the program text; the
//! distributed engine in `ndlog-core` enforces them (including the
//! *periodic* variant that buffers improvements and flushes them on a
//! timer).

use crate::ast::{AggFunc, Program, Term};
use serde::{Deserialize, Serialize};

/// An inferred aggregate selection: tuples of `relation` may be pruned when
/// they are not better than the current `func` value of `value_col` within
/// their `group_cols` group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggSelectionSpec {
    /// The relation whose tuples can be pruned (e.g. `path`).
    pub relation: String,
    /// The aggregate relation that motivated the selection (e.g. `spCost`).
    pub aggregate_relation: String,
    /// Column indexes of `relation` that form the aggregation group.
    pub group_cols: Vec<usize>,
    /// Column index of `relation` holding the aggregated value.
    pub value_col: usize,
    /// The aggregate function (only [`AggFunc::Min`] / [`AggFunc::Max`]
    /// selections are monotonic and therefore safe to prune on).
    pub func: AggFunc,
}

impl AggSelectionSpec {
    /// Whether candidate value `candidate` is strictly better than the
    /// current aggregate `current` under this selection's function.
    pub fn is_better(&self, candidate: f64, current: f64) -> bool {
        match self.func {
            AggFunc::Min => candidate < current,
            AggFunc::Max => candidate > current,
            // Non-monotonic aggregates never allow pruning.
            AggFunc::Count | AggFunc::Sum => true,
        }
    }
}

/// Infer aggregate selections from a program.
///
/// A selection is inferred from every rule of the shape
/// `agg(@G1, ..., Gk, FUNC<V>) :- ..., src(...), ...` where:
/// * the aggregate function is monotonic (`min` or `max`),
/// * exactly one body atom (`src`) contains the aggregated variable,
/// * every group variable also appears as an argument of that atom.
///
/// Rules whose aggregate input is assembled from several atoms (so no
/// single relation can be pruned) yield no selection. Extra body atoms that
/// merely filter groups (e.g. the `magicDst(@D)` literal of rule SP3-SD)
/// do not prevent the selection.
///
/// The pruning the engine performs on the source relation is safe when the
/// source relation's non-optimal tuples are not needed elsewhere — true for
/// the paper's path queries, where only the cheapest path per (source,
/// destination) group feeds `shortestPath`. The engine applies selections
/// only when explicitly enabled, mirroring the paper's treatment of this as
/// an optimization that is switched on per query.
pub fn infer_aggregate_selections(program: &Program) -> Vec<AggSelectionSpec> {
    let mut out = Vec::new();
    for rule in &program.rules {
        if !rule.head.has_aggregate() {
            continue;
        }
        let body_atoms: Vec<_> = rule.body_atoms().collect();
        // Find the aggregated variable and the unique body atom providing it.
        let Some(agg_var) = rule.head.args.iter().find_map(|t| match t {
            Term::Agg(a) => Some(a.var.clone()),
            _ => None,
        }) else {
            continue;
        };
        let providers: Vec<_> = body_atoms
            .iter()
            .filter(|a| {
                a.args
                    .iter()
                    .any(|t| t.var_name() == Some(agg_var.as_str()))
            })
            .collect();
        if providers.len() != 1 {
            continue;
        }
        let src = *providers[0];
        // Map variable name -> first column position in the source atom.
        let col_of = |var: &str| -> Option<usize> {
            src.args.iter().position(|t| t.var_name() == Some(var))
        };
        let mut group_cols = Vec::new();
        let mut value = None;
        let mut ok = true;
        for term in &rule.head.args {
            match term {
                Term::Agg(a) => {
                    if !a.func.is_selection_monotonic() {
                        ok = false;
                        break;
                    }
                    match col_of(&a.var) {
                        Some(c) => value = Some((c, a.func)),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                Term::Var(v) => match col_of(&v.name) {
                    Some(c) => group_cols.push(c),
                    None => {
                        ok = false;
                        break;
                    }
                },
                Term::Const(_) => {}
            }
        }
        if !ok {
            continue;
        }
        if let Some((value_col, func)) = value {
            out.push(AggSelectionSpec {
                relation: src.name.clone(),
                aggregate_relation: rule.head.name.clone(),
                group_cols,
                value_col,
                func,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn infers_min_selection_from_shortest_path() {
        let p = parse_program("sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).").unwrap();
        let sels = infer_aggregate_selections(&p);
        assert_eq!(sels.len(), 1);
        let s = &sels[0];
        assert_eq!(s.relation, "path");
        assert_eq!(s.aggregate_relation, "spCost");
        assert_eq!(s.group_cols, vec![0, 1]);
        assert_eq!(s.value_col, 4);
        assert_eq!(s.func, AggFunc::Min);
    }

    #[test]
    fn max_selection_inferred() {
        let p = parse_program("m best(@S, max<B>) :- bw(@S, @D, B).").unwrap();
        let sels = infer_aggregate_selections(&p);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].func, AggFunc::Max);
        assert_eq!(sels[0].group_cols, vec![0]);
        assert_eq!(sels[0].value_col, 2);
    }

    #[test]
    fn count_aggregate_not_a_selection() {
        let p = parse_program("c deg(@S, count<D>) :- link2(@S, @D).").unwrap();
        assert!(infer_aggregate_selections(&p).is_empty());
    }

    #[test]
    fn ambiguous_aggregate_provider_is_skipped() {
        // Both body atoms carry C, so no single relation can be pruned.
        let p = parse_program("x agg(@S, min<C>) :- p(@S, C), q(@S, C).").unwrap();
        assert!(infer_aggregate_selections(&p).is_empty());
    }

    #[test]
    fn extra_filter_atoms_do_not_block_inference() {
        // The paper's SP3-SD shape: a magic filter plus the aggregate source.
        let p = parse_program("sd3 spCost(@D,@S,min<C>) :- magicDst(@D), pathDst(@D,@S,@Z,P,C).")
            .unwrap();
        let sels = infer_aggregate_selections(&p);
        assert_eq!(sels.len(), 1);
        assert_eq!(sels[0].relation, "pathDst");
        assert_eq!(sels[0].group_cols, vec![0, 1]);
        assert_eq!(sels[0].value_col, 4);
    }

    #[test]
    fn missing_variable_in_body_skips() {
        // Group variable D does not appear in the body atom.
        let p = parse_program("x agg(@S, D, min<C>) :- p(@S, C), D := 1.").unwrap();
        assert!(infer_aggregate_selections(&p).is_empty());
    }

    #[test]
    fn is_better_semantics() {
        let min = AggSelectionSpec {
            relation: "p".into(),
            aggregate_relation: "a".into(),
            group_cols: vec![0],
            value_col: 1,
            func: AggFunc::Min,
        };
        assert!(min.is_better(1.0, 2.0));
        assert!(!min.is_better(2.0, 2.0));
        let max = AggSelectionSpec {
            func: AggFunc::Max,
            ..min.clone()
        };
        assert!(max.is_better(3.0, 2.0));
        assert!(!max.is_better(2.0, 2.0));
    }

    #[test]
    fn rules_without_aggregates_ignored() {
        let p = parse_program("a p(@S, C) :- q(@S, C).").unwrap();
        assert!(infer_aggregate_selections(&p).is_empty());
    }
}
