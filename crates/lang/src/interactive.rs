//! The interactive command dialect spoken by the `ndlog` shell and the
//! line-protocol network service.
//!
//! On top of the base program syntax ([`crate::parser`]) the interactive
//! dialect adds update statements, queries and meta commands, one command
//! per statement:
//!
//! ```text
//! +link(@n0, @n1, 5.0).                 % insert one ground fact
//! -link(@n0, @n1, 5.0).                 % delete one ground fact
//! +link[(@n0,@n1,1.0), (@n1,@n0,1.0)].  % bulk insert (one atomic batch)
//! -link[(@n0,@n1,1.0), (@n1,@n0,1.0)].  % bulk delete
//! ?- shortestPath(@n0, @D, P, C).       % query the current fixpoint
//! sp1 path(@S,@D,C) :- #link(@S,@D,C).  % add a rule (also with `+` prefix)
//! materialize(link, keys(1,2)).         % declare a table
//! .load "examples/shortest_path.ndl"    % load a program file
//! .subscribe shortestPath               % live deltas for a relation
//! .subscribe shortestPath(@n0, _, _, _) % ... filtered on bound columns
//! .unsubscribe 1                        % cancel by subscription id
//! .rel  .rules  .dump  .help  .quit     % introspection & session control
//! ```
//!
//! Queries are single ground-or-open atoms matched against the stored
//! fixpoint; update facts must be ground (constants only). Parse errors
//! carry positions and render caret snippets via
//! [`ParseError::render`](crate::error::ParseError::render).

use crate::ast::{Atom, Rule, TableDecl, Term};
use crate::error::ParseError;
use crate::lexer::{tokenize, TokenKind};
use crate::parser::Parser;
use crate::value::Value;
use std::fmt;

/// Direction of an update statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+fact.`
    Insert,
    /// `-fact.`
    Delete,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Op::Insert => "+",
            Op::Delete => "-",
        })
    }
}

/// One update statement: a signed batch of ground tuples for one relation.
/// A bulk statement (`+rel[(..), (..)].`) carries several tuples that the
/// session layer applies as one atomic batch (one epoch).
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Insert or delete.
    pub op: Op,
    /// Target relation.
    pub relation: String,
    /// Ground tuples, one `Vec<Value>` per fact.
    pub tuples: Vec<Vec<Value>>,
}

/// A column filter for `.subscribe rel(pattern)`: `Some(v)` binds the
/// column to a constant, `None` (written `_` or any variable) matches any
/// value.
pub type SubscribeFilter = Vec<Option<Value>>;

/// Target of `.unsubscribe`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsubscribeTarget {
    /// `.unsubscribe 3` — by the id returned from `.subscribe`.
    Id(u64),
    /// `.unsubscribe path` — every subscription on the relation.
    Relation(String),
}

/// Meta commands (dot-prefixed, not part of the stored program).
#[derive(Debug, Clone, PartialEq)]
pub enum MetaCommand {
    /// `.load "path"` — parse a program file and merge it into the session.
    Load(String),
    /// `.subscribe rel` / `.subscribe rel(pattern)`.
    Subscribe {
        /// Relation to watch.
        relation: String,
        /// Optional bound-column pattern (length = relation arity).
        filter: Option<SubscribeFilter>,
    },
    /// `.unsubscribe <id|relation>`.
    Unsubscribe(UnsubscribeTarget),
    /// `.rel` — list relations with tuple counts.
    Relations,
    /// `.rules` — list the rules of the loaded program.
    Rules,
    /// `.dump` — every stored tuple with its derivation count (the bitwise
    /// store fingerprint used by the consistency tests).
    Dump,
    /// `.help`.
    Help,
    /// `.quit` / `.exit`.
    Quit,
}

/// A parsed interactive command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `+fact.` / `-fact.` / bulk updates.
    Update(Update),
    /// `?- atom.` (and `query atom.`).
    Query(Atom),
    /// A rule statement (optionally `+`-prefixed).
    Rule(Rule),
    /// `materialize(...).`
    Table(TableDecl),
    /// Dot-prefixed meta command.
    Meta(MetaCommand),
}

/// Parse exactly one interactive command. Returns `Ok(None)` for blank or
/// comment-only input; trailing tokens after the first command are an error
/// (use [`parse_session`] for multi-statement scripts).
pub fn parse_command(src: &str) -> Result<Option<Command>, ParseError> {
    let mut p = Parser::new(tokenize(src)?);
    let cmd = parse_next(&mut p)?;
    if cmd.is_some() && p.peek_kind() != &TokenKind::Eof {
        return Err(p.error(format!(
            "unexpected {} after the command",
            p.peek_kind().describe()
        )));
    }
    Ok(cmd)
}

/// Parse a sequence of interactive commands (a scripted session).
pub fn parse_session(src: &str) -> Result<Vec<Command>, ParseError> {
    let mut p = Parser::new(tokenize(src)?);
    let mut commands = Vec::new();
    while let Some(cmd) = parse_next(&mut p)? {
        commands.push(cmd);
    }
    Ok(commands)
}

fn parse_next(p: &mut Parser) -> Result<Option<Command>, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Eof => Ok(None),
        TokenKind::Plus => {
            p.advance();
            parse_signed(p, Op::Insert).map(Some)
        }
        TokenKind::Minus => {
            p.advance();
            parse_signed(p, Op::Delete).map(Some)
        }
        TokenKind::QuestionDash => {
            p.advance();
            let atom = p.parse_atom()?;
            p.expect(&TokenKind::Period)?;
            Ok(Some(Command::Query(atom)))
        }
        TokenKind::Period => {
            p.advance();
            parse_meta(p).map(Some)
        }
        TokenKind::Ident(id) if id == "materialize" => {
            Ok(Some(Command::Table(p.parse_materialize()?)))
        }
        TokenKind::Ident(id) if id == "query" && matches!(p.peek_ahead(1), TokenKind::Ident(_)) => {
            p.advance();
            let atom = p.parse_atom()?;
            p.expect(&TokenKind::Period)?;
            Ok(Some(Command::Query(atom)))
        }
        _ => {
            // A rule or a bare fact; bare facts are insert updates.
            let (line, column) = {
                let t = p.peek();
                (t.line, t.column)
            };
            // Remember whether the label is written out: unlabelled rules
            // keep an empty label so the session layer can pick one that
            // is fresh across the whole session, not just this statement.
            let labelled = matches!(
                (p.peek_kind(), p.peek_ahead(1)),
                (TokenKind::Ident(_), TokenKind::Ident(_)) | (TokenKind::Ident(_), TokenKind::Hash)
            );
            let mut rule = p.parse_rule_stmt()?;
            if rule.is_fact() {
                let tuple = ground_args(&rule.head, line, column)?;
                Ok(Some(Command::Update(Update {
                    op: Op::Insert,
                    relation: rule.head.name,
                    tuples: vec![tuple],
                })))
            } else {
                if !labelled {
                    rule.label = String::new();
                }
                Ok(Some(Command::Rule(rule)))
            }
        }
    }
}

/// After a leading `+`/`-`: either an update statement or (for `+` only) a
/// rule addition `+head :- body.`.
fn parse_signed(p: &mut Parser, op: Op) -> Result<Command, ParseError> {
    let (line, column) = {
        let t = p.peek();
        (t.line, t.column)
    };
    let relation = match p.peek_kind().clone() {
        TokenKind::Ident(name) if p.peek_ahead(1) == &TokenKind::LBracket => {
            p.advance();
            name
        }
        _ => {
            let atom = p.parse_atom()?;
            if p.peek_kind() == &TokenKind::ColonDash {
                if op == Op::Delete {
                    return Err(p.error("rules cannot be retracted with `-` (use `+` to add)"));
                }
                p.advance();
                let mut body = Vec::new();
                loop {
                    body.push(p.parse_literal()?);
                    if !p.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                p.expect(&TokenKind::Period)?;
                return Ok(Command::Rule(Rule {
                    label: String::new(), // relabelled by the session layer
                    head: atom,
                    body,
                }));
            }
            p.expect(&TokenKind::Period)?;
            let tuple = ground_args(&atom, line, column)?;
            return Ok(Command::Update(Update {
                op,
                relation: atom.name,
                tuples: vec![tuple],
            }));
        }
    };
    // Bulk form: rel[(t1), (t2), ...].
    p.expect(&TokenKind::LBracket)?;
    let mut tuples = Vec::new();
    loop {
        p.expect(&TokenKind::LParen)?;
        let mut tuple = Vec::new();
        if p.peek_kind() != &TokenKind::RParen {
            loop {
                let (tl, tc) = {
                    let t = p.peek();
                    (t.line, t.column)
                };
                match p.parse_term()? {
                    Term::Const(v) => tuple.push(v),
                    other => {
                        return Err(ParseError::new(
                            tl,
                            tc,
                            format!("update facts must be ground, found `{other}`"),
                        ))
                    }
                }
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        p.expect(&TokenKind::RParen)?;
        tuples.push(tuple);
        if !p.eat(&TokenKind::Comma) {
            break;
        }
    }
    p.expect(&TokenKind::RBracket)?;
    p.expect(&TokenKind::Period)?;
    Ok(Command::Update(Update {
        op,
        relation,
        tuples,
    }))
}

fn parse_meta(p: &mut Parser) -> Result<Command, ParseError> {
    let name = match p.peek_kind().clone() {
        TokenKind::Ident(s) => {
            p.advance();
            s
        }
        other => {
            return Err(p.error(format!(
                "expected a meta command name after `.`, found {}",
                other.describe()
            )))
        }
    };
    let meta = match name.as_str() {
        "load" => match p.peek_kind().clone() {
            TokenKind::Str(path) => {
                p.advance();
                MetaCommand::Load(path)
            }
            other => {
                return Err(p.error(format!(
                    "`.load` expects a quoted file path, found {}",
                    other.describe()
                )))
            }
        },
        "subscribe" => {
            let relation = match p.peek_kind().clone() {
                TokenKind::Ident(s) => {
                    p.advance();
                    s
                }
                other => {
                    return Err(p.error(format!(
                        "`.subscribe` expects a relation name, found {}",
                        other.describe()
                    )))
                }
            };
            let filter = if p.eat(&TokenKind::LParen) {
                let mut pattern = Vec::new();
                if p.peek_kind() != &TokenKind::RParen {
                    loop {
                        match p.peek_kind().clone() {
                            TokenKind::Var(_) | TokenKind::AtVar(_) => {
                                p.advance();
                                pattern.push(None);
                            }
                            _ => {
                                let (tl, tc) = {
                                    let t = p.peek();
                                    (t.line, t.column)
                                };
                                match p.parse_term()? {
                                    Term::Const(v) => pattern.push(Some(v)),
                                    other => {
                                        return Err(ParseError::new(
                                            tl,
                                            tc,
                                            format!(
                                                "subscribe patterns take constants or `_`, \
                                                 found `{other}`"
                                            ),
                                        ))
                                    }
                                }
                            }
                        }
                        if !p.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                p.expect(&TokenKind::RParen)?;
                Some(pattern)
            } else {
                None
            };
            MetaCommand::Subscribe { relation, filter }
        }
        "unsubscribe" => match p.peek_kind().clone() {
            TokenKind::Int(id) if id >= 0 => {
                p.advance();
                MetaCommand::Unsubscribe(UnsubscribeTarget::Id(id as u64))
            }
            TokenKind::Ident(rel) => {
                p.advance();
                MetaCommand::Unsubscribe(UnsubscribeTarget::Relation(rel))
            }
            other => {
                return Err(p.error(format!(
                    "`.unsubscribe` expects a subscription id or relation name, found {}",
                    other.describe()
                )))
            }
        },
        "rel" | "relations" => MetaCommand::Relations,
        "rule" | "rules" => MetaCommand::Rules,
        "dump" => MetaCommand::Dump,
        "help" => MetaCommand::Help,
        "quit" | "exit" => MetaCommand::Quit,
        other => return Err(p.error(format!("unknown meta command `.{other}` (try `.help`)"))),
    };
    // Meta commands need no terminator, but tolerate a trailing period.
    p.eat(&TokenKind::Period);
    Ok(Command::Meta(meta))
}

fn ground_args(atom: &Atom, line: usize, column: usize) -> Result<Vec<Value>, ParseError> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(v) => Ok(v.clone()),
            other => Err(ParseError::new(
                line,
                column,
                format!("update facts must be ground, found `{other}`"),
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_net::NodeAddr;

    fn one(src: &str) -> Command {
        parse_command(src).unwrap().unwrap()
    }

    #[test]
    fn insert_and_delete_facts() {
        let Command::Update(u) = one("+link(@n0, @n1, 5.0).") else {
            panic!()
        };
        assert_eq!(u.op, Op::Insert);
        assert_eq!(u.relation, "link");
        assert_eq!(
            u.tuples,
            vec![vec![
                Value::Addr(NodeAddr(0)),
                Value::Addr(NodeAddr(1)),
                Value::Float(5.0)
            ]]
        );

        let Command::Update(u) = one("-edge(1, 2).") else {
            panic!()
        };
        assert_eq!(u.op, Op::Delete);
        assert_eq!(u.tuples, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn bare_fact_is_insert() {
        let Command::Update(u) = one("link(@n0, @n1, 2).") else {
            panic!()
        };
        assert_eq!(u.op, Op::Insert);
        assert_eq!(u.relation, "link");
    }

    #[test]
    fn bulk_updates() {
        let Command::Update(u) = one("+edge[(1,2), (3,4), (5,6)].") else {
            panic!()
        };
        assert_eq!(u.op, Op::Insert);
        assert_eq!(u.relation, "edge");
        assert_eq!(u.tuples.len(), 3);
        assert_eq!(u.tuples[2], vec![Value::Int(5), Value::Int(6)]);

        let Command::Update(u) = one("-edge[(1,2)].") else {
            panic!()
        };
        assert_eq!(u.op, Op::Delete);
        assert_eq!(u.tuples.len(), 1);
    }

    #[test]
    fn updates_must_be_ground() {
        let err = parse_command("+link(@S, @D, 5).").unwrap_err();
        assert!(err.message.contains("ground"), "{}", err.message);
        assert_eq!((err.line, err.column), (1, 2));
        assert!(parse_command("+edge[(X, 2)].").is_err());
    }

    #[test]
    fn queries() {
        let Command::Query(atom) = one("?- shortestPath(@n0, @D, P, C).") else {
            panic!()
        };
        assert_eq!(atom.name, "shortestPath");
        assert_eq!(atom.arity(), 4);
        // The program-dialect spelling works too.
        let Command::Query(atom) = one("query path(@S, @D).") else {
            panic!()
        };
        assert_eq!(atom.name, "path");
    }

    #[test]
    fn rules_plain_and_plus_prefixed() {
        let Command::Rule(r) = one("sp1 path(@S,@D,C) :- #link(@S,@D,C).") else {
            panic!()
        };
        assert_eq!(r.label, "sp1");
        assert_eq!(r.head.name, "path");

        let Command::Rule(r) = one("+path(@S,@D,C) :- #link(@S,@D,C).") else {
            panic!()
        };
        assert!(r.label.is_empty());
        assert_eq!(r.body.len(), 1);

        assert!(parse_command("-path(@S,@D,C) :- #link(@S,@D,C).").is_err());
    }

    #[test]
    fn table_declarations() {
        let Command::Table(t) = one("materialize(link, keys(1,2), ttl(60)).") else {
            panic!()
        };
        assert_eq!(t.name, "link");
        assert_eq!(t.key_columns, vec![0, 1]);
    }

    #[test]
    fn meta_commands() {
        assert_eq!(
            one(".load \"examples/sp.ndl\""),
            Command::Meta(MetaCommand::Load("examples/sp.ndl".into()))
        );
        assert_eq!(one(".rel"), Command::Meta(MetaCommand::Relations));
        assert_eq!(one(".rules"), Command::Meta(MetaCommand::Rules));
        assert_eq!(one(".dump"), Command::Meta(MetaCommand::Dump));
        assert_eq!(one(".help"), Command::Meta(MetaCommand::Help));
        assert_eq!(one(".quit"), Command::Meta(MetaCommand::Quit));
        assert_eq!(one(".exit."), Command::Meta(MetaCommand::Quit));
        assert_eq!(
            one(".unsubscribe 3"),
            Command::Meta(MetaCommand::Unsubscribe(UnsubscribeTarget::Id(3)))
        );
        assert_eq!(
            one(".unsubscribe path"),
            Command::Meta(MetaCommand::Unsubscribe(UnsubscribeTarget::Relation(
                "path".into()
            )))
        );
        let err = parse_command(".bogus").unwrap_err();
        assert!(err.message.contains("unknown meta command"));
    }

    #[test]
    fn subscribe_with_and_without_filter() {
        assert_eq!(
            one(".subscribe shortestPath"),
            Command::Meta(MetaCommand::Subscribe {
                relation: "shortestPath".into(),
                filter: None
            })
        );
        let Command::Meta(MetaCommand::Subscribe { relation, filter }) =
            one(".subscribe shortestPath(@n0, _, _, C)")
        else {
            panic!()
        };
        assert_eq!(relation, "shortestPath");
        assert_eq!(
            filter,
            Some(vec![Some(Value::Addr(NodeAddr(0))), None, None, None])
        );
        assert!(parse_command(".subscribe p(q(1))").is_err());
    }

    #[test]
    fn sessions_and_blank_input() {
        assert_eq!(parse_command("  % just a comment\n").unwrap(), None);
        let cmds = parse_session(
            "materialize(edge, keys(1,2)).\n\
             +edge[(1,2), (2,3)].\n\
             reach(A,B) :- edge(A,B).\n\
             ?- reach(A,B).\n\
             .subscribe reach\n\
             -edge(1,2).\n\
             .quit",
        )
        .unwrap();
        assert_eq!(cmds.len(), 7);
        assert!(matches!(cmds[0], Command::Table(_)));
        assert!(matches!(cmds[1], Command::Update(_)));
        assert!(matches!(cmds[2], Command::Rule(_)));
        assert!(matches!(cmds[3], Command::Query(_)));
        assert!(matches!(cmds[6], Command::Meta(MetaCommand::Quit)));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse_command("+edge(1,2). extra").unwrap_err();
        assert!(err.message.contains("after the command"));
    }

    #[test]
    fn errors_render_caret_snippets() {
        let src = "+link(@n0 @n1).";
        let err = parse_command(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains('^'), "{rendered}");
        assert!(rendered.contains("+link(@n0 @n1)."));
    }
}
