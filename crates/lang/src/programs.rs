//! Canonical NDlog programs from the paper, as reusable builders.
//!
//! Every builder takes a `suffix` so multiple instances of the same query
//! (e.g. the four metric variants of Figure 7, or concurrent queries in the
//! message-sharing experiment) can coexist in one engine without their
//! relations colliding: relation `path` becomes `path_<suffix>` and so on.
//! The `link_<suffix>` relation is the query's input; the engine populates
//! it from the overlay with the appropriate metric as the cost column.

use crate::ast::Program;
use crate::magic::MagicBinding;
use crate::optimizer::{optimize, MagicSpec, Pipeline};
use crate::parser::parse_program;
use crate::reorder::BodyOrder;

/// Relation names used by a shortest-path query instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathRelations {
    /// The input link relation (`link_<suffix>`).
    pub link: String,
    /// The derived path relation.
    pub path: String,
    /// The destination-accumulated path relation (source-routing variant).
    pub path_dst: String,
    /// The per-(source, destination) minimum cost relation.
    pub sp_cost: String,
    /// The final shortest-path relation.
    pub shortest_path: String,
    /// The magic destination table (only used by the magic variants).
    pub magic_dst: String,
    /// The magic source table (only used by the source-routing variant).
    pub magic_src: String,
}

impl ShortestPathRelations {
    /// Relation names for a given suffix.
    pub fn new(suffix: &str) -> Self {
        let s = |base: &str| {
            if suffix.is_empty() {
                base.to_string()
            } else {
                format!("{base}_{suffix}")
            }
        };
        ShortestPathRelations {
            link: s("link"),
            path: s("path"),
            path_dst: s("pathDst"),
            sp_cost: s("spCost"),
            shortest_path: s("shortestPath"),
            magic_dst: s("magicDst"),
            magic_src: s("magicSrc"),
        }
    }
}

/// The all-pairs shortest-path query of Figure 1 (rules SP1–SP4), with the
/// standard cycle-avoidance filter on the recursive rule. This is the
/// bottom-up (right-recursive) form: paths accumulate at the *source* and
/// grow towards the destination by following links backwards.
pub fn shortest_path(suffix: &str) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let src = format!(
        r#"
        materialize({link}, keys(1,2)).
        materialize({path}, keys(1,2,4)).
        materialize({spc}, keys(1,2)).
        materialize({sp}, keys(1,2)).

        sp1 {path}(@S,@D,@D,P,C) :- #{link}(@S,@D,C),
            P := f_cons(S, f_cons(D, nil)).
        sp2 {path}(@S,@D,@Z,P,C) :- #{link}(@S,@Z,C1), {path}(@Z,@D,@Z2,P2,C2),
            f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).
        sp3 {spc}(@S,@D,min<C>) :- {path}(@S,@D,@Z,P,C).
        sp4 {sp}(@S,@D,P,C) :- {spc}(@S,@D,C), {path}(@S,@D,@Z,P,C).

        query {sp}(@S,@D,P,C).
        "#,
        link = r.link,
        path = r.path,
        spc = r.sp_cost,
        sp = r.shortest_path,
    );
    parse_program(&src).expect("shortest_path program is well-formed")
}

/// The optimizer pipeline that derives the destination-constrained
/// variant from [`shortest_path`]: one magic-sets rewrite binding the
/// destination argument of `path`'s base rules.
pub fn magic_dst_pipeline(suffix: &str) -> Pipeline {
    let r = ShortestPathRelations::new(suffix);
    Pipeline::new(
        vec![MagicSpec::new(
            r.path,
            r.magic_dst,
            MagicBinding::HeadArg(1),
        )],
        None,
    )
}

/// The destination-constrained variant (rule SP1-D of Section 5.1.2):
/// identical to [`shortest_path`] except that 1-hop paths are only seeded
/// towards destinations present in the `magicDst` table. Derived from
/// [`shortest_path`] by running [`magic_dst_pipeline`] through the
/// optimizer rather than written by hand.
pub fn shortest_path_magic_dst(suffix: &str) -> Program {
    optimize(&shortest_path(suffix), &magic_dst_pipeline(suffix))
        .expect("magic-dst pipeline applies to the shortest-path program")
        .program
}

/// The unoptimized top-down base of the source-routing variant: paths
/// accumulate at the *destination* (`pathDst`) and grow forward from every
/// source, with the recursive rule still written link-first. The optimizer
/// pipeline ([`source_routing_pipeline`]) turns this into the paper's
/// SP1-SD…SP4-SD form: reordering makes SD2 left-recursive and the magic
/// rewrites constrain sources (`magicSrc`) and destinations (`magicDst`).
pub fn shortest_path_source_routing_base(suffix: &str) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let src = format!(
        r#"
        materialize({link}, keys(1,2)).
        materialize({pathdst}, keys(1,2,4)).
        materialize({spc}, keys(1,2)).
        materialize({sp}, keys(1,2)).

        sd1 {pathdst}(@D,@S,@D,P,C) :- #{link}(@S,@D,C),
            P := f_append(f_cons(S, nil), D).
        sd2 {pathdst}(@D,@S,@Z,P,C) :- #{link}(@Z,@D,C2), {pathdst}(@Z,@S,@Z1,P1,C1),
            f_member(P1, D) == 0, C := C1 + C2, P := f_append(P1, D).
        sd3 {spc}(@D,@S,min<C>) :- {pathdst}(@D,@S,@Z,P,C).
        sd4 {sp}(@D,@S,P,C) :- {spc}(@D,@S,C), {pathdst}(@D,@S,@Z,P,C).

        query {sp}(@D,@S,P,C).
        "#,
        link = r.link,
        pathdst = r.path_dst,
        spc = r.sp_cost,
        sp = r.shortest_path,
    );
    parse_program(&src).expect("shortest_path_source_routing_base program is well-formed")
}

/// The optimizer pipeline that derives the source-routing variant from
/// [`shortest_path_source_routing_base`]: predicate reordering (link last,
/// making SD2 left-recursive / top-down) plus two magic-sets rewrites —
/// `magicSrc` binds the source argument of `pathDst`'s base rule and
/// `magicDst` filters the final `shortestPath` join.
pub fn source_routing_pipeline(suffix: &str) -> Pipeline {
    let r = ShortestPathRelations::new(suffix);
    Pipeline::new(
        vec![
            MagicSpec::new(r.path_dst, r.magic_src, MagicBinding::HeadArg(1)),
            MagicSpec::new(r.shortest_path, r.magic_dst, MagicBinding::HeadArg(0)),
        ],
        Some(BodyOrder::LinkLast),
    )
}

/// The source-and-destination-constrained, top-down variant (rules SP1-SD
/// to SP4-SD of Section 5.1.2), obtained by predicate reordering: paths
/// accumulate at the *destination* (`pathDst`) and grow forward from the
/// sources listed in `magicSrc`; results are filtered by `magicDst`. This
/// execution resembles dynamic source routing. Derived from
/// [`shortest_path_source_routing_base`] by running
/// [`source_routing_pipeline`] through the optimizer.
pub fn shortest_path_source_routing(suffix: &str) -> Program {
    optimize(
        &shortest_path_source_routing_base(suffix),
        &source_routing_pipeline(suffix),
    )
    .expect("source-routing pipeline applies to the TD base program")
    .program
}

/// A minimal two-rule reachability program used by tests and the
/// quickstart example: `reachable(@S,@D)` holds when `D` can be reached
/// from `S` over links.
pub fn reachability(suffix: &str) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let reach = if suffix.is_empty() {
        "reachable".to_string()
    } else {
        format!("reachable_{suffix}")
    };
    let src = format!(
        r#"
        materialize({link}, keys(1,2)).
        materialize({reach}, keys(1,2)).

        rc1 {reach}(@S,@D) :- #{link}(@S,@D,C).
        rc2 {reach}(@S,@D) :- #{link}(@S,@Z,C), {reach}(@Z,@D).

        query {reach}(@S,@D).
        "#,
        link = r.link,
        reach = reach,
    );
    parse_program(&src).expect("reachability program is well-formed")
}

/// Soft-state variant of [`shortest_path`]: every relation carries a TTL,
/// so stored tuples vanish unless refreshed. This is the paper's
/// soft-state model (Section 4.2): loss, churn and failure are not
/// repaired explicitly — stale state expires, and live state survives
/// because the periodic refresh cycle re-announces it (a duplicate insert
/// renews the stored tuple's lifetime). Pair it with the engine's refresh
/// driver and a fault plan to exercise the healing path.
pub fn shortest_path_soft(suffix: &str, ttl_seconds: f64) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let src = format!(
        r#"
        materialize({link}, keys(1,2), ttl({ttl})).
        materialize({path}, keys(1,2,4), ttl({ttl})).
        materialize({spc}, keys(1,2), ttl({ttl})).
        materialize({sp}, keys(1,2), ttl({ttl})).

        sp1 {path}(@S,@D,@D,P,C) :- #{link}(@S,@D,C),
            P := f_cons(S, f_cons(D, nil)).
        sp2 {path}(@S,@D,@Z,P,C) :- #{link}(@S,@Z,C1), {path}(@Z,@D,@Z2,P2,C2),
            f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).
        sp3 {spc}(@S,@D,min<C>) :- {path}(@S,@D,@Z,P,C).
        sp4 {sp}(@S,@D,P,C) :- {spc}(@S,@D,C), {path}(@S,@D,@Z,P,C).

        query {sp}(@S,@D,P,C).
        "#,
        link = r.link,
        path = r.path,
        spc = r.sp_cost,
        sp = r.shortest_path,
        ttl = ttl_seconds,
    );
    parse_program(&src).expect("shortest_path_soft program is well-formed")
}

/// The distance-vector style "best next hop" program: like shortest path
/// but propagating only the next hop rather than the full path vector,
/// closer to how real routing protocols behave (Section 2.2 notes that many
/// protocols propagate only the next hop). Uses hop counts bounded by a
/// maximum to guarantee termination without a path-vector cycle check.
pub fn distance_vector(suffix: &str, max_hops: u32) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let route = if suffix.is_empty() {
        "route".to_string()
    } else {
        format!("route_{suffix}")
    };
    let best = if suffix.is_empty() {
        "bestRoute".to_string()
    } else {
        format!("bestRoute_{suffix}")
    };
    let cost = if suffix.is_empty() {
        "bestCost".to_string()
    } else {
        format!("bestCost_{suffix}")
    };
    let src = format!(
        r#"
        materialize({link}, keys(1,2)).
        materialize({route}, keys(1,2,3,4)).
        materialize({cost}, keys(1,2)).
        materialize({best}, keys(1,2)).

        dv1 {route}(@S,@D,@D,C,H) :- #{link}(@S,@D,C), H := 1.
        dv2 {route}(@S,@D,@Z,C,H) :- #{link}(@S,@Z,C1), {route}(@Z,@D,@N,C2,H2),
            H := H2 + 1, H <= {max_hops}, C := C1 + C2.
        dv3 {cost}(@S,@D,min<C>) :- {route}(@S,@D,@Z,C,H).
        dv4 {best}(@S,@D,@Z,C) :- {cost}(@S,@D,C), {route}(@S,@D,@Z,C,H).

        query {best}(@S,@D,@Z,C).
        "#,
        link = r.link,
        route = route,
        cost = cost,
        best = best,
        max_hops = max_hops,
    );
    parse_program(&src).expect("distance_vector program is well-formed")
}

/// Distance-vector routing with *split horizon*: a node never advertises
/// a route back to the neighbor it learned it from. In rule form the
/// advertisement from `Z` to `S` is suppressed when `Z`'s next hop for the
/// destination is `S` itself (`N != S`) — the classic damping that removes
/// two-node count-to-infinity loops, on top of the hop bound that caps the
/// rest. With `ttl_seconds` set, every relation is soft state, so the
/// protocol can be stressed under fault plans: lost advertisements are
/// healed by refresh, stale routes by expiry.
pub fn distance_vector_split_horizon(
    suffix: &str,
    max_hops: u32,
    ttl_seconds: Option<f64>,
) -> Program {
    let r = ShortestPathRelations::new(suffix);
    let name = |base: &str| {
        if suffix.is_empty() {
            base.to_string()
        } else {
            format!("{base}_{suffix}")
        }
    };
    let route = name("route");
    let best = name("bestRoute");
    let cost = name("bestCost");
    let ttl = ttl_seconds
        .map(|t| format!(", ttl({t})"))
        .unwrap_or_default();
    let src = format!(
        r#"
        materialize({link}, keys(1,2){ttl}).
        materialize({route}, keys(1,2,3,4){ttl}).
        materialize({cost}, keys(1,2){ttl}).
        materialize({best}, keys(1,2){ttl}).

        dh1 {route}(@S,@D,@D,C,H) :- #{link}(@S,@D,C), H := 1.
        dh2 {route}(@S,@D,@Z,C,H) :- #{link}(@S,@Z,C1), {route}(@Z,@D,@N,C2,H2),
            N != S, H := H2 + 1, H <= {max_hops}, C := C1 + C2.
        dh3 {cost}(@S,@D,min<C>) :- {route}(@S,@D,@Z,C,H).
        dh4 {best}(@S,@D,@Z,C) :- {cost}(@S,@D,C), {route}(@S,@D,@Z,C,H).

        query {best}(@S,@D,@Z,C).
        "#,
        link = r.link,
        route = route,
        cost = cost,
        best = best,
        max_hops = max_hops,
        ttl = ttl,
    );
    parse_program(&src).expect("distance_vector_split_horizon program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggsel::infer_aggregate_selections;
    use crate::localize::{is_localized, localize};
    use crate::validate::validate;

    fn assert_valid(p: &Program) {
        let errs = validate(p);
        assert!(errs.is_empty(), "{errs:?}");
        let localized = localize(p).expect("localizes");
        assert!(is_localized(&localized));
        assert!(
            validate(&localized).is_empty(),
            "{:?}",
            validate(&localized)
        );
    }

    #[test]
    fn shortest_path_is_valid_and_localizable() {
        assert_valid(&shortest_path(""));
        assert_valid(&shortest_path("latency"));
    }

    #[test]
    fn magic_dst_variant_is_valid() {
        assert_valid(&shortest_path_magic_dst("hops"));
        let p = shortest_path_magic_dst("hops");
        assert!(p.rules[0].body_atoms().any(|a| a.name == "magicDst_hops"));
    }

    #[test]
    fn source_routing_base_is_valid_before_optimization() {
        assert_valid(&shortest_path_source_routing_base(""));
        let base = shortest_path_source_routing_base("t");
        // No magic tables until the pipeline adds them.
        assert!(base.table_decl("magicSrc_t").is_none());
        assert!(base.table_decl("magicDst_t").is_none());
        let opt = shortest_path_source_routing("t");
        assert!(opt.table_decl("magicSrc_t").is_some());
        assert!(opt.table_decl("magicDst_t").is_some());
    }

    #[test]
    fn source_routing_variant_is_valid() {
        assert_valid(&shortest_path_source_routing(""));
        let p = shortest_path_source_routing("");
        // The TD recursive rule is left-recursive: pathDst before the link.
        let sd2 = p.rule("sd2").unwrap();
        let first = sd2.body_atoms().next().unwrap();
        assert_eq!(first.name, "pathDst");
        assert!(!first.link);
    }

    #[test]
    fn reachability_and_distance_vector_valid() {
        assert_valid(&reachability(""));
        assert_valid(&reachability("t"));
        assert_valid(&distance_vector("", 16));
    }

    #[test]
    fn suffixing_renames_all_relations() {
        let p = shortest_path("rand");
        for rule in &p.rules {
            assert!(rule.head.name.ends_with("_rand"));
        }
        let r = ShortestPathRelations::new("rand");
        assert_eq!(r.link, "link_rand");
        assert_eq!(r.shortest_path, "shortestPath_rand");
        let empty = ShortestPathRelations::new("");
        assert_eq!(empty.link, "link");
    }

    #[test]
    fn aggregate_selection_is_inferrable_from_programs() {
        for p in [
            shortest_path(""),
            shortest_path_magic_dst(""),
            shortest_path_source_routing(""),
        ] {
            let sels = infer_aggregate_selections(&p);
            assert_eq!(
                sels.len(),
                1,
                "each variant exposes exactly one min selection"
            );
        }
    }

    #[test]
    fn soft_shortest_path_declares_ttls() {
        let p = shortest_path_soft("soft", 5.0);
        assert_valid(&p);
        for name in ["link_soft", "path_soft", "spCost_soft", "shortestPath_soft"] {
            let decl = p
                .table_decl(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(decl.ttl_seconds, Some(5.0), "{name} must be soft state");
        }
    }

    #[test]
    fn split_horizon_adds_the_suppression_filter() {
        let p = distance_vector_split_horizon("", 8, None);
        assert_valid(&p);
        let dh2 = p.rule("dh2").unwrap();
        let filters = dh2
            .body
            .iter()
            .filter(|l| matches!(l, crate::ast::Literal::Filter(_)))
            .count();
        // The hop bound plus the split-horizon constraint.
        assert_eq!(filters, 2);
        assert!(p.table_decl("route").unwrap().ttl_seconds.is_none());

        let soft = distance_vector_split_horizon("dv", 8, Some(4.0));
        assert_valid(&soft);
        assert_eq!(
            soft.table_decl("bestRoute_dv").unwrap().ttl_seconds,
            Some(4.0)
        );
    }

    #[test]
    fn distance_vector_bounds_hops() {
        let p = distance_vector("", 8);
        let dv2 = p.rule("dv2").unwrap();
        let filters = dv2
            .body
            .iter()
            .filter(|l| matches!(l, crate::ast::Literal::Filter(_)))
            .count();
        assert_eq!(filters, 1);
    }
}
