//! Abstract syntax for NDlog programs.
//!
//! A [`Program`] is a set of [`Rule`]s, optional table declarations
//! ([`TableDecl`], the analogue of P2's `materialize` statements) and query
//! atoms. Rules have a head [`Atom`] and a body of [`Literal`]s; literals
//! are predicate atoms (possibly link literals, written `#link(...)`),
//! assignments (`C := C1 + C2`), or boolean filters (`C1 < 10`).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Aggregate functions supported in rule heads (e.g. `min<C>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Minimum of the aggregated field per group.
    Min,
    /// Maximum of the aggregated field per group.
    Max,
    /// Number of tuples per group.
    Count,
    /// Sum of the aggregated field per group.
    Sum,
}

impl AggFunc {
    /// The NDlog keyword for this aggregate.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
        }
    }

    /// Parse an aggregate keyword.
    pub fn from_name(s: &str) -> Option<AggFunc> {
        match s {
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            _ => None,
        }
    }

    /// Whether the aggregate is monotonic in the sense required by
    /// aggregate selections (a better value can only improve as more input
    /// arrives in one direction): min and max are, count and sum are not.
    pub fn is_selection_monotonic(&self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }
}

/// A variable occurrence, possibly marked as an address (`@X`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Variable {
    /// Variable name (starts with an upper-case letter by convention).
    pub name: String,
    /// Whether the occurrence is written with an `@` prefix (address type).
    pub located: bool,
}

impl Variable {
    /// A plain (non-address) variable.
    pub fn plain(name: impl Into<String>) -> Self {
        Variable {
            name: name.into(),
            located: false,
        }
    }

    /// An address-typed variable (`@X`).
    pub fn located(name: impl Into<String>) -> Self {
        Variable {
            name: name.into(),
            located: true,
        }
    }
}

/// An aggregate head argument such as `min<C>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated variable.
    pub var: String,
}

/// A term: an argument of a predicate atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable.
    Var(Variable),
    /// A constant value.
    Const(Value),
    /// An aggregate (only legal in head arguments).
    Agg(Aggregate),
}

impl Term {
    /// Convenience: a plain variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(Variable::plain(name))
    }

    /// Convenience: an address-typed variable term.
    pub fn at(name: impl Into<String>) -> Term {
        Term::Var(Variable::located(name))
    }

    /// Convenience: a constant term.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Convenience: an aggregate term.
    pub fn agg(func: AggFunc, var: impl Into<String>) -> Term {
        Term::Agg(Aggregate {
            func,
            var: var.into(),
        })
    }

    /// The variable name, if this term is a variable.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(&v.name),
            _ => None,
        }
    }

    /// Whether this term denotes an address: either an `@`-marked variable
    /// or an address constant.
    pub fn is_address(&self) -> bool {
        match self {
            Term::Var(v) => v.located,
            Term::Const(c) => c.is_addr(),
            Term::Agg(_) => false,
        }
    }

    /// All variable names mentioned by this term.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            Term::Var(v) => vec![v.name.as_str()],
            Term::Agg(a) => vec![a.var.as_str()],
            Term::Const(_) => vec![],
        }
    }
}

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Whether the operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Expressions used in assignments and filters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// A constant.
    Const(Value),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A builtin function call (`f_concatPath(...)`, `f_member(...)`, ...).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// A variable expression.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A constant expression.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A binary expression.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// A function call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// All variable names referenced by this expression.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Const(_) => {}
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

/// A predicate atom: `path(@S, @D, @Z, P, C)` or `#link(@S, @D, C)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Relation name.
    pub name: String,
    /// Whether the atom is a link literal (`#`-prefixed).
    pub link: bool,
    /// Arguments; the first is the location specifier.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build a (non-link) atom.
    pub fn new(name: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            name: name.into(),
            link: false,
            args,
        }
    }

    /// Build a link literal.
    pub fn link(name: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            name: name.into(),
            link: true,
            args,
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The location specifier (first argument), if any.
    pub fn location(&self) -> Option<&Term> {
        self.args.first()
    }

    /// The location specifier's variable name, if it is a variable.
    pub fn location_var(&self) -> Option<&str> {
        self.location().and_then(Term::var_name)
    }

    /// All variable names in the atom's arguments, in positional order
    /// (with duplicates removed, preserving first occurrence).
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.args {
            for v in t.variables() {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        out
    }

    /// Whether any argument is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.args.iter().any(|t| matches!(t, Term::Agg(_)))
    }

    /// Positions of aggregate arguments.
    pub fn aggregate_positions(&self) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, Term::Agg(_)))
            .map(|(i, _)| i)
            .collect()
    }
}

/// An assignment literal `Var := Expr` (the paper writes `=`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// Variable being bound (or checked, if already bound).
    pub var: String,
    /// The defining expression.
    pub expr: Expr,
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// A predicate atom (possibly a link literal).
    Atom(Atom),
    /// An assignment `V := expr`.
    Assign(Assignment),
    /// A boolean filter expression.
    Filter(Expr),
}

impl Literal {
    /// The atom inside, if this literal is a predicate.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Variables referenced by the literal.
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            Literal::Atom(a) => a.variables().into_iter().collect(),
            Literal::Assign(a) => {
                let mut v = a.expr.variables();
                v.insert(a.var.clone());
                v
            }
            Literal::Filter(e) => e.variables(),
        }
    }
}

/// A rule: `head :- body.`  A rule with an empty body asserts a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// The rule label (e.g. `sp1`); auto-generated if absent in the source.
    pub label: String,
    /// The head atom.
    pub head: Atom,
    /// Body literals, in source order.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule.
    pub fn new(label: impl Into<String>, head: Atom, body: Vec<Literal>) -> Rule {
        Rule {
            label: label.into(),
            head,
            body,
        }
    }

    /// Predicate atoms in the body, in order.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_atom)
    }

    /// Link literals in the body.
    pub fn link_literals(&self) -> impl Iterator<Item = &Atom> {
        self.body_atoms().filter(|a| a.link)
    }

    /// Non-predicate literals (assignments and filters), in order.
    pub fn constraints(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| !matches!(l, Literal::Atom(_)))
    }

    /// Whether the rule is **local** (Definition 3): every predicate,
    /// including the head, has the same location specifier term.
    pub fn is_local(&self) -> bool {
        let Some(head_loc) = self.head.location() else {
            return false;
        };
        self.body_atoms()
            .all(|a| a.location().map(|l| l == head_loc).unwrap_or(false))
    }

    /// Whether the rule is a fact (empty body).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All variables appearing anywhere in the rule.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.head.variables().into_iter().collect();
        for l in &self.body {
            out.extend(l.variables());
        }
        out
    }

    /// Map from variable name to whether it is ever written with `@` in
    /// this rule (address-typed occurrences).
    pub fn address_usage(&self) -> BTreeMap<String, (bool, bool)> {
        // (used_as_address, used_as_non_address)
        let mut usage: BTreeMap<String, (bool, bool)> = BTreeMap::new();
        let mut record = |term: &Term| {
            if let Term::Var(v) = term {
                let e = usage.entry(v.name.clone()).or_insert((false, false));
                if v.located {
                    e.0 = true;
                } else {
                    e.1 = true;
                }
            }
        };
        for t in &self.head.args {
            record(t);
        }
        for a in self.body_atoms() {
            for t in &a.args {
                record(t);
            }
        }
        usage
    }
}

/// A table declaration, the analogue of P2's `materialize` statement:
/// relation name, primary-key columns (1-based in the surface syntax,
/// 0-based here) and an optional soft-state lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDecl {
    /// Relation name.
    pub name: String,
    /// Primary-key column indexes (0-based). Empty means "all columns".
    pub key_columns: Vec<usize>,
    /// Soft-state time-to-live in seconds; `None` means the tuples are hard
    /// state (kept until deleted).
    pub ttl_seconds: Option<f64>,
    /// Declared arity, if known.
    pub arity: Option<usize>,
}

/// A parsed NDlog program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Optional program name.
    pub name: String,
    /// Table declarations.
    pub tables: Vec<TableDecl>,
    /// Rules in source order.
    pub rules: Vec<Rule>,
    /// Query atoms (`Query shortestPath(@S,@D,P,C).`).
    pub queries: Vec<Atom>,
}

impl Program {
    /// Create an empty program with a name.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Names of relations that appear in some rule head (derived /
    /// "intensional" relations).
    pub fn intensional(&self) -> BTreeSet<String> {
        self.rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head.name.clone())
            .collect()
    }

    /// Names of relations that appear only in rule bodies or as facts
    /// (stored / "extensional" relations).
    pub fn extensional(&self) -> BTreeSet<String> {
        let intensional = self.intensional();
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for a in r.body_atoms() {
                if !intensional.contains(&a.name) {
                    out.insert(a.name.clone());
                }
            }
            if r.is_fact() {
                out.insert(r.head.name.clone());
            }
        }
        out
    }

    /// Names of relations used as link literals anywhere in the program.
    pub fn link_relations(&self) -> BTreeSet<String> {
        self.rules
            .iter()
            .flat_map(|r| r.link_literals().map(|a| a.name.clone()))
            .collect()
    }

    /// Find the declaration for a relation, if present.
    pub fn table_decl(&self, name: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Find a rule by label.
    pub fn rule(&self, label: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.label == label)
    }

    /// Arity of a relation as used in the program (first occurrence wins).
    pub fn arity_of(&self, name: &str) -> Option<usize> {
        if let Some(d) = self.table_decl(name) {
            if let Some(a) = d.arity {
                return Some(a);
            }
        }
        for r in &self.rules {
            if r.head.name == name {
                return Some(r.head.arity());
            }
            for a in r.body_atoms() {
                if a.name == name {
                    return Some(a.arity());
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Pretty printing (the NDlog surface syntax).
// ---------------------------------------------------------------------------

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => {
                if v.located {
                    write!(f, "@{}", v.name)
                } else {
                    write!(f, "{}", v.name)
                }
            }
            Term::Const(c) => write!(f, "{c}"),
            Term::Agg(a) => write!(f, "{}<{}>", a.func.name(), a.var),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.link {
            write!(f, "#")?;
        }
        write!(f, "{}(", self.name)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Assign(a) => write!(f, "{} := {}", a.var, a.expr),
            Literal::Filter(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.label, self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            write!(f, "materialize({}, keys(", t.name)?;
            for (i, k) in t.key_columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", k + 1)?;
            }
            write!(f, ")")?;
            if let Some(ttl) = t.ttl_seconds {
                write!(f, ", ttl({ttl})")?;
            }
            writeln!(f, ").")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for q in &self.queries {
            writeln!(f, "query {q}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp2_rule() -> Rule {
        // sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
        //     C := C1 + C2, P := f_concat(S, P2).
        Rule::new(
            "sp2",
            Atom::new(
                "path",
                vec![
                    Term::at("S"),
                    Term::at("D"),
                    Term::at("Z"),
                    Term::var("P"),
                    Term::var("C"),
                ],
            ),
            vec![
                Literal::Atom(Atom::link(
                    "link",
                    vec![Term::at("S"), Term::at("Z"), Term::var("C1")],
                )),
                Literal::Atom(Atom::new(
                    "path",
                    vec![
                        Term::at("Z"),
                        Term::at("D"),
                        Term::at("Z2"),
                        Term::var("P2"),
                        Term::var("C2"),
                    ],
                )),
                Literal::Assign(Assignment {
                    var: "C".into(),
                    expr: Expr::bin(BinOp::Add, Expr::var("C1"), Expr::var("C2")),
                }),
                Literal::Assign(Assignment {
                    var: "P".into(),
                    expr: Expr::call("f_concat", vec![Expr::var("S"), Expr::var("P2")]),
                }),
            ],
        )
    }

    #[test]
    fn atom_helpers() {
        let a = Atom::new("path", vec![Term::at("S"), Term::at("D"), Term::var("C")]);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.location_var(), Some("S"));
        assert_eq!(a.variables(), vec!["S", "D", "C"]);
        assert!(!a.has_aggregate());

        let agg = Atom::new("spCost", vec![Term::at("S"), Term::agg(AggFunc::Min, "C")]);
        assert!(agg.has_aggregate());
        assert_eq!(agg.aggregate_positions(), vec![1]);
    }

    #[test]
    fn rule_locality() {
        let local = Rule::new(
            "sp4",
            Atom::new("shortestPath", vec![Term::at("S"), Term::var("C")]),
            vec![
                Literal::Atom(Atom::new("spCost", vec![Term::at("S"), Term::var("C")])),
                Literal::Atom(Atom::new("path", vec![Term::at("S"), Term::var("C")])),
            ],
        );
        assert!(local.is_local());
        assert!(
            !sp2_rule().is_local(),
            "sp2 joins relations at different locations"
        );
    }

    #[test]
    fn rule_accessors() {
        let r = sp2_rule();
        assert_eq!(r.body_atoms().count(), 2);
        assert_eq!(r.link_literals().count(), 1);
        assert_eq!(r.constraints().count(), 2);
        assert!(!r.is_fact());
        assert!(r.variables().contains("C1"));
        let usage = r.address_usage();
        assert_eq!(usage.get("S"), Some(&(true, false)));
        assert_eq!(usage.get("P"), Some(&(false, true)));
    }

    #[test]
    fn program_relation_classification() {
        let mut p = Program::new("sp");
        p.rules.push(sp2_rule());
        assert!(p.intensional().contains("path"));
        assert!(p.extensional().contains("link"));
        assert!(p.link_relations().contains("link"));
        assert_eq!(p.arity_of("path"), Some(5));
        assert_eq!(p.arity_of("link"), Some(3));
        assert_eq!(p.arity_of("missing"), None);
    }

    #[test]
    fn display_roundtrip_shapes() {
        let r = sp2_rule();
        let s = r.to_string();
        assert!(s.starts_with("sp2 path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1)"));
        assert!(s.contains("C := (C1 + C2)"));
        assert!(s.ends_with("."));

        let t = Term::agg(AggFunc::Min, "C");
        assert_eq!(t.to_string(), "min<C>");
    }

    #[test]
    fn expr_variables() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::var("A"),
            Expr::call("f", vec![Expr::var("B"), Expr::val(1i64)]),
        );
        let vars = e.variables();
        assert!(vars.contains("A") && vars.contains("B"));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn aggfunc_properties() {
        assert_eq!(AggFunc::from_name("min"), Some(AggFunc::Min));
        assert_eq!(AggFunc::from_name("avg"), None);
        assert!(AggFunc::Min.is_selection_monotonic());
        assert!(!AggFunc::Count.is_selection_monotonic());
        assert_eq!(AggFunc::Sum.name(), "sum");
    }
}
