//! Magic-sets rewriting (Section 5.1.2).
//!
//! The all-pairs shortest-path query wastes work when only a subset of
//! source/destination pairs is of interest. Magic-sets rewriting limits the
//! computation to the relevant portion of the network by adding a *magic*
//! predicate — a table of the constants the query is actually interested in
//! — to the rules that seed the recursion. The paper's rule SP1-D:
//!
//! ```text
//! SP1-D: path(@S,@D,@D,P,C) :- magicDst(@D), #link(@S,@D,C),
//!                              P = f_concatPath(link(@S,@D,C), nil).
//! ```
//!
//! only initializes 1-hop paths towards destinations present in `magicDst`,
//! which transitively restricts everything SP2 derives.
//!
//! This module implements that stylized rewrite: given a program, the name
//! of the recursive relation and a binding position, it adds a magic
//! predicate to the recursion's *base rules* (rules whose body does not
//! mention the recursive relation). It does not implement the fully general
//! magic-sets transformation with adornment propagation through arbitrary
//! sideways information passing — the paper itself only exercises the form
//! above, and the source-constrained variant is obtained by predicate
//! reordering (see [`crate::reorder`] and
//! [`crate::programs::shortest_path_source_routing`]).

use crate::ast::{Atom, Literal, Program, Term, Variable};
use crate::error::LangError;

/// Where the magic filter applies: which argument of the recursive
/// relation's base rules is restricted by the magic table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MagicBinding {
    /// Restrict by the argument at this position of the *head* of base
    /// rules (0-based). For the shortest-path query, position 1 is the
    /// destination.
    HeadArg(usize),
}

/// Apply the magic rewrite.
///
/// * `recursive_relation` — the relation computed by the recursion (`path`);
/// * `magic_relation` — the name of the magic table to consult
///   (`magicDst`); the caller seeds it with the constants of interest;
/// * `binding` — which head argument the magic table restricts.
///
/// Base rules (rules deriving `recursive_relation` whose bodies do not
/// mention it) get a `magic_relation(@X)` literal prepended, where `X` is
/// the bound head argument. Recursive rules are left unchanged: they can
/// only extend paths that were seeded through the magic filter.
pub fn magic_rewrite(
    program: &Program,
    recursive_relation: &str,
    magic_relation: &str,
    binding: MagicBinding,
) -> Result<Program, LangError> {
    let MagicBinding::HeadArg(pos) = binding;
    let mut out = program.clone();
    let mut rewrote = 0;
    for rule in &mut out.rules {
        if rule.head.name != recursive_relation || rule.is_fact() {
            continue;
        }
        let is_base = rule.body_atoms().all(|a| a.name != recursive_relation);
        if !is_base {
            continue;
        }
        let bound_term = rule.head.args.get(pos).ok_or_else(|| {
            LangError::Rewrite(format!(
                "rule {}: head has no argument at position {pos}",
                rule.label
            ))
        })?;
        let magic_arg = match bound_term {
            Term::Var(v) => Term::Var(Variable::located(v.name.clone())),
            Term::Const(c) => Term::Const(c.clone()),
            Term::Agg(_) => {
                return Err(LangError::Rewrite(format!(
                    "rule {}: cannot bind a magic predicate to an aggregate argument",
                    rule.label
                )))
            }
        };
        rule.body.insert(
            0,
            Literal::Atom(Atom::new(magic_relation.to_string(), vec![magic_arg])),
        );
        rewrote += 1;
    }
    if rewrote == 0 {
        return Err(LangError::Rewrite(format!(
            "no base rules found for relation {recursive_relation}"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::{is_localized, localize};
    use crate::parser::parse_program;
    use crate::validate::validate;

    const SP: &str = r#"
        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C), P := f_cons(S, f_cons(D, nil)).
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            C := C1 + C2, P := f_cons(S, P2).
        sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
        sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).
    "#;

    #[test]
    fn magic_dst_added_to_base_rule_only() {
        let p = parse_program(SP).unwrap();
        let magic = magic_rewrite(&p, "path", "magicDst", MagicBinding::HeadArg(1)).unwrap();
        let sp1 = magic.rule("sp1").unwrap();
        let first = sp1.body_atoms().next().unwrap();
        assert_eq!(first.name, "magicDst");
        assert_eq!(first.args.len(), 1);
        assert_eq!(first.location_var(), Some("D"));
        // Recursive rule untouched.
        assert_eq!(magic.rule("sp2").unwrap(), p.rule("sp2").unwrap());
        // Still a valid NDlog program.
        assert!(validate(&magic).is_empty(), "{:?}", validate(&magic));
    }

    #[test]
    fn magic_program_localizes() {
        let p = parse_program(SP).unwrap();
        let magic = magic_rewrite(&p, "path", "magicDst", MagicBinding::HeadArg(1)).unwrap();
        let localized = localize(&magic).unwrap();
        assert!(is_localized(&localized));
        // SP1-D becomes non-local (magicDst at @D, link at @S) and is split.
        assert!(localized.rules.iter().any(|r| r.label == "sp1a"));
        assert!(localized.rules.iter().any(|r| r.label == "sp1b"));
    }

    #[test]
    fn missing_base_rule_errors() {
        let p = parse_program("r2 path(@S,@D) :- #link(@S,@Z,C), path(@Z,@D).").unwrap();
        assert!(magic_rewrite(&p, "path", "magicDst", MagicBinding::HeadArg(1)).is_err());
    }

    #[test]
    fn out_of_range_binding_errors() {
        let p = parse_program(SP).unwrap();
        assert!(magic_rewrite(&p, "path", "m", MagicBinding::HeadArg(9)).is_err());
    }

    #[test]
    fn binding_source_position_also_works() {
        let p = parse_program(SP).unwrap();
        let magic = magic_rewrite(&p, "path", "magicSrc", MagicBinding::HeadArg(0)).unwrap();
        let sp1 = magic.rule("sp1").unwrap();
        let first = sp1.body_atoms().next().unwrap();
        assert_eq!(first.name, "magicSrc");
        assert_eq!(first.location_var(), Some("S"));
        // magicSrc(@S) is co-located with the link literal, so sp1 stays local
        // to the link source and needs no splitting.
        let localized = localize(&magic).unwrap();
        assert!(localized.rules.iter().all(|r| r.label != "sp1a"));
    }
}
