//! The optimizer pipeline: program → rewrite passes → planned program.
//!
//! The seed modules [`crate::magic`] and [`crate::reorder`] implement the
//! paper's Section 5.1.2 rewrites as standalone functions; before this
//! module existed every caller (the figure experiments, the canonical
//! program builders) invoked them ad hoc and by hand — including manually
//! inserting the magic seed facts under hard-coded relation names. The
//! pipeline makes the composition explicit and reusable:
//!
//! ```text
//! Program ──reorder pass──▶ Program ──magic pass──▶ Optimized{program, report}
//! ```
//!
//! **Pass order invariants**
//!
//! 1. *Reorder runs first.* [`reorder_program`] permutes body predicates
//!    (constraints always trail), so running it before the magic pass
//!    guarantees the magic guard literal — prepended by
//!    [`magic_rewrite`] — always ends up at body position 0, where the
//!    planner evaluates it before anything else. That position is what
//!    makes the rewrite a *filter*: no work happens for tuples outside the
//!    magic set.
//! 2. *Magic specs apply in order.* Each [`MagicSpec`] rewrites the base
//!    rules of one recursive relation and registers a `keys(1)`
//!    materialization for its magic table (unless the program already
//!    declares one), so the optimized program is self-contained — callers
//!    only have to seed the magic tables with the constants of interest
//!    (see [`MagicSpec::seed`]).
//! 3. *Passes are semantics-preserving* on the queried tuples: reordering
//!    never changes results, and magic rewriting restricts derivations to
//!    those reachable from the seeded constants — the differential suite
//!    in `tests/optimizer.rs` holds both equivalences across strategies
//!    and thread counts.
//!
//! The [`Report`] records which passes ran and the adornment (`b`/`f`
//! binding pattern) of every magic rewrite, so experiment tables and the
//! serve layer can display what the pipeline actually did. Downstream, the
//! planner (`ndlog-core`) consumes the optimized program exactly like a
//! hand-written one; plan-time shared-subplan detection and the
//! stats-driven cost model live there, closer to the runtime statistics
//! they feed on.

use crate::ast::{Program, TableDecl};
use crate::error::LangError;
use crate::magic::{magic_rewrite, MagicBinding};
use crate::reorder::{reorder_program, BodyOrder};
use crate::value::Value;

/// Which optimizer passes are enabled. Parsed from the `--optimize`
/// experiment flag (`off`/`magic`/`reorder`/`all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassSet {
    /// Apply the magic-sets rewrites of the pipeline's [`MagicSpec`]s.
    pub magic: bool,
    /// Apply the predicate-reordering pass.
    pub reorder: bool,
}

impl PassSet {
    /// Every pass enabled.
    pub const ALL: PassSet = PassSet {
        magic: true,
        reorder: true,
    };
    /// No passes; [`optimize`] returns the program unchanged.
    pub const OFF: PassSet = PassSet {
        magic: false,
        reorder: false,
    };

    /// Parse a `--optimize` argument.
    pub fn parse(text: &str) -> Option<PassSet> {
        match text {
            "off" => Some(PassSet::OFF),
            "magic" => Some(PassSet {
                magic: true,
                reorder: false,
            }),
            "reorder" => Some(PassSet {
                magic: false,
                reorder: true,
            }),
            "all" => Some(PassSet::ALL),
            _ => None,
        }
    }

    /// The canonical flag spelling for this set.
    pub fn label(&self) -> &'static str {
        match (self.magic, self.reorder) {
            (false, false) => "off",
            (true, false) => "magic",
            (false, true) => "reorder",
            (true, true) => "all",
        }
    }

    /// True when no pass is enabled.
    pub fn is_off(&self) -> bool {
        !self.magic && !self.reorder
    }
}

/// One magic-sets rewrite: restrict `relation`'s recursion by a magic
/// table bound to one head argument of its base rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MagicSpec {
    /// The recursive relation whose base rules are guarded.
    pub relation: String,
    /// The magic table consulted by the guard; seeded by the caller.
    pub magic_relation: String,
    /// Which head argument the magic table binds.
    pub binding: MagicBinding,
}

impl MagicSpec {
    /// Convenience constructor.
    pub fn new(
        relation: impl Into<String>,
        magic_relation: impl Into<String>,
        binding: MagicBinding,
    ) -> MagicSpec {
        MagicSpec {
            relation: relation.into(),
            magic_relation: magic_relation.into(),
            binding,
        }
    }

    /// The fact that seeds this magic table with one constant of
    /// interest: `(relation, args)` ready for `insert_base`. Callers
    /// derive seed insertion from the pipeline instead of hard-coding
    /// magic relation names.
    pub fn seed(&self, constant: Value) -> (String, Vec<Value>) {
        (self.magic_relation.clone(), vec![constant])
    }
}

/// A configured optimizer pipeline: which passes run and their inputs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pipeline {
    /// Enabled passes. Disabled passes skip their rewrite even when the
    /// pipeline carries specs for them, so one pipeline can be run at
    /// every `--optimize` level.
    pub passes: PassSet,
    /// Magic-sets rewrites, applied in order when `passes.magic`.
    pub magic: Vec<MagicSpec>,
    /// Body order for the reorder pass when `passes.reorder`.
    pub order: Option<BodyOrder>,
}

impl Default for PassSet {
    fn default() -> PassSet {
        PassSet::OFF
    }
}

impl Pipeline {
    /// A pipeline that performs no rewrites.
    pub fn identity() -> Pipeline {
        Pipeline::default()
    }

    /// A pipeline with every pass enabled and the given inputs.
    pub fn new(magic: Vec<MagicSpec>, order: Option<BodyOrder>) -> Pipeline {
        Pipeline {
            passes: PassSet::ALL,
            magic,
            order,
        }
    }

    /// The same pipeline restricted to `passes`.
    pub fn with_passes(mut self, passes: PassSet) -> Pipeline {
        self.passes = passes;
        self
    }

    /// The seed facts for every enabled magic spec, pairing each magic
    /// table with the constant the caller binds it to (looked up by the
    /// guarded relation's name).
    pub fn seeds_for(&self, relation: &str, constant: Value) -> Vec<(String, Vec<Value>)> {
        if !self.passes.magic {
            return Vec::new();
        }
        self.magic
            .iter()
            .filter(|s| s.relation == relation)
            .map(|s| s.seed(constant.clone()))
            .collect()
    }
}

/// The binding pattern of a magic rewrite: one `b` (bound) or `f` (free)
/// per head argument of the guarded relation, e.g. `fbfff` for a 5-ary
/// relation bound on its second argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adornment {
    /// The guarded relation.
    pub relation: String,
    /// The magic table introduced for it.
    pub magic_relation: String,
    /// The `b`/`f` pattern over the relation's arguments.
    pub pattern: String,
}

/// What the pipeline actually did to a program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Whether the reorder pass ran (enabled and an order was configured).
    pub reordered: Option<BodyOrder>,
    /// One adornment per magic rewrite applied.
    pub magic: Vec<Adornment>,
}

impl Report {
    /// Human-readable one-line summary, e.g.
    /// `reorder(link-last) + magic(path^fbfff)`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(order) = self.reordered {
            let o = match order {
                BodyOrder::LinkFirst => "link-first",
                BodyOrder::LinkLast => "link-last",
            };
            parts.push(format!("reorder({o})"));
        }
        for a in &self.magic {
            parts.push(format!("magic({}^{})", a.relation, a.pattern));
        }
        if parts.is_empty() {
            "identity".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// The result of running a pipeline: the rewritten program plus a record
/// of the passes applied.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The rewritten program, ready for planning.
    pub program: Program,
    /// What was done to it.
    pub report: Report,
}

/// Run the pipeline over a program.
///
/// Passes run in the documented order (reorder, then each magic spec).
/// Magic specs whose guarded relation has no base rules are an error, as
/// in [`magic_rewrite`]; an empty pipeline returns the program unchanged
/// with an empty report.
pub fn optimize(program: &Program, pipeline: &Pipeline) -> Result<Optimized, LangError> {
    let mut out = program.clone();
    let mut report = Report::default();
    if pipeline.passes.reorder {
        if let Some(order) = pipeline.order {
            out = reorder_program(&out, order);
            report.reordered = Some(order);
        }
    }
    if pipeline.passes.magic {
        for spec in &pipeline.magic {
            out = magic_rewrite(&out, &spec.relation, &spec.magic_relation, spec.binding)?;
            if out.table_decl(&spec.magic_relation).is_none() {
                out.tables.push(TableDecl {
                    name: spec.magic_relation.clone(),
                    key_columns: vec![0],
                    ttl_seconds: None,
                    arity: Some(1),
                });
            }
            report.magic.push(Adornment {
                relation: spec.relation.clone(),
                magic_relation: spec.magic_relation.clone(),
                pattern: adornment_pattern(&out, spec),
            });
        }
    }
    Ok(Optimized {
        program: out,
        report,
    })
}

/// Compute the `b`/`f` pattern for a magic spec from the guarded
/// relation's head arity (taken from any rule deriving it).
fn adornment_pattern(program: &Program, spec: &MagicSpec) -> String {
    let arity = program
        .rules
        .iter()
        .find(|r| r.head.name == spec.relation)
        .map(|r| r.head.args.len())
        .unwrap_or(0);
    let MagicBinding::HeadArg(pos) = spec.binding;
    (0..arity)
        .map(|i| if i == pos { 'b' } else { 'f' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::{is_localized, localize};
    use crate::programs;
    use crate::validate::validate;
    use ndlog_net::NodeAddr;

    #[test]
    fn pass_set_parses_every_flag_level() {
        assert_eq!(PassSet::parse("off"), Some(PassSet::OFF));
        assert_eq!(PassSet::parse("all"), Some(PassSet::ALL));
        assert_eq!(
            PassSet::parse("magic"),
            Some(PassSet {
                magic: true,
                reorder: false
            })
        );
        assert_eq!(
            PassSet::parse("reorder"),
            Some(PassSet {
                magic: false,
                reorder: true
            })
        );
        assert_eq!(PassSet::parse("bogus"), None);
        for level in ["off", "magic", "reorder", "all"] {
            assert_eq!(PassSet::parse(level).unwrap().label(), level);
        }
    }

    #[test]
    fn identity_pipeline_is_a_no_op() {
        let p = programs::shortest_path("");
        let opt = optimize(&p, &Pipeline::identity()).unwrap();
        assert_eq!(opt.program, p);
        assert_eq!(opt.report, Report::default());
        assert_eq!(opt.report.describe(), "identity");
    }

    #[test]
    fn disabled_passes_skip_their_specs() {
        let p = programs::shortest_path("");
        let pipeline = Pipeline::new(
            vec![MagicSpec::new("path", "magicDst", MagicBinding::HeadArg(1))],
            Some(BodyOrder::LinkFirst),
        )
        .with_passes(PassSet::OFF);
        let opt = optimize(&p, &pipeline).unwrap();
        assert_eq!(opt.program, p);
    }

    #[test]
    fn magic_pass_guards_base_rules_and_declares_the_table() {
        let p = programs::shortest_path("");
        let pipeline = Pipeline::new(
            vec![MagicSpec::new("path", "magicDst", MagicBinding::HeadArg(1))],
            None,
        );
        let opt = optimize(&p, &pipeline).unwrap();
        let sp1 = opt.program.rule("sp1").unwrap();
        assert_eq!(sp1.body_atoms().next().unwrap().name, "magicDst");
        let decl = opt.program.table_decl("magicDst").expect("decl added");
        assert_eq!(decl.key_columns, vec![0]);
        assert_eq!(opt.report.magic.len(), 1);
        assert_eq!(opt.report.magic[0].pattern, "fbfff");
        assert_eq!(opt.report.describe(), "magic(path^fbfff)");
        assert!(validate(&opt.program).is_empty());
        assert!(is_localized(&localize(&opt.program).unwrap()));
    }

    #[test]
    fn reorder_runs_before_magic_so_guards_lead_the_body() {
        // Start from the link-first TD base; the pipeline must first make
        // sd2 left-recursive and then prepend the magic guards, leaving
        // them at body position 0.
        let base = programs::shortest_path_source_routing_base("");
        let pipeline = programs::source_routing_pipeline("");
        let opt = optimize(&base, &pipeline).unwrap();
        let sd1 = opt.program.rule("sd1").unwrap();
        assert_eq!(sd1.body_atoms().next().unwrap().name, "magicSrc");
        let sd2 = opt.program.rule("sd2").unwrap();
        let first = sd2.body_atoms().next().unwrap();
        assert_eq!(first.name, "pathDst");
        assert!(!first.link);
        let sd4 = opt.program.rule("sd4").unwrap();
        assert_eq!(sd4.body_atoms().next().unwrap().name, "magicDst");
        assert_eq!(opt.report.magic.len(), 2);
        assert_eq!(opt.report.reordered, Some(BodyOrder::LinkLast));
    }

    #[test]
    fn seeds_derive_from_the_pipeline_specs() {
        let pipeline = programs::source_routing_pipeline("");
        let seeds = pipeline.seeds_for("pathDst", Value::Addr(NodeAddr(7)));
        assert_eq!(
            seeds,
            vec![("magicSrc".to_string(), vec![Value::Addr(NodeAddr(7))])]
        );
        let seeds = pipeline.seeds_for("shortestPath", Value::Addr(NodeAddr(3)));
        assert_eq!(
            seeds,
            vec![("magicDst".to_string(), vec![Value::Addr(NodeAddr(3))])]
        );
        // Disabled magic pass means nothing to seed.
        let off = pipeline.clone().with_passes(PassSet::OFF);
        assert!(off
            .seeds_for("pathDst", Value::Addr(NodeAddr(7)))
            .is_empty());
    }

    #[test]
    fn magic_spec_without_base_rules_errors() {
        let p = programs::shortest_path("");
        let pipeline = Pipeline::new(
            vec![MagicSpec::new("nosuch", "m", MagicBinding::HeadArg(0))],
            None,
        );
        assert!(optimize(&p, &pipeline).is_err());
    }
}
