//! Network Datalog (NDlog) language frontend.
//!
//! NDlog (Section 2 of the paper) is a restricted variant of Datalog for
//! declarative networking. Its distinguishing features are:
//!
//! * every predicate carries a **location specifier** as its first
//!   attribute (`@S`, `@D`, ...), giving the query writer explicit control
//!   over data placement;
//! * **link relations** (`#link(@src, @dst, ...)`) are stored relations that
//!   describe the physical connectivity of the network and may never be
//!   derived;
//! * non-local rules must be **link-restricted** (Definition 5), which
//!   guarantees that a program can be rewritten so that every rule body is
//!   evaluated at a single node and all communication travels along links.
//!
//! This crate provides the complete language pipeline up to (but not
//! including) execution:
//!
//! | module | role |
//! |---|---|
//! | [`value`] | runtime values: addresses, numbers, strings, path vectors |
//! | [`ast`] | programs, rules, literals, atoms, terms, expressions |
//! | [`lexer`] / [`parser`] | text syntax → AST |
//! | [`interactive`] | the shell/service command dialect (`+`, `-`, `?-`, meta) |
//! | [`validate`] | the four NDlog syntactic constraints of Definition 6 |
//! | [`localize`] | the rule-localization rewrite of Algorithm 2 |
//! | [`seminaive`] | the semi-naive delta rewrite (rule strands) |
//! | [`magic`] | magic-sets rewriting (Section 5.1.2) |
//! | [`reorder`] | predicate reordering: bottom-up ↔ top-down variants |
//! | [`optimizer`] | the rewrite pipeline composing magic + reordering |
//! | [`aggsel`] | aggregate-selection inference (Section 5.1.1) |
//! | [`programs`] | the canonical NDlog programs used by the paper |
//!
//! # Optimizer pipeline
//!
//! Programs reach the planner through [`optimizer::optimize`], which runs
//! the Section 5.1.2 rewrites as composable program-to-program passes in a
//! fixed order:
//!
//! 1. **Predicate reordering** ([`reorder`]) — controls the join order
//!    (bottom-up `LinkFirst` vs top-down `LinkLast`); constraints always
//!    trail the predicates.
//! 2. **Magic sets** ([`magic`]) — one [`optimizer::MagicSpec`] per
//!    constrained recursion prepends a magic guard to the base rules and
//!    registers the magic table's materialization; running after the
//!    reorder pass guarantees the guard stays at body position 0.
//!
//! Both passes preserve the queried results (magic restricted to the
//! seeded constants), and the [`optimizer::Report`] records the applied
//! passes and `b`/`f` adornments. The canonical magic variants in
//! [`programs`] are *derived* through this pipeline rather than written by
//! hand, and the experiment/serve layers use the same entry point, so
//! optimized and unoptimized executions differ only by the pipeline
//! configuration. Plan-time decisions that need runtime statistics —
//! cost-based join ranking, shared-subplan detection — live downstream in
//! `ndlog-core`/`ndlog-runtime`.
//!
//! The execution engines live in `ndlog-runtime` (single node) and
//! `ndlog-core` (distributed).

pub mod aggsel;
pub mod ast;
pub mod error;
pub mod interactive;
pub mod lexer;
pub mod localize;
pub mod magic;
pub mod optimizer;
pub mod parser;
pub mod programs;
pub mod reorder;
pub mod seminaive;
pub mod validate;
pub mod value;

pub use ast::{
    AggFunc, Aggregate, Assignment, Atom, BinOp, Expr, Literal, Program, Rule, TableDecl, Term,
    Variable,
};
pub use error::{LangError, ParseError, ValidationError};
pub use interactive::{parse_command, parse_session, Command, MetaCommand};
pub use optimizer::{optimize, MagicSpec, Optimized, PassSet, Pipeline};
pub use parser::parse_program;
pub use validate::validate;
pub use value::Value;
