//! Centralized evaluation strategies: SN, BSN and PSN (Section 3).
//!
//! The [`Evaluator`] runs a complete NDlog program on a single node,
//! ignoring locations (every relation is local). It exists for three
//! purposes:
//!
//! 1. as the reference implementation against which the distributed engine
//!    is checked (Theorem 1: PSN computes the same fixpoint as SN);
//! 2. to compare the three evaluation strategies of Section 3 — classic
//!    **semi-naive** (Algorithm 1), **buffered semi-naive** (which may
//!    defer any buffered tuple to a later local iteration) and **pipelined
//!    semi-naive** (Algorithm 3, one tuple at a time with timestamp-guarded
//!    joins) — including the duplicate-inference bookkeeping of Theorem 2;
//! 3. to exercise incremental updates (insertions, deletions, updates of
//!    base tuples) against a quiesced store, the centralized half of the
//!    eventual-consistency argument (Theorem 3).
//!
//! Insertions cascade through the strands pipelined; deletions take the
//! DRed path ([`crate::dred`]): every delta that actually removes a stored
//! tuple — an external deletion or the old half of a primary-key
//! replacement — seeds an over-delete of its downstream closure (with the
//! affected aggregate groups pinned) followed by re-derivation of the
//! survivors. Because that pass never consults a derivation count, the
//! incremental results match a from-scratch evaluation for *any* initial
//! strategy. Every strategy restricts a trigger's joins to tuples applied
//! before it (its own store timestamp), so no strategy repeats an
//! inference when two deltas of the same round join each other — SN, BSN
//! and PSN agree on stores down to per-tuple derivation counts, which
//! `tests/optimizer.rs` relies on for the magic-sets differential
//! property.

use crate::aggview::AggregateView;
use crate::batch::{BatchOutput, BatchScratch, BatchTrigger};
use crate::expr::EvalError;
use crate::store::Store;
use crate::strand::{CompiledStrand, Derivation};
use crate::tuple::{Tuple, TupleDelta};
use ndlog_lang::seminaive::delta_rewrite_full;
use ndlog_lang::{Program, Rule};
use std::collections::VecDeque;

/// Which evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Classic semi-naive evaluation (Algorithm 1): complete iterations,
    /// each consuming every delta buffered by the previous iteration.
    SemiNaive,
    /// Buffered semi-naive: like SN, but a local iteration may flush only
    /// part of the buffer (here: at most `batch` tuples), deferring the
    /// rest to a future iteration. Produces the same fixpoint.
    Buffered {
        /// Maximum number of buffered tuples flushed per iteration.
        batch: usize,
    },
    /// Pipelined semi-naive evaluation (Algorithm 3): one tuple at a time,
    /// joins restricted to same-or-older timestamps.
    Pipelined,
}

/// Statistics of an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of iterations (SN/BSN) or processed tuples (PSN); tuples
    /// removed by DRed deletion passes count here too.
    pub iterations: usize,
    /// Strand firings that produced at least one derivation.
    pub derivations: usize,
    /// Derivations whose tuple was already stored (the duplicate
    /// inferences that Theorem 2 is about minimizing).
    pub redundant_derivations: usize,
    /// Total deltas enqueued for processing.
    pub tuples_processed: usize,
    /// Joins answered by a secondary-index probe, counted per binding
    /// environment (one per trigger per atom). Identical across
    /// tuple-at-a-time, ungrouped-batch and grouped-batch evaluation.
    pub logical_probes: usize,
    /// Index bucket lookups actually executed. Key-grouped batch probing
    /// answers every same-key trigger of a batch with one lookup, so this
    /// is `≤ logical_probes`; the tuple-at-a-time and ungrouped paths
    /// report the two counters equal.
    pub distinct_probes: usize,
    /// Joins that fell back to scanning a relation.
    pub scans: usize,
    /// Stored tuples examined across all joins — the computation-overhead
    /// counterpart of the paper's communication metrics. With probe plans
    /// this grows with the number of matches, not with relation sizes.
    pub tuples_examined: usize,
}

impl EvalStats {
    /// Fold join-level counters into the run statistics.
    pub fn absorb_joins(&mut self, joins: crate::strand::JoinStats) {
        self.logical_probes += joins.logical_probes;
        self.distinct_probes += joins.distinct_probes;
        self.scans += joins.scans;
        self.tuples_examined += joins.tuples_examined;
    }
}

impl std::ops::AddAssign for EvalStats {
    fn add_assign(&mut self, other: EvalStats) {
        self.iterations += other.iterations;
        self.derivations += other.derivations;
        self.redundant_derivations += other.redundant_derivations;
        self.tuples_processed += other.tuples_processed;
        self.logical_probes += other.logical_probes;
        self.distinct_probes += other.distinct_probes;
        self.scans += other.scans;
        self.tuples_examined += other.tuples_examined;
    }
}

/// The counter-wise difference of two cumulative snapshots (e.g. "work
/// attributable to the update bursts" = after − before). Saturates at zero.
impl std::ops::Sub for EvalStats {
    type Output = EvalStats;
    fn sub(self, earlier: EvalStats) -> EvalStats {
        EvalStats {
            iterations: self.iterations.saturating_sub(earlier.iterations),
            derivations: self.derivations.saturating_sub(earlier.derivations),
            redundant_derivations: self
                .redundant_derivations
                .saturating_sub(earlier.redundant_derivations),
            tuples_processed: self
                .tuples_processed
                .saturating_sub(earlier.tuples_processed),
            logical_probes: self.logical_probes.saturating_sub(earlier.logical_probes),
            distinct_probes: self.distinct_probes.saturating_sub(earlier.distinct_probes),
            scans: self.scans.saturating_sub(earlier.scans),
            tuples_examined: self.tuples_examined.saturating_sub(earlier.tuples_examined),
        }
    }
}

/// A single-node NDlog evaluator.
pub struct Evaluator {
    store: Store,
    strands: Vec<CompiledStrand>,
    views: Vec<AggregateView>,
    /// Facts declared in the program, loaded at construction.
    base_facts: Vec<TupleDelta>,
    /// Drain the work queue in delta batches through the strands'
    /// slot-compiled plans (the default). Off = the tuple-at-a-time
    /// reference loop, kept for differential testing.
    batching: bool,
    /// Share index probes across same-key triggers of a batch (the
    /// default). Off = the PR 4 per-trigger probing, kept for
    /// differential testing.
    probe_grouping: bool,
    /// Probe signatures shared by two or more strands
    /// ([`crate::subplan::shared_signatures`], computed once at plan
    /// time). Non-empty arms a per-round cross-rule
    /// [`crate::subplan::ProbeCache`] on the grouped batch path, so each
    /// distinct `(relation, cols, key)`
    /// lookup of a round executes once across every strand sharing it.
    shared_sigs: Vec<(String, Vec<usize>)>,
    /// Reusable flat buffers for the batch path.
    scratch: BatchScratch,
    batch_out: BatchOutput,
    /// Live-query hook: records visibility transitions of subscribed
    /// relations (see [`crate::tap`]).
    tap: crate::tap::DeltaTap,
}

impl Evaluator {
    /// Build an evaluator for a program. Aggregate-headed rules become
    /// incremental views; every other rule becomes a set of strands.
    pub fn new(program: &Program) -> Result<Self, String> {
        let (agg_rules, plain_rules): (Vec<Rule>, Vec<Rule>) = program
            .rules
            .iter()
            .cloned()
            .partition(|r| r.head.has_aggregate());

        let mut plain_program = program.clone();
        plain_program.rules = plain_rules;
        let strands: Vec<CompiledStrand> = delta_rewrite_full(&plain_program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();

        let mut views = Vec::new();
        for rule in &agg_rules {
            views.push(AggregateView::from_rule(rule)?);
        }

        let mut store = Store::for_program(program);
        // Build every secondary index the compiled probe plans and the
        // aggregate views' guard checks need, once, before any tuple
        // arrives.
        store.declare_indexes(&strands);
        for view in &views {
            for (relation, cols) in view.index_requirements() {
                store.declare_index(&relation, &cols);
            }
        }
        let base_facts = program
            .rules
            .iter()
            .filter(|r| r.is_fact())
            .map(|r| {
                let tuple = crate::strand::project_head(&r.head, &Default::default())
                    .map_err(|e| format!("fact {} is not ground: {e}", r.label))?;
                Ok(TupleDelta::insert(r.head.name.clone(), tuple))
            })
            .collect::<Result<Vec<_>, String>>()?;

        let shared_sigs = crate::subplan::shared_signatures(&strands);
        Ok(Evaluator {
            store,
            strands,
            views,
            base_facts,
            batching: true,
            probe_grouping: true,
            shared_sigs,
            scratch: BatchScratch::default(),
            batch_out: BatchOutput::default(),
            tap: crate::tap::DeltaTap::new(),
        })
    }

    /// The live-query delta tap (subscribe/unsubscribe relations).
    pub fn tap(&self) -> &crate::tap::DeltaTap {
        &self.tap
    }

    /// Mutable access to the delta tap.
    pub fn tap_mut(&mut self) -> &mut crate::tap::DeltaTap {
        &mut self.tap
    }

    /// Take the visibility transitions recorded since the last drain, in
    /// store order.
    pub fn drain_tap(&mut self) -> Vec<TupleDelta> {
        self.tap.drain()
    }

    /// Toggle batch-delta evaluation (on by default). The tuple-at-a-time
    /// loop survives as the reference implementation: a run with batching
    /// off produces the identical store and statistics except for
    /// probe-count accounting — a batch fires every queued delta against
    /// one store snapshot, so `tuples_examined` can differ (buckets probed
    /// before, rather than after, a sibling delta's insertions are
    /// PSN-invisible either way but still counted), and a batch invalidated
    /// by a mid-batch removal re-fires its remainder, re-counting those
    /// probes. See `tests/properties.rs` for the differential property.
    pub fn set_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Toggle key-grouped probe sharing inside the batch path (on by
    /// default; irrelevant when batching is off). With grouping off every
    /// trigger probes the index itself, exactly the PR 4 behaviour: the
    /// stores and all statistics match the grouped run bit-for-bit except
    /// `EvalStats::distinct_probes`, which grouping shrinks to the bucket
    /// lookups actually executed. The DRed over-delete closure always
    /// groups — its logical accounting is unaffected, which is what the
    /// differential property compares.
    pub fn set_probe_grouping(&mut self, on: bool) {
        self.probe_grouping = on;
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store (e.g. to pre-load base tuples).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// The compiled strands (useful for inspection in tests).
    pub fn strands(&self) -> &[CompiledStrand] {
        &self.strands
    }

    /// All tuples of a relation.
    pub fn results(&self, relation: &str) -> Vec<Tuple> {
        self.store.tuples(relation)
    }

    /// Insert a base fact (does not run evaluation).
    ///
    /// Returns the deltas that still need processing; they are queued
    /// internally by [`Evaluator::run`] / [`Evaluator::update`], so callers
    /// normally ignore the return value.
    pub fn insert_fact(&mut self, relation: &str, tuple: Tuple) {
        self.base_facts
            .push(TupleDelta::insert(relation.to_string(), tuple));
    }

    /// Run the program to fixpoint from the currently loaded base facts.
    pub fn run(&mut self, strategy: Strategy) -> Result<EvalStats, EvalError> {
        let pending = std::mem::take(&mut self.base_facts);
        self.process(pending, strategy)
    }

    /// Apply an external update (insertion or deletion of a base tuple) to
    /// a quiesced store and run incremental maintenance to fixpoint using
    /// PSN — the centralized update handling of Section 4.1.
    pub fn update(&mut self, delta: TupleDelta) -> Result<EvalStats, EvalError> {
        self.process(vec![delta], Strategy::Pipelined)
    }

    /// Apply a whole burst of external updates at once and run incremental
    /// maintenance to fixpoint using PSN. Equivalent to applying the
    /// deltas one [`Evaluator::update`] at a time, but the burst enters
    /// the engine as one delta batch: removals seed a single DRed pass and
    /// insertions amortize their strand firings — the churn shape one
    /// simulator epoch delivers to a node.
    pub fn update_batch(&mut self, deltas: Vec<TupleDelta>) -> Result<EvalStats, EvalError> {
        self.process(deltas, Strategy::Pipelined)
    }

    /// Core driver shared by all strategies.
    ///
    /// The insert-only work queue holds deltas that have been applied to
    /// the store (and therefore have a timestamp) but whose strands have
    /// not fired. Deletions never enter the queue: every delta whose
    /// application actually removed a tuple — an external deletion or the
    /// old half of a primary-key replacement — is collected in `pending`
    /// and consumed synchronously by a DRed pass ([`crate::dred`]), whose
    /// re-derivation insertions re-enter the queue like any other insert.
    fn process(
        &mut self,
        external: Vec<TupleDelta>,
        strategy: Strategy,
    ) -> Result<EvalStats, EvalError> {
        let mut stats = EvalStats::default();
        let mut queue: VecDeque<(TupleDelta, u64)> = VecDeque::new();
        let mut pending: Vec<TupleDelta> = Vec::new();
        for delta in external {
            self.ingest(delta, &mut queue, &mut pending, &mut stats);
        }
        self.drain_deletions(&mut queue, &mut pending, &mut stats)?;

        match strategy {
            // Batch-delta PSN (the default): drain the whole queue as one
            // delta batch per round. Firing a trigger before its siblings'
            // derivations are applied is PSN-exact — those derivations
            // carry timestamps above every batch trigger's visibility
            // limit, so the joins could not have seen them anyway.
            Strategy::Pipelined if self.batching => {
                while !queue.is_empty() {
                    let round: Vec<(TupleDelta, u64)> = queue.drain(..).collect();
                    let mut per_trigger = self.fire_batch_round(&round, &mut stats)?;
                    let mut consumed = round.len();
                    for (i, derived) in per_trigger.iter_mut().enumerate() {
                        stats.iterations += 1;
                        for derivation in derived.drain(..) {
                            stats.derivations += 1;
                            self.ingest(derivation.delta, &mut queue, &mut pending, &mut stats);
                        }
                        if !pending.is_empty() {
                            consumed = i + 1;
                            break;
                        }
                    }
                    // A mid-batch removal (a primary-key replacement or an
                    // external delete in the batch) invalidates the
                    // remaining precomputed firings: their triggers return
                    // to the queue front — still ahead of the derivations
                    // ingested above — and re-fire against the post-DRed
                    // store, exactly where the tuple-at-a-time loop would
                    // have fired them.
                    for entry in round.into_iter().skip(consumed).rev() {
                        queue.push_front(entry);
                    }
                    self.drain_deletions(&mut queue, &mut pending, &mut stats)?;
                }
            }
            // Tuple-at-a-time PSN: the reference loop, kept for
            // differential testing (see `Evaluator::set_batching`).
            Strategy::Pipelined => {
                while let Some((delta, seq)) = queue.pop_front() {
                    stats.iterations += 1;
                    self.fire_all(&delta, seq, &mut queue, &mut pending, &mut stats)?;
                    self.drain_deletions(&mut queue, &mut pending, &mut stats)?;
                }
            }
            Strategy::SemiNaive | Strategy::Buffered { .. } => {
                let batch = match strategy {
                    Strategy::Buffered { batch } => batch.max(1),
                    _ => usize::MAX,
                };
                while !queue.is_empty() {
                    stats.iterations += 1;
                    // Each trigger joins only tuples applied before it (its
                    // own store timestamp). That is the old/new separation
                    // of Algorithm 1 with footnote 2's ordering realised by
                    // apply order: when two deltas of the same iteration
                    // join each other, exactly one trigger — the later —
                    // sees the pair, so no inference is repeated.
                    let take = queue.len().min(batch);
                    let mut this_round: Vec<_> = queue.drain(..take).collect();
                    if self.batching {
                        // The whole iteration fires as delta batches. A
                        // mid-iteration removal re-fires the *remainder of
                        // this iteration* after the DRed pass — never
                        // starting a new iteration early.
                        while !this_round.is_empty() {
                            let mut per_trigger = self.fire_batch_round(&this_round, &mut stats)?;
                            let mut consumed = this_round.len();
                            for (i, derived) in per_trigger.iter_mut().enumerate() {
                                for derivation in derived.drain(..) {
                                    stats.derivations += 1;
                                    self.ingest(
                                        derivation.delta,
                                        &mut queue,
                                        &mut pending,
                                        &mut stats,
                                    );
                                }
                                if !pending.is_empty() {
                                    consumed = i + 1;
                                    break;
                                }
                            }
                            this_round.drain(..consumed);
                            self.drain_deletions(&mut queue, &mut pending, &mut stats)?;
                        }
                    } else {
                        for (delta, apply_seq) in this_round {
                            self.fire_all(&delta, apply_seq, &mut queue, &mut pending, &mut stats)?;
                            self.drain_deletions(&mut queue, &mut pending, &mut stats)?;
                        }
                    }
                }
            }
        }
        Ok(stats)
    }

    /// Fire every strand over a batch of applied-but-unfired insertion
    /// deltas against the current store snapshot, returning each trigger's
    /// derivations in exactly the order the tuple-at-a-time loop ingests
    /// them (strands in declaration order per trigger). Every trigger joins
    /// with its own apply timestamp as the visibility limit, so two deltas
    /// of the same batch that join each other derive the head exactly once
    /// (from the later trigger) under every strategy. Triggers whose
    /// tuple is no longer stored — over-deleted or replaced since being
    /// queued — yield nothing, mirroring [`Evaluator::fire_all`]'s skip;
    /// that status cannot change mid-batch because any removal interrupts
    /// the batch for a DRed pass before the next trigger is consumed.
    fn fire_batch_round(
        &mut self,
        batch: &[(TupleDelta, u64)],
        stats: &mut EvalStats,
    ) -> Result<Vec<Vec<Derivation>>, EvalError> {
        let mut per_trigger: Vec<Vec<Derivation>> = batch.iter().map(|_| Vec::new()).collect();
        let live: Vec<bool> = batch
            .iter()
            .map(|(delta, _)| {
                debug_assert_eq!(delta.sign, crate::tuple::Sign::Insert);
                self.store
                    .relation(&delta.relation)
                    .is_some_and(|r| r.contains(&delta.tuple))
            })
            .collect();
        let mut joins = crate::strand::JoinStats::default();
        // Arm the cross-rule probe cache for this round when the plan
        // found shared signatures: the store is frozen until every strand
        // of the round has fired, so cached candidate sets stay valid for
        // exactly the cache's lifetime.
        let mut cache = (self.probe_grouping && !self.shared_sigs.is_empty())
            .then(|| crate::subplan::ProbeCache::new(&self.shared_sigs));
        let mut triggers: Vec<BatchTrigger> = Vec::new();
        let mut indices: Vec<usize> = Vec::new();
        for strand in &self.strands {
            triggers.clear();
            indices.clear();
            for (i, (delta, seq)) in batch.iter().enumerate() {
                if live[i] && strand.trigger_relation() == delta.relation {
                    triggers.push(BatchTrigger {
                        delta,
                        seq_limit: *seq,
                    });
                    indices.push(i);
                }
            }
            if triggers.is_empty() {
                continue;
            }
            match (self.probe_grouping, cache.as_mut()) {
                (true, Some(cache)) => strand.fire_batch_shared(
                    &self.store,
                    &triggers,
                    &mut joins,
                    &mut self.scratch,
                    &mut self.batch_out,
                    cache,
                )?,
                (true, None) => strand.fire_batch(
                    &self.store,
                    &triggers,
                    &mut joins,
                    &mut self.scratch,
                    &mut self.batch_out,
                )?,
                (false, _) => strand.fire_batch_ungrouped(
                    &self.store,
                    &triggers,
                    &mut joins,
                    &mut self.scratch,
                    &mut self.batch_out,
                )?,
            }
            self.batch_out
                .drain_into(|local, derivation| per_trigger[indices[local]].push(derivation));
        }
        stats.absorb_joins(joins);
        Ok(per_trigger)
    }

    /// Fire every strand triggered by an insertion delta and ingest the
    /// derivations. Skips the firing when the delta's tuple is no longer
    /// stored: a DRed pass that ran between the ingest and this firing
    /// over-deleted it (or a replacement vacated it), so its consequences
    /// are moot — if the tuple was re-derived, the re-derivation's own
    /// queued insert fires the same strands.
    fn fire_all(
        &mut self,
        delta: &TupleDelta,
        seq_limit: u64,
        queue: &mut VecDeque<(TupleDelta, u64)>,
        pending: &mut Vec<TupleDelta>,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        debug_assert_eq!(delta.sign, crate::tuple::Sign::Insert);
        if !self
            .store
            .relation(&delta.relation)
            .is_some_and(|r| r.contains(&delta.tuple))
        {
            return Ok(());
        }
        let mut joins = crate::strand::JoinStats::default();
        // Collect derivations first: strands borrow the store immutably.
        let mut derived = Vec::new();
        for strand in &self.strands {
            if strand.trigger_relation() != delta.relation {
                continue;
            }
            derived.extend(strand.fire_counted(&self.store, delta, seq_limit, &mut joins)?);
        }
        stats.absorb_joins(joins);
        for derivation in derived {
            stats.derivations += 1;
            self.ingest(derivation.delta, queue, pending, stats);
        }
        Ok(())
    }

    /// Run DRed passes until no removal is pending: over-delete the
    /// closure of the pending seeds, rebuild the pinned aggregate groups,
    /// and ingest the re-derivation insertions (which may replace keyed
    /// tuples and thereby queue further seeds — hence the loop).
    fn drain_deletions(
        &mut self,
        queue: &mut VecDeque<(TupleDelta, u64)>,
        pending: &mut Vec<TupleDelta>,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        while !pending.is_empty() {
            let seeds = std::mem::take(pending);
            let mut joins = crate::strand::JoinStats::default();
            let marking = crate::dred::over_delete(
                &mut self.store,
                &self.strands,
                &self.views,
                seeds,
                None,
                &mut joins,
            )?;
            // Every marked tuple — external seeds, replacement old halves
            // and the over-deleted closure — actually left the store;
            // re-derived survivors come back through `ingest` as inserts.
            for removal in &marking.removed {
                self.tap.record(removal);
            }
            // Each removal is one processed delta (and one PSN-style
            // iteration): the DRed counterpart of popping a deletion off
            // the work queue.
            stats.iterations += marking.removed.len();
            stats.tuples_processed += marking.removed.len();
            // Rebuild every pinned group from the post-removal store; the
            // new aggregate outputs cascade like ordinary insertions.
            let mut inserts: Vec<TupleDelta> = Vec::new();
            for (view_idx, key) in &marking.dirty_groups {
                inserts.extend(self.views[*view_idx].rebuild_group(&self.store, key, &mut joins));
            }
            // One-step re-derivation of each over-deleted tuple; survivors
            // restored further downstream come from the insert cascade.
            for candidate in marking.rederive_candidates() {
                inserts.extend(crate::dred::rederive_inserts(
                    &self.store,
                    &self.strands,
                    candidate,
                    &mut joins,
                )?);
            }
            stats.absorb_joins(joins);
            for delta in inserts {
                stats.derivations += 1;
                self.ingest(delta, queue, pending, stats);
            }
        }
        Ok(())
    }

    /// Apply a delta to the store, feed aggregate views, and enqueue
    /// whatever actually changed. Actual removals (external deletions and
    /// the old halves of replacements) go to `pending` for the next DRed
    /// pass instead of the queue; the views are *not* fed deletions — the
    /// pass rebuilds the affected groups from the store (group pinning).
    fn ingest(
        &mut self,
        delta: TupleDelta,
        queue: &mut VecDeque<(TupleDelta, u64)>,
        pending: &mut Vec<TupleDelta>,
        stats: &mut EvalStats,
    ) {
        let effect = self.store.apply(&delta);
        if effect.propagate.is_empty() {
            // Duplicate derivation or stale deletion: absorbed by the count
            // algorithm, nothing to propagate.
            if delta.sign == crate::tuple::Sign::Insert {
                stats.redundant_derivations += 1;
            }
            return;
        }
        for prop in effect.propagate {
            if prop.sign == crate::tuple::Sign::Delete {
                pending.push(prop);
                continue;
            }
            stats.tuples_processed += 1;
            // A propagated insert is a 0 → >0 visibility transition.
            self.tap.record(&prop);
            // Aggregate views react to every real insertion of their
            // source.
            let mut view_outputs = Vec::new();
            for view in &mut self.views {
                if view.source_relation() == prop.relation {
                    view_outputs.extend(view.apply(&self.store, &prop));
                }
            }
            queue.push_back((prop, effect.seq));
            for out in view_outputs {
                self.ingest(out, queue, pending, stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Sign;
    use ndlog_lang::{parse_program, programs, Value};
    use ndlog_net::NodeAddr;
    use std::collections::BTreeSet;

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(vec![addr(s), addr(d), Value::Float(c)])
    }

    /// Load the bidirectional links of a small diamond network:
    ///   0 -5- 1, 0 -1- 2, 2 -1- 1, 1 -1- 3   (Figure 2's shape).
    fn load_figure2_links(eval: &mut Evaluator, relation: &str) {
        let edges = [(0, 1, 5.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)];
        for (a, b, c) in edges {
            eval.insert_fact(relation, link(a, b, c));
            eval.insert_fact(relation, link(b, a, c));
        }
    }

    fn shortest_path_results(strategy: Strategy) -> (Vec<Tuple>, EvalStats) {
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut eval, "link");
        let stats = eval.run(strategy).unwrap();
        (eval.results("shortestPath"), stats)
    }

    #[test]
    fn shortest_paths_match_dijkstra_shape() {
        let (results, stats) = shortest_path_results(Strategy::Pipelined);
        assert!(stats.derivations > 0);
        // 4 nodes, all pairs reachable -> 12 shortest paths.
        assert_eq!(results.len(), 12);
        // Check a few known costs: 0 -> 1 goes via 2 with cost 2 (not the
        // direct 5-cost link), 0 -> 3 costs 3.
        let cost = |s: u32, d: u32| -> f64 {
            results
                .iter()
                .find(|t| t.get(0) == Some(&addr(s)) && t.get(1) == Some(&addr(d)))
                .and_then(|t| t.get(3))
                .and_then(Value::as_f64)
                .unwrap()
        };
        assert_eq!(cost(0, 1), 2.0);
        assert_eq!(cost(0, 2), 1.0);
        assert_eq!(cost(0, 3), 3.0);
        assert_eq!(cost(3, 0), 3.0, "symmetric because links are bidirectional");
        // The winning path vector for 0 -> 1 is [0, 2, 1].
        let path01 = results
            .iter()
            .find(|t| t.get(0) == Some(&addr(0)) && t.get(1) == Some(&addr(1)))
            .unwrap();
        assert_eq!(
            path01.get(2),
            Some(&Value::list(vec![addr(0), addr(2), addr(1)]))
        );
    }

    #[test]
    fn theorem1_all_strategies_agree() {
        let (psn, _) = shortest_path_results(Strategy::Pipelined);
        let (sn, _) = shortest_path_results(Strategy::SemiNaive);
        let (bsn1, _) = shortest_path_results(Strategy::Buffered { batch: 1 });
        let (bsn3, _) = shortest_path_results(Strategy::Buffered { batch: 3 });
        let as_set = |v: &[Tuple]| v.iter().cloned().collect::<BTreeSet<_>>();
        assert_eq!(as_set(&psn), as_set(&sn));
        assert_eq!(as_set(&psn), as_set(&bsn1));
        assert_eq!(as_set(&psn), as_set(&bsn3));
    }

    #[test]
    fn theorem2_psn_has_no_redundant_derivations_on_a_line() {
        // On a directed line 0 -> 1 -> 2 -> 3 every reachability fact has a
        // unique derivation, so a strategy with no repeated inferences must
        // report zero redundant derivations.
        let program = parse_program(
            r#"
            rc1 reach(@S,@D) :- #edge(@S,@D).
            rc2 reach(@S,@D) :- #edge(@S,@Z), reach(@Z,@D).
            "#,
        )
        .unwrap();
        let mut eval = Evaluator::new(&program).unwrap();
        for i in 0..3u32 {
            eval.insert_fact("edge", Tuple::new(vec![addr(i), addr(i + 1)]));
        }
        let stats = eval.run(Strategy::Pipelined).unwrap();
        assert_eq!(eval.results("reach").len(), 6);
        assert_eq!(stats.redundant_derivations, 0);
    }

    #[test]
    fn reachability_on_cycle_terminates() {
        let program = programs::reachability("");
        let mut eval = Evaluator::new(&program).unwrap();
        // Directed triangle 0 -> 1 -> 2 -> 0.
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 0)] {
            eval.insert_fact("link", link(a, b, 1.0));
        }
        eval.run(Strategy::Pipelined).unwrap();
        // All ordered pairs including self-loops through the cycle.
        assert_eq!(eval.results("reachable").len(), 9);
    }

    #[test]
    fn facts_in_program_text_are_loaded() {
        let program = parse_program(
            r#"
            f1 link(@n0, @n1, 1).
            f2 link(@n1, @n2, 1).
            rc1 reach(@S,@D) :- #link(@S,@D,C).
            rc2 reach(@S,@D) :- #link(@S,@Z,C), reach(@Z,@D).
            "#,
        )
        .unwrap();
        let mut eval = Evaluator::new(&program).unwrap();
        eval.run(Strategy::SemiNaive).unwrap();
        assert_eq!(eval.results("reach").len(), 3);
    }

    #[test]
    fn incremental_insertion_matches_from_scratch() {
        // Theorem 3 flavour: run, then insert a new link incrementally; the
        // result must equal running from scratch with all links present.
        let program = programs::shortest_path("");
        let mut incremental = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut incremental, "link");
        incremental.run(Strategy::Pipelined).unwrap();
        // New links 3 - 4 appear after the initial fixpoint.
        incremental
            .update(TupleDelta::insert("link", link(3, 4, 1.0)))
            .unwrap();
        incremental
            .update(TupleDelta::insert("link", link(4, 3, 1.0)))
            .unwrap();

        let mut scratch = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut scratch, "link");
        scratch.insert_fact("link", link(3, 4, 1.0));
        scratch.insert_fact("link", link(4, 3, 1.0));
        scratch.run(Strategy::Pipelined).unwrap();

        let a: BTreeSet<_> = incremental.results("shortestPath").into_iter().collect();
        let b: BTreeSet<_> = scratch.results("shortestPath").into_iter().collect();
        assert_eq!(a, b);
        // 5 nodes all-pairs.
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn incremental_deletion_matches_from_scratch() {
        let program = programs::shortest_path("");
        let mut incremental = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut incremental, "link");
        incremental.run(Strategy::Pipelined).unwrap();
        // Delete the cheap 0 - 2 links: 0 -> 1 must revert to the direct
        // cost-5 link.
        incremental
            .update(TupleDelta::delete("link", link(0, 2, 1.0)))
            .unwrap();
        incremental
            .update(TupleDelta::delete("link", link(2, 0, 1.0)))
            .unwrap();

        let mut scratch = Evaluator::new(&program).unwrap();
        for (a, b, c) in [(0, 1, 5.0), (2, 1, 1.0), (1, 3, 1.0)] {
            scratch.insert_fact("link", link(a, b, c));
            scratch.insert_fact("link", link(b, a, c));
        }
        scratch.run(Strategy::Pipelined).unwrap();

        let a: BTreeSet<_> = incremental.results("shortestPath").into_iter().collect();
        let b: BTreeSet<_> = scratch.results("shortestPath").into_iter().collect();
        assert_eq!(a, b);
        let cost01 = a
            .iter()
            .find(|t| t.get(0) == Some(&addr(0)) && t.get(1) == Some(&addr(1)))
            .and_then(|t| t.get(3))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(cost01, 5.0);
    }

    #[test]
    fn update_is_delete_then_insert() {
        // Section 4: an update to a base tuple is a deletion followed by an
        // insertion. Updating link(0,1) from cost 5 to cost 1 changes the
        // shortest path 0 -> 1 to the direct link.
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut eval, "link");
        eval.run(Strategy::Pipelined).unwrap();
        eval.update(TupleDelta::delete("link", link(0, 1, 5.0)))
            .unwrap();
        eval.update(TupleDelta::insert("link", link(0, 1, 0.5)))
            .unwrap();
        let results = eval.results("shortestPath");
        let best01 = results
            .iter()
            .find(|t| t.get(0) == Some(&addr(0)) && t.get(1) == Some(&addr(1)))
            .unwrap();
        assert_eq!(best01.get(3), Some(&Value::Float(0.5)));
        assert_eq!(best01.get(2), Some(&Value::list(vec![addr(0), addr(1)])));
    }

    #[test]
    fn distance_vector_program_runs() {
        let program = programs::distance_vector("", 8);
        let mut eval = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut eval, "link");
        eval.run(Strategy::Pipelined).unwrap();
        let best = eval.results("bestRoute");
        // 12 proper all-pairs routes plus 4 self-routes (the program bounds
        // recursion by hop count rather than a path-vector cycle check, so
        // round trips like 0 -> 1 -> 0 are legitimate derivations).
        assert_eq!(best.len(), 16);
        // bestRoute(0, 1, nexthop=2, cost=2): next hop goes through node 2.
        let b01 = best
            .iter()
            .find(|t| t.get(0) == Some(&addr(0)) && t.get(1) == Some(&addr(1)))
            .unwrap();
        assert_eq!(b01.get(2), Some(&addr(2)));
    }

    #[test]
    fn stats_are_populated() {
        let (_, stats) = shortest_path_results(Strategy::SemiNaive);
        assert!(stats.iterations >= 2);
        assert!(stats.tuples_processed > 0);
        assert!(stats.derivations >= stats.redundant_derivations);
        let (_, psn_stats) = shortest_path_results(Strategy::Pipelined);
        assert!(psn_stats.iterations == psn_stats.tuples_processed);
    }

    #[test]
    fn bound_joins_examine_o_matches_not_o_n() {
        // A 1000-tuple `big` relation joined on a bound column: the probe
        // plan must examine only the matching tuples, not the whole
        // relation per trigger.
        let program = parse_program(
            r#"
            j1 out(@S, V) :- probe(@S), big(@S, V).
            "#,
        )
        .unwrap();
        let mut eval = Evaluator::new(&program).unwrap();
        // 1000 tuples spread over 100 groups: 10 matches per group.
        for i in 0..1000u32 {
            eval.insert_fact(
                "big",
                Tuple::new(vec![addr(i % 100), Value::Int(i64::from(i))]),
            );
        }
        eval.run(Strategy::Pipelined).unwrap();

        let stats = eval
            .update(TupleDelta::insert("probe", Tuple::new(vec![addr(7)])))
            .unwrap();
        assert_eq!(eval.results("out").len(), 10);
        assert!(stats.logical_probes >= 1, "the bound join must probe");
        assert!(
            stats.distinct_probes <= stats.logical_probes,
            "grouping can only shrink executed probes"
        );
        assert!(
            stats.tuples_examined <= 30,
            "examined {} tuples for 10 matches on a 1000-tuple relation — \
             the join scanned instead of probing",
            stats.tuples_examined
        );
        // The strand triggered by `big` insertions joins `probe` (bound on
        // @S) the other way; nothing in this program ever needs a full scan.
        assert_eq!(stats.scans, 0, "no join should fall back to scanning");
    }

    #[test]
    fn rederivation_does_not_double_count() {
        // Regression: rederivation must not count a derivation that an
        // applied-but-unfired queued insert will also produce. Both `t`
        // and `out` are keyed so replacements make their counts lossy;
        // after all base tuples are deleted, nothing may survive.
        let program = parse_program(
            r#"
            materialize(t, keys(1)).
            materialize(out, keys(1)).
            a t(@S, C) :- p(@S, C).
            b t(@S, C) :- q(@S, C).
            c out(@S, C) :- t(@S, C).
            d out(@S, C) :- r(@S, C).
            "#,
        )
        .unwrap();
        let mut eval = Evaluator::new(&program).unwrap();
        let fact = |v: i64| Tuple::new(vec![addr(1), Value::Int(v)]);
        eval.insert_fact("p", fact(5));
        eval.run(Strategy::Pipelined).unwrap();
        // Make `out` lossy (r(1,9) replaces out(1,5), then dies).
        eval.update(TupleDelta::insert("r", fact(9))).unwrap();
        eval.update(TupleDelta::delete("r", fact(9))).unwrap();
        // Make `t` lossy (q(1,7) replaces t(1,5), then dies): the deletion
        // cascade restores t(1,5) and out(1,5) exactly once each.
        eval.update(TupleDelta::insert("q", fact(7))).unwrap();
        eval.update(TupleDelta::delete("q", fact(7))).unwrap();
        assert_eq!(eval.results("t"), vec![fact(5)]);
        assert_eq!(eval.results("out"), vec![fact(5)]);
        // With the last base tuple gone, every derived tuple must go too.
        eval.update(TupleDelta::delete("p", fact(5))).unwrap();
        assert!(eval.results("t").is_empty());
        assert!(
            eval.results("out").is_empty(),
            "a double-counted rederivation left a stale underivable tuple"
        );
    }

    #[test]
    fn rederivation_agrees_across_strategies_on_lossy_workload() {
        // The double-count program again, but with every fact loaded up
        // front so the replacement/rederivation churn happens *during* the
        // initial run under each strategy (SN and BSN fire with the wider
        // iteration visibility limit; rederivation must still use each
        // delta's own apply timestamp). All strategies must agree, and a
        // full teardown must leave nothing behind.
        let src = r#"
            materialize(t, keys(1)).
            materialize(out, keys(1)).
            a t(@S, C) :- p(@S, C).
            b t(@S, C) :- q(@S, C).
            c out(@S, C) :- t(@S, C).
            d out(@S, C) :- r(@S, C).
            "#;
        let fact = |v: i64| Tuple::new(vec![addr(1), Value::Int(v)]);
        let run = |strategy: Strategy| -> (Vec<Tuple>, Vec<Tuple>) {
            let program = parse_program(src).unwrap();
            let mut eval = Evaluator::new(&program).unwrap();
            eval.insert_fact("p", fact(5));
            eval.insert_fact("q", fact(7));
            eval.insert_fact("r", fact(9));
            eval.run(strategy).unwrap();
            // Tear everything down incrementally (updates are PSN).
            eval.update(TupleDelta::delete("r", fact(9))).unwrap();
            eval.update(TupleDelta::delete("q", fact(7))).unwrap();
            eval.update(TupleDelta::delete("p", fact(5))).unwrap();
            (eval.results("t"), eval.results("out"))
        };
        for strategy in [
            Strategy::Pipelined,
            Strategy::SemiNaive,
            Strategy::Buffered { batch: 1 },
            Strategy::Buffered { batch: 2 },
        ] {
            let (t, out) = run(strategy);
            assert!(t.is_empty(), "{strategy:?} left stale t tuples: {t:?}");
            assert!(
                out.is_empty(),
                "{strategy:?} left stale out tuples: {out:?}"
            );
        }
    }

    #[test]
    fn evaluator_declares_indexes_up_front() {
        let program = programs::shortest_path("");
        let eval = Evaluator::new(&program).unwrap();
        // Every non-trigger body atom with bound columns got its signature
        // declared before any tuple arrived.
        let mut declared = 0usize;
        for name in eval
            .store()
            .relation_names()
            .map(str::to_string)
            .collect::<Vec<_>>()
        {
            declared += eval
                .store()
                .relation(&name)
                .unwrap()
                .index_signatures()
                .count();
        }
        assert!(declared > 0, "shortest-path joins require indexes");
        let link = eval.store().relation("link").unwrap();
        assert!(
            link.index_signatures().next().is_some(),
            "path-triggered strands probe link on its source column"
        );
    }

    #[test]
    fn ungrounded_fact_is_rejected() {
        let program = parse_program("f link(@n0, X, 1).").unwrap();
        assert!(Evaluator::new(&program).is_err());
    }

    #[test]
    fn deletion_of_shared_subpath_cascades() {
        // Figure 6's scenario: deleting a link removes every path derived
        // from it, transitively.
        let program = programs::reachability("");
        let mut eval = Evaluator::new(&program).unwrap();
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            eval.insert_fact("link", link(a, b, 1.0));
        }
        eval.run(Strategy::Pipelined).unwrap();
        assert_eq!(eval.results("reachable").len(), 6);
        eval.update(TupleDelta::delete("link", link(1, 2, 1.0)))
            .unwrap();
        let left: BTreeSet<_> = eval
            .results("reachable")
            .into_iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_addr().unwrap(),
                    t.get(1).unwrap().as_addr().unwrap(),
                )
            })
            .collect();
        let expect: BTreeSet<_> = [(0u32, 1u32), (2, 3)]
            .into_iter()
            .map(|(a, b)| (NodeAddr(a), NodeAddr(b)))
            .collect();
        assert_eq!(left, expect);
    }

    #[test]
    fn deletions_emit_sign_delete_downstream() {
        let program = programs::reachability("");
        let mut eval = Evaluator::new(&program).unwrap();
        eval.insert_fact("link", link(0, 1, 1.0));
        eval.run(Strategy::Pipelined).unwrap();
        let stats = eval
            .update(TupleDelta {
                relation: "link".into(),
                tuple: link(0, 1, 1.0),
                sign: Sign::Delete,
            })
            .unwrap();
        assert!(stats.tuples_processed >= 2);
        assert!(eval.results("reachable").is_empty());
    }

    /// Replay a visibility-transition stream: apply each event to a set,
    /// asserting the per-tuple alternation invariant (never a second
    /// insert without an intervening retract, never a retract of an
    /// absent tuple).
    fn replay(events: &[TupleDelta]) -> BTreeSet<(String, Tuple)> {
        let mut set = BTreeSet::new();
        for event in events {
            let key = (event.relation.clone(), event.tuple.clone());
            match event.sign {
                Sign::Insert => assert!(set.insert(key), "double insert of {event}"),
                Sign::Delete => assert!(set.remove(&key), "retract of absent {event}"),
            }
        }
        set
    }

    #[test]
    fn tap_stream_reconstructs_subscribed_relations() {
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        eval.tap_mut().subscribe("shortestPath");
        eval.tap_mut().subscribe("path");
        load_figure2_links(&mut eval, "link");
        eval.run(Strategy::Pipelined).unwrap();

        let mut events = eval.drain_tap();
        // Deleting the cheap a—c edge retracts the shortest a→b route via c
        // (cost 2) and reinstates the direct cost-5 link: the subscriber
        // must see retract deltas, not just a final state.
        eval.update(TupleDelta::delete("link".to_string(), link(0, 2, 1.0)))
            .unwrap();
        eval.update(TupleDelta::delete("link".to_string(), link(2, 0, 1.0)))
            .unwrap();
        let churn = eval.drain_tap();
        assert!(
            churn
                .iter()
                .any(|d| d.sign == Sign::Delete && d.relation == "shortestPath"),
            "expected shortestPath retractions, got {churn:?}"
        );
        events.extend(churn);

        let replayed = replay(&events);
        for rel in ["shortestPath", "path"] {
            let stored: BTreeSet<(String, Tuple)> = eval
                .results(rel)
                .into_iter()
                .map(|t| (rel.to_string(), t))
                .collect();
            let from_stream: BTreeSet<(String, Tuple)> =
                replayed.iter().filter(|(r, _)| r == rel).cloned().collect();
            assert_eq!(from_stream, stored, "replayed {rel} diverges from store");
        }
        // The untapped relation never leaks into the stream.
        assert!(events.iter().all(|d| d.relation != "link"));
    }

    #[test]
    fn tap_unsubscribed_relation_records_nothing() {
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        load_figure2_links(&mut eval, "link");
        eval.run(Strategy::Pipelined).unwrap();
        assert!(eval.tap().is_empty());
        assert!(eval.drain_tap().is_empty());
    }
}
