//! Single-node NDlog evaluation machinery.
//!
//! This crate implements everything a node needs to evaluate a (localized)
//! NDlog program over its local state:
//!
//! * [`tuple`] — tuples and signed tuple deltas;
//! * [`expr`] — expression evaluation and the builtin `f_*` functions
//!   (path-vector construction, membership tests, arithmetic);
//! * [`relation`] — stored relations with primary keys, derivation counts
//!   (the count algorithm for deletions), per-tuple timestamps and optional
//!   soft-state TTLs;
//! * [`index`] — secondary hash indexes over bound-column signatures,
//!   maintained incrementally so joins probe in O(matches) instead of
//!   scanning;
//! * [`store`] — a node's collection of relations, built from a program's
//!   `materialize` declarations;
//! * [`strand`] — compiled rule strands (the unit of execution in P2's
//!   dataflow, Figures 3 and 5) and their firing logic;
//! * [`aggview`] — incremental maintenance of aggregate rules
//!   (`min<C>`-style heads) with O(log n) deletion handling and
//!   group-level pinning/rebuild for the DRed pass;
//! * [`dred`] — DRed-style two-phase deletion maintenance (over-delete the
//!   downstream closure, then re-derive survivors), the count-agnostic
//!   path every actual tuple removal takes;
//! * [`evaluator`] — the three centralized evaluation strategies of
//!   Section 3: semi-naive (SN, Algorithm 1), buffered semi-naive (BSN) and
//!   pipelined semi-naive (PSN, Algorithm 3), with derivation statistics
//!   used to validate Theorems 1 and 2.
//!
//! The distributed engine (`ndlog-core`) composes these pieces per node and
//! adds the network, optimizations and update handling.

pub mod aggview;
pub mod dred;
pub mod evaluator;
pub mod expr;
pub mod index;
pub mod relation;
pub mod store;
pub mod strand;
pub mod tuple;

pub use aggview::AggregateView;
pub use evaluator::{EvalStats, Evaluator, Strategy};
pub use expr::{Bindings, EvalError};
pub use index::{IndexSignature, SecondaryIndex};
pub use relation::{InsertOutcome, Relation, RelationSchema};
pub use store::Store;
pub use strand::{ColumnSource, CompiledStrand, Derivation, JoinStats, ProbePlan};
pub use tuple::{Sign, Tuple, TupleDelta};
