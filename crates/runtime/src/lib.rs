//! Single-node NDlog evaluation machinery.
//!
//! This crate implements everything a node needs to evaluate a (localized)
//! NDlog program over its local state:
//!
//! * [`tuple`] — tuples and signed tuple deltas;
//! * [`expr`] — expression evaluation and the builtin `f_*` functions
//!   (path-vector construction, membership tests, arithmetic);
//! * [`relation`] — stored relations with primary keys, derivation counts
//!   (the count algorithm for deletions), per-tuple timestamps and optional
//!   soft-state TTLs;
//! * [`intern`] — the global thread-safe [`Value`](ndlog_lang::Value)
//!   interner behind the index layer: ids are stable for the life of the
//!   process (interned values are deliberately never freed — the distinct-
//!   value set is bounded by the stored data, and probe keys use a
//!   read-only lookup that cannot grow the table), id equality is exactly
//!   value equality, and because nothing observable is ever ordered by id,
//!   concurrent interning from executor threads cannot perturb results —
//!   the determinism guarantee the parallel engine relies on;
//! * [`index`] — secondary hash indexes over bound-column signatures,
//!   maintained incrementally so joins probe in O(matches) instead of
//!   scanning; bucket keys are interned `ValueId`s and bucket entries are
//!   shared `Arc` primary keys, so index maintenance hashes fixed-size ids
//!   instead of cloning values;
//! * [`store`] — a node's collection of relations, built from a program's
//!   `materialize` declarations;
//! * [`strand`] — compiled rule strands (the unit of execution in P2's
//!   dataflow, Figures 3 and 5) and their firing logic;
//! * [`batch`] — batch-delta evaluation: slot-compiled strand plans fired
//!   over whole delta batches through flat reusable buffers, the
//!   allocation-free twin of the tuple-at-a-time path;
//! * [`aggview`] — incremental maintenance of aggregate rules
//!   (`min<C>`-style heads) with O(log n) deletion handling and
//!   group-level pinning/rebuild for the DRed pass;
//! * [`dred`] — DRed-style two-phase deletion maintenance (over-delete the
//!   downstream closure in batched waves, then re-derive survivors), the
//!   count-agnostic path every actual tuple removal takes;
//! * [`evaluator`] — the three centralized evaluation strategies of
//!   Section 3: semi-naive (SN, Algorithm 1), buffered semi-naive (BSN) and
//!   pipelined semi-naive (PSN, Algorithm 3), with derivation statistics
//!   used to validate Theorems 1 and 2.
//!
//! The distributed engine (`ndlog-core`) composes these pieces per node and
//! adds the network, optimizations and update handling.
//!
//! # Performance
//!
//! The join hot path is benchmarked by `experiments micro` (release mode;
//! CI runs it as a smoke step gated at 2× against the committed
//! `BENCH_micro_runtime.json`, covering both the per-trigger and the
//! grouped probe paths): a strand probing a 10⁴-tuple relation with 10
//! matches per trigger, fired 256 triggers at a time over one store
//! snapshot. The timed paths are the indexed tuple-at-a-time reference
//! (`CompiledStrand::fire_counted`), the indexed batch-delta path without
//! and with key-grouped probe sharing (`fire_batch_ungrouped` /
//! `fire_batch`), the unindexed full scan, and a **duplicate-key**
//! trigger set with Zipf-ish key frequencies fired through both batch
//! paths. The methodology is deliberately simple: a fixed deterministic
//! workload, one warmup pass, then a fixed number of timed passes,
//! reported as µs per trigger.
//!
//! Two optimizations stack on the batch path:
//!
//! * **Key-grouped probe sharing** ([`batch`]): a delta batch's rows are
//!   partitioned by probe-key value per body atom, each distinct key is
//!   looked up once ([`relation::Relation::lookup_n`]), residual checks
//!   run once per candidate, and the match set is broadcast to every
//!   group member through offset ranges into a flat match buffer. Real
//!   workloads (path exploration, flooding) are heavily key-skewed, so
//!   this removes most bucket lookups and candidate materializations.
//! * **Columnar index buckets** ([`index`]): each bucket stores its
//!   member tuples struct-of-arrays — value-sorted shared `Arc<[Value]>`
//!   primary keys, a dense seq array, and contiguous per-column `ValueId`
//!   arrays — so visibility and residual filtering walk dense `u64`/`u32`
//!   arrays and only surviving candidates pay the primary-key map lookup.
//! * **Cross-rule shared subplans** ([`subplan`]): planning fingerprints
//!   every join stage's probe as a `(relation, bound-column signature)`
//!   with [`subplan::shared_signatures`]; when two or more stages across
//!   the program share a fingerprint, a round-scoped
//!   [`subplan::ProbeCache`] memoizes the raw candidate rows per probed
//!   key, so later strands of the same round reuse the first bucket walk
//!   instead of repeating it (residual and visibility checks replay per
//!   consumer). The store is frozen for the round, so cached candidate
//!   sets stay exact — `distinct_probes` drops while every logical
//!   counter is unchanged.
//!
//! Two more optimizations live a layer up, in the distributed engine
//! (`ndlog-core`), but exist to feed this crate's batch path and are
//! measured by the same micro bench:
//!
//! * **Epoch delivery coalescing** (`ndlog-core`'s `exec` module): the
//!   epoch executor merges consecutive same-node message deliveries into
//!   one receive batch, so a node ingests every payload of the run and
//!   calls `process` once — handing [`batch`] one wide delta batch
//!   instead of many single-delta batches. The micro bench times both
//!   schedules through a full node engine (store clock, PSN queue,
//!   outbound routing) as `delivery_per_event_us_per_trigger` vs
//!   `delivery_coalesced_us_per_trigger`; the coalesced figure is part
//!   of the CI 2× gate.
//! * **Wire-buffer arenas** (`ndlog-core`'s `exec::arena` module): the
//!   `Vec<TupleDelta>` payload buffers that carry deltas between nodes
//!   circulate through a per-node pool — rented at the send path,
//!   recycled when the receiver drains them — so steady-state messaging
//!   reuses buffers instead of allocating per message. The scaling
//!   report accounts demanded vs actually-allocated buffer bytes and
//!   prints the reduction factor.
//!
//! Probe accounting is two-counter ([`index::JoinStats`]):
//! `logical_probes` counts per binding environment (identical across
//! grouped, ungrouped and tuple-at-a-time evaluation — what differential
//! tests compare) and `distinct_probes` counts bucket lookups actually
//! executed (`≤ logical` under grouping; both deterministic, so they
//! participate in the cross-thread bitwise-identity checks). Batch firing
//! is semantics-identical to tuple-at-a-time — `tests/properties.rs`
//! proves stores identical and statistics equal (grouped ≡ ungrouped on
//! every logical counter; equal modulo documented probe accounting vs the
//! tuple loop), which the [`evaluator`] docs define precisely.

pub mod aggview;
pub mod batch;
pub mod dred;
pub mod evaluator;
pub mod expr;
pub mod index;
pub mod intern;
pub mod relation;
pub mod store;
pub mod strand;
pub mod subplan;
pub mod tap;
pub mod tuple;

pub use aggview::AggregateView;
pub use batch::{BatchOutput, BatchScratch, BatchTrigger};
pub use evaluator::{EvalStats, Evaluator, Strategy};
pub use expr::{Bindings, EvalError};
pub use index::{IndexSignature, SecondaryIndex};
pub use intern::ValueId;
pub use relation::{InsertOutcome, Relation, RelationSchema};
pub use store::Store;
pub use strand::{ColumnSource, CompiledStrand, Derivation, JoinStats, ProbePlan};
pub use subplan::{shared_signatures, ProbeCache};
pub use tap::DeltaTap;
pub use tuple::{Sign, Tuple, TupleDelta};
