//! Single-node NDlog evaluation machinery.
//!
//! This crate implements everything a node needs to evaluate a (localized)
//! NDlog program over its local state:
//!
//! * [`tuple`] — tuples and signed tuple deltas;
//! * [`expr`] — expression evaluation and the builtin `f_*` functions
//!   (path-vector construction, membership tests, arithmetic);
//! * [`relation`] — stored relations with primary keys, derivation counts
//!   (the count algorithm for deletions), per-tuple timestamps and optional
//!   soft-state TTLs;
//! * [`intern`] — the global thread-safe [`Value`](ndlog_lang::Value)
//!   interner behind the index layer: ids are stable for the life of the
//!   process (interned values are deliberately never freed — the distinct-
//!   value set is bounded by the stored data, and probe keys use a
//!   read-only lookup that cannot grow the table), id equality is exactly
//!   value equality, and because nothing observable is ever ordered by id,
//!   concurrent interning from executor threads cannot perturb results —
//!   the determinism guarantee the parallel engine relies on;
//! * [`index`] — secondary hash indexes over bound-column signatures,
//!   maintained incrementally so joins probe in O(matches) instead of
//!   scanning; bucket keys are interned `ValueId`s and bucket entries are
//!   shared `Arc` primary keys, so index maintenance hashes fixed-size ids
//!   instead of cloning values;
//! * [`store`] — a node's collection of relations, built from a program's
//!   `materialize` declarations;
//! * [`strand`] — compiled rule strands (the unit of execution in P2's
//!   dataflow, Figures 3 and 5) and their firing logic;
//! * [`batch`] — batch-delta evaluation: slot-compiled strand plans fired
//!   over whole delta batches through flat reusable buffers, the
//!   allocation-free twin of the tuple-at-a-time path;
//! * [`aggview`] — incremental maintenance of aggregate rules
//!   (`min<C>`-style heads) with O(log n) deletion handling and
//!   group-level pinning/rebuild for the DRed pass;
//! * [`dred`] — DRed-style two-phase deletion maintenance (over-delete the
//!   downstream closure in batched waves, then re-derive survivors), the
//!   count-agnostic path every actual tuple removal takes;
//! * [`evaluator`] — the three centralized evaluation strategies of
//!   Section 3: semi-naive (SN, Algorithm 1), buffered semi-naive (BSN) and
//!   pipelined semi-naive (PSN, Algorithm 3), with derivation statistics
//!   used to validate Theorems 1 and 2.
//!
//! The distributed engine (`ndlog-core`) composes these pieces per node and
//! adds the network, optimizations and update handling.
//!
//! # Performance
//!
//! The join hot path is benchmarked by `experiments micro` (release mode;
//! CI runs it as a smoke step gated at 2× against the committed
//! `BENCH_micro_runtime.json`): a strand probing a 10⁴-tuple relation with
//! 10 matches per trigger, fired 256 triggers at a time over one store
//! snapshot. Three paths are timed — the indexed tuple-at-a-time reference
//! (`CompiledStrand::fire_counted`), the indexed batch-delta path
//! (`CompiledStrand::fire_batch`), and the unindexed full scan. The
//! methodology is deliberately simple: a fixed deterministic workload, one
//! warmup pass, then a fixed number of timed passes, reported as µs per
//! trigger. On the reference container the batch path is ≥1.5× faster than
//! tuple-at-a-time (the per-environment `BTreeMap` clone it eliminates is
//! the dominant constant once probing has removed the O(n) scan), and the
//! probe paths are >10× faster than the scan at 10⁴ tuples. Batch firing
//! is semantics-identical to tuple-at-a-time — `tests/properties.rs`
//! proves stores and statistics equal modulo probe-count accounting, which
//! the [`evaluator`] docs define precisely.

pub mod aggview;
pub mod batch;
pub mod dred;
pub mod evaluator;
pub mod expr;
pub mod index;
pub mod intern;
pub mod relation;
pub mod store;
pub mod strand;
pub mod tuple;

pub use aggview::AggregateView;
pub use batch::{BatchOutput, BatchScratch, BatchTrigger};
pub use evaluator::{EvalStats, Evaluator, Strategy};
pub use expr::{Bindings, EvalError};
pub use index::{IndexSignature, SecondaryIndex};
pub use intern::ValueId;
pub use relation::{InsertOutcome, Relation, RelationSchema};
pub use store::Store;
pub use strand::{ColumnSource, CompiledStrand, Derivation, JoinStats, ProbePlan};
pub use tuple::{Sign, Tuple, TupleDelta};
