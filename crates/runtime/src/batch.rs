//! Batch-delta strand evaluation: slot-compiled rules over flat, reusable
//! environment buffers.
//!
//! [`crate::strand::CompiledStrand::fire`] evaluates one trigger delta at a
//! time, carrying its binding environments as `BTreeMap<String, Value>`s —
//! every join candidate clones a whole map (tree nodes *and* `String`
//! keys), which is the dominant per-tuple constant the profiles show once
//! index probing has removed the join-selectivity cost. This module is the
//! vectorized alternative: at compile time every variable of a rule gets a
//! fixed **slot**, terms and expressions are rewritten to slot references,
//! and at run time a whole batch of trigger deltas is drained through the
//! rule's stages using two flat column buffers (`current` / `next` rows of
//! `width` slots each) owned by a reusable [`BatchScratch`]. Extending an
//! environment is a row copy into the arena; no per-environment `Vec`,
//! map or `String` is ever allocated.
//!
//! # Key-grouped probe sharing
//!
//! Real delta batches are key-skewed: path exploration and flooding
//! dissemination hand a strand hundreds of triggers that probe the same
//! join key. The default (grouped) probe stage therefore partitions the
//! surviving rows by probe-key value — first-occurrence order, so the
//! grouping is deterministic and independent of interner id assignment —
//! executes **one** index lookup per distinct key
//! ([`crate::relation::Relation::lookup_n`]), runs the member-independent
//! residual checks once per candidate, and broadcasts the shared match
//! set to every group member through offset ranges into a flat match
//! buffer (each member only re-applies the slot *binds* and its own
//! `seq_limit` visibility filter). This is sound because a probe stage's
//! match set depends only on the probe key and the candidate: compilation
//! guarantees every residual `CheckSlot` refers to a slot bound by an
//! earlier column of the same atom (any slot bound by an earlier stage is
//! part of the probe key), so two rows with equal keys accept exactly the
//! same candidates. The ungrouped stage (one lookup per row) survives as
//! the differential reference.
//!
//! # Equivalence contract
//!
//! For every trigger `i` of the batch, the derivations in
//! [`BatchOutput::for_trigger`] are exactly (same tuples, same order) what
//! `fire(store, trigger_i, seq_limit_i)` returns against the same store:
//! stages process rows in trigger order and extensions are appended
//! stably, so rows stay grouped by trigger and ordered exactly as the
//! nested tuple-at-a-time loops would have produced them. Join statistics
//! are identical in *logical* terms — one logical probe (or scan) and the
//! full bucket's `tuples_examined` are recorded per environment per atom,
//! exactly like the tuple path, whether or not probes are grouped. Only
//! `distinct_probes` (the bucket lookups actually executed) differs:
//! grouped firing reports one per distinct key per atom, the ungrouped
//! and tuple paths one per environment. The only other caller-visible
//! divergence is *error selection* when several triggers of one batch
//! fail: stages run batch-wide, so the first error in stage order may
//! belong to a later trigger than the first error in trigger order (the
//! run still fails with an `EvalError` either way, and engines treat
//! post-error state as unspecified).

use crate::expr::{eval_binop, eval_builtin, EvalError};
use crate::index::JoinStats;
use crate::relation::StoredTuple;
use crate::store::Store;
use crate::strand::{Derivation, ProbePlan};
use crate::subplan::ProbeCache;
use crate::tuple::{Tuple, TupleDelta};
use ndlog_lang::seminaive::DeltaRule;
use ndlog_lang::{Atom, Expr, Literal, Term, Value};
use std::collections::{BTreeMap, HashMap};

/// One trigger delta of a batch with its join visibility limit (PSN passes
/// the tuple's own timestamp; SN/BSN pass the iteration limit).
#[derive(Debug, Clone, Copy)]
pub struct BatchTrigger<'a> {
    /// The triggering delta.
    pub delta: &'a TupleDelta,
    /// Joins may only see stored tuples with `seq <= seq_limit`.
    pub seq_limit: u64,
}

/// How one bound value is produced at run time.
#[derive(Debug, Clone, PartialEq)]
enum SlotSource {
    Const(Value),
    Slot(usize),
}

/// One column-matching operation of an atom, in column order.
#[derive(Debug, Clone, PartialEq)]
enum BindOp {
    /// The column must equal a constant.
    CheckConst(usize, Value),
    /// The column binds a fresh slot.
    Bind(usize, usize),
    /// The column must equal an already-bound slot (bound by an earlier
    /// stage, or by an earlier column of this very atom).
    CheckSlot(usize, usize),
}

/// An expression with variables resolved to slots at compile time.
#[derive(Debug, Clone, PartialEq)]
enum SlotExpr {
    Const(Value),
    /// A slot reference; the name survives only for the unbound-variable
    /// error message.
    Slot(usize, String),
    /// A variable that is never bound anywhere in the rule: evaluating it
    /// is always an error, exactly like the map-based path.
    Unbound(String),
    Binary(ndlog_lang::BinOp, Box<SlotExpr>, Box<SlotExpr>),
    Call(String, Vec<SlotExpr>),
}

/// A head column source.
#[derive(Debug, Clone, PartialEq)]
enum HeadSource {
    Const(Value),
    Slot(usize, String),
    Unbound(String),
    /// Aggregate head terms are maintained by `AggregateView`, never fired
    /// through strands; raise the same error the tuple path does.
    Aggregate,
}

/// A non-trigger body literal, slot-compiled.
#[derive(Debug, Clone, PartialEq)]
enum Stage {
    Probe {
        relation: String,
        /// Sorted bound columns to probe on (empty = full scan); mirrors
        /// the strand's [`ProbePlan`].
        cols: Vec<usize>,
        /// Value per probe column, parallel to `cols`.
        key: Vec<SlotSource>,
        /// Expected candidate arity.
        arity: usize,
        /// Residual column ops — only the columns the probe key does *not*
        /// already guarantee ([`crate::relation::Relation::lookup`]
        /// enforces every probed column, so re-checking them per candidate
        /// would be redundant work the tuple path still performs).
        ops: Vec<BindOp>,
        /// The atom mentions an aggregate term: no candidate can match
        /// (exactly `bind_atom`'s behaviour).
        reject_all: bool,
    },
    Assign {
        slot: usize,
        /// Statically known: is the slot already bound when this stage
        /// runs? (Binding order is fixed at compile time.)
        prebound: bool,
        expr: SlotExpr,
    },
    Filter(SlotExpr),
}

/// A head column source for the **fused** final stage: when a rule's last
/// stage is its probe (the common single-join shape), the surviving
/// `(member row, candidate)` pairs project their head tuples directly, so
/// no output row arena is ever materialized for that stage. Each head
/// column reads either from the pre-final row or from the candidate tuple
/// (for slots the final atom's `Bind` ops would have written).
#[derive(Debug, Clone, PartialEq)]
enum FusedSource {
    Const(Value),
    /// Read from a slot bound before the final stage.
    Row(usize, String),
    /// Read from a column of the final probe's candidate tuple.
    Cand(usize),
    Unbound(String),
    Aggregate,
}

/// A slot-compiled rule strand.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Total slot count (row width).
    width: usize,
    /// Trigger-tuple arity.
    trigger_arity: usize,
    /// Trigger-atom column ops.
    trigger_ops: Vec<BindOp>,
    /// The trigger atom mentions an aggregate term: nothing can bind.
    trigger_rejects: bool,
    stages: Vec<Stage>,
    head: Vec<HeadSource>,
    /// `Some` iff the last stage is a probe: the head re-expressed against
    /// (pre-final row, candidate), enabling final-stage fusion.
    fused_head: Option<Vec<FusedSource>>,
    head_relation: String,
}

/// Reusable flat buffers for batch firing: environment rows (`width`
/// slots per row, `Option<Value>` so unbound slots are explicit), the
/// trigger index each row descends from, a probe-key scratch, and the
/// key-grouping buffers of the shared-probe stage. One scratch serves any
/// number of strands and batches; buffers only grow.
#[derive(Debug, Default)]
pub struct BatchScratch {
    rows: Vec<Option<Value>>,
    origins: Vec<u32>,
    next_rows: Vec<Option<Value>>,
    next_origins: Vec<u32>,
    key: Vec<Value>,
    /// Per row: the probe-key group it belongs to (grouped stages only).
    group_of: Vec<u32>,
    /// Per group: its member count (the `lookup_n` multiplier).
    group_sizes: Vec<u32>,
    /// Probe key → group index. Group numbering is first-occurrence order
    /// and every observable is addressed through it, so nothing depends
    /// on hashing or iteration order.
    group_map: HashMap<Box<[Value]>, u32>,
    /// Per group: the `(start, end)` range of its shared match set in the
    /// flat match buffer.
    group_ranges: Vec<(u32, u32)>,
    /// Reusable row for the once-per-candidate residual check.
    probe_row: Vec<Option<Value>>,
}

/// The derivations of one batch, grouped by trigger.
#[derive(Debug, Default)]
pub struct BatchOutput {
    derivations: Vec<Derivation>,
    /// `offsets[i]..offsets[i + 1]` bounds trigger `i`'s derivations.
    offsets: Vec<usize>,
}

impl BatchOutput {
    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.derivations.clear();
        self.offsets.clear();
    }

    /// The derivations of trigger `i`, in firing order.
    pub fn for_trigger(&self, i: usize) -> &[Derivation] {
        &self.derivations[self.offsets[i]..self.offsets[i + 1]]
    }

    /// All derivations in (trigger, firing) order.
    pub fn all(&self) -> &[Derivation] {
        &self.derivations
    }

    /// Move the derivations out, calling `f(trigger_index, derivation)` in
    /// (trigger, firing) order. Leaves the output empty for reuse.
    pub fn drain_into(&mut self, mut f: impl FnMut(usize, Derivation)) {
        let mut group = 0usize;
        for (pos, d) in self.derivations.drain(..).enumerate() {
            while group + 1 < self.offsets.len() && self.offsets[group + 1] <= pos {
                group += 1;
            }
            f(group, d);
        }
        self.offsets.clear();
    }
}

/// Compile a delta rule against its probe plans (parallel to the rule's
/// body literals, as produced by the strand compiler).
pub(crate) fn compile(rule: &DeltaRule, plans: &[Option<ProbePlan>]) -> BatchPlan {
    let body = &rule.rule.body;
    // Slot allocation follows the same walk as probe-plan compilation:
    // trigger vars first, then each literal in body order.
    let mut slots: BTreeMap<String, usize> = BTreeMap::new();
    let mut slot_of = |name: &str, slots: &mut BTreeMap<String, usize>| -> usize {
        if let Some(&s) = slots.get(name) {
            return s;
        }
        let s = slots.len();
        slots.insert(name.to_string(), s);
        s
    };

    let (trigger_arity, trigger_ops, trigger_rejects) = match body.get(rule.trigger) {
        Some(Literal::Atom(atom)) => {
            let (ops, rejects) = compile_atom_ops(atom, &[], &mut slots, &mut slot_of);
            (atom.arity(), ops, rejects)
        }
        _ => (0, Vec::new(), true),
    };

    let mut stages = Vec::new();
    for (idx, literal) in body.iter().enumerate() {
        if idx == rule.trigger {
            continue;
        }
        match literal {
            Literal::Atom(atom) => {
                let plan = plans.get(idx).and_then(Option::as_ref);
                let (cols, key) = match plan {
                    Some(plan) => (
                        plan.cols.clone(),
                        plan.sources
                            .iter()
                            .map(|src| match src {
                                crate::strand::ColumnSource::Const(c) => {
                                    SlotSource::Const(c.clone())
                                }
                                crate::strand::ColumnSource::Var(name) => {
                                    SlotSource::Slot(*slots.get(name).expect("plan vars are bound"))
                                }
                            })
                            .collect(),
                    ),
                    None => (Vec::new(), Vec::new()),
                };
                let (ops, reject_all) = compile_atom_ops(atom, &cols, &mut slots, &mut slot_of);
                stages.push(Stage::Probe {
                    relation: atom.name.clone(),
                    cols,
                    key,
                    arity: atom.arity(),
                    ops,
                    reject_all,
                });
            }
            Literal::Assign(assign) => {
                let prebound = slots.contains_key(&assign.var);
                let expr = compile_expr(&assign.expr, &slots);
                let slot = slot_of(&assign.var, &mut slots);
                stages.push(Stage::Assign {
                    slot,
                    prebound,
                    expr,
                });
            }
            Literal::Filter(expr) => {
                stages.push(Stage::Filter(compile_expr(expr, &slots)));
            }
        }
    }

    let head: Vec<HeadSource> = rule
        .rule
        .head
        .args
        .iter()
        .map(|term| match term {
            Term::Const(c) => HeadSource::Const(c.clone()),
            Term::Var(v) => match slots.get(&v.name) {
                Some(&s) => HeadSource::Slot(s, v.name.clone()),
                None => HeadSource::Unbound(v.name.clone()),
            },
            Term::Agg(_) => HeadSource::Aggregate,
        })
        .collect();

    // Final-stage fusion: when the last stage is a probe, its `Bind` ops
    // are the only writes between the pre-final rows and head projection,
    // so every head column can be re-expressed as "read the row" or "read
    // the candidate" (a `Bind` only ever targets a slot no earlier stage
    // bound, so the mapping is unambiguous).
    let fused_head = match stages.last() {
        Some(Stage::Probe { ops, .. }) => {
            let col_of_slot: BTreeMap<usize, usize> = ops
                .iter()
                .filter_map(|op| match op {
                    BindOp::Bind(col, slot) => Some((*slot, *col)),
                    _ => None,
                })
                .collect();
            Some(
                head.iter()
                    .map(|source| match source {
                        HeadSource::Const(c) => FusedSource::Const(c.clone()),
                        HeadSource::Slot(s, name) => match col_of_slot.get(s) {
                            Some(&col) => FusedSource::Cand(col),
                            None => FusedSource::Row(*s, name.clone()),
                        },
                        HeadSource::Unbound(name) => FusedSource::Unbound(name.clone()),
                        HeadSource::Aggregate => FusedSource::Aggregate,
                    })
                    .collect(),
            )
        }
        _ => None,
    };

    BatchPlan {
        width: slots.len(),
        trigger_arity,
        trigger_ops,
        trigger_rejects,
        stages,
        head,
        fused_head,
        head_relation: rule.rule.head.name.clone(),
    }
}

/// Compile an atom's column ops, skipping the columns already guaranteed
/// by the probe key (`covered`, sorted). Returns the ops plus whether the
/// atom can never match (it mentions an aggregate term).
fn compile_atom_ops(
    atom: &Atom,
    covered: &[usize],
    slots: &mut BTreeMap<String, usize>,
    slot_of: &mut impl FnMut(&str, &mut BTreeMap<String, usize>) -> usize,
) -> (Vec<BindOp>, bool) {
    let mut ops = Vec::new();
    let mut rejects = false;
    // Within-atom bookkeeping: a repeated variable's first occurrence
    // binds, later occurrences check — also across the covered/uncovered
    // boundary, so every variable the atom mentions ends up with a slot.
    let mut bound_here: BTreeMap<&str, usize> = BTreeMap::new();
    for (col, term) in atom.args.iter().enumerate() {
        match term {
            Term::Agg(_) => rejects = true,
            Term::Const(c) => {
                if !covered.contains(&col) {
                    ops.push(BindOp::CheckConst(col, c.clone()));
                }
            }
            Term::Var(v) => {
                let preexisting =
                    slots.contains_key(&v.name) || bound_here.contains_key(v.name.as_str());
                let slot = match bound_here.get(v.name.as_str()) {
                    Some(&s) => s,
                    None => {
                        let s = slot_of(&v.name, slots);
                        bound_here.insert(v.name.as_str(), s);
                        s
                    }
                };
                if covered.contains(&col) {
                    // The probe key already pins this column to the slot's
                    // value; nothing to re-check per candidate.
                    continue;
                }
                if preexisting {
                    ops.push(BindOp::CheckSlot(col, slot));
                } else {
                    ops.push(BindOp::Bind(col, slot));
                }
            }
        }
    }
    (ops, rejects)
}

/// Resolve an expression's variables against the slots bound so far.
fn compile_expr(expr: &Expr, slots: &BTreeMap<String, usize>) -> SlotExpr {
    match expr {
        Expr::Const(v) => SlotExpr::Const(v.clone()),
        Expr::Var(name) => match slots.get(name) {
            Some(&s) => SlotExpr::Slot(s, name.clone()),
            None => SlotExpr::Unbound(name.clone()),
        },
        Expr::Binary(op, l, r) => SlotExpr::Binary(
            *op,
            Box::new(compile_expr(l, slots)),
            Box::new(compile_expr(r, slots)),
        ),
        Expr::Call(name, args) => SlotExpr::Call(
            name.clone(),
            args.iter().map(|a| compile_expr(a, slots)).collect(),
        ),
    }
}

fn eval_slot(expr: &SlotExpr, row: &[Option<Value>]) -> Result<Value, EvalError> {
    match expr {
        SlotExpr::Const(v) => Ok(v.clone()),
        SlotExpr::Slot(slot, name) => row[*slot]
            .clone()
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        SlotExpr::Unbound(name) => Err(EvalError::UnboundVariable(name.clone())),
        SlotExpr::Binary(op, l, r) => {
            let lv = eval_slot(l, row)?;
            let rv = eval_slot(r, row)?;
            eval_binop(*op, &lv, &rv)
        }
        SlotExpr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_slot(a, row)?);
            }
            eval_builtin(name, &vals)
        }
    }
}

/// Coerce a filter result to a boolean with the same truthiness rules as
/// the map-based path.
fn eval_slot_bool(expr: &SlotExpr, row: &[Option<Value>]) -> Result<bool, EvalError> {
    match eval_slot(expr, row)? {
        Value::Bool(b) => Ok(b),
        Value::Int(i) => Ok(i != 0),
        Value::Float(f) => Ok(f != 0.0),
        _ => Err(EvalError::TypeMismatch {
            context: "boolean filter in batch stage".into(),
        }),
    }
}

/// Resolve a probe stage's key for one row into `out` (cleared first).
fn build_probe_key(key: &[SlotSource], row: &[Option<Value>], out: &mut Vec<Value>) {
    out.clear();
    for src in key {
        match src {
            SlotSource::Const(c) => out.push(c.clone()),
            SlotSource::Slot(s) => out.push(row[*s].clone().expect("probe-key slots are bound")),
        }
    }
}

/// Passes 1 and 2 of a grouped probe stage, shared by the mid-stage arm
/// and the fused final stage (only their pass 3 — row materialization vs
/// direct head projection — differs).
///
/// Pass 1 partitions the rows by probe-key value, numbering groups in
/// first-occurrence order (deterministic; the hash map is only a dedup
/// aid). Pass 2 performs one [`crate::relation::Relation::lookup_n`] per
/// distinct key — which preserves the per-member logical accounting via
/// the group-size multiplier — runs the member-independent residual
/// checks once per candidate, and collects each group's shared match set
/// into the flat `group_matches` buffer at `group_ranges[g]`. The
/// visibility filter is deferred to pass 3 because members may carry
/// different `seq_limit`s. The map's iteration order only decides where
/// each group's span lands in the buffer; every observable (stat sums,
/// the span each `group_ranges[g]` addresses, within-group candidate
/// order) is independent of it.
///
/// When a cross-rule [`ProbeCache`] is armed and carries this stage's
/// `(relation, cols)` signature, pass 2 serves each distinct key through
/// the cache instead of probing the relation directly: the raw candidate
/// set is fetched once per round across every strand sharing the
/// signature, and the stage-specific arity/residual filtering still runs
/// here per candidate (see [`crate::subplan`] for the soundness and
/// statistics contract).
#[allow(clippy::too_many_arguments)]
fn group_and_probe<'r>(
    stored: &'r crate::relation::Relation,
    relation: &str,
    width: usize,
    rows: &[Option<Value>],
    origins: &[u32],
    key: &[SlotSource],
    cols: &[usize],
    arity: usize,
    ops: &[BindOp],
    reject_all: bool,
    stats: &mut JoinStats,
    key_buf: &mut Vec<Value>,
    group_of: &mut Vec<u32>,
    group_sizes: &mut Vec<u32>,
    group_map: &mut HashMap<Box<[Value]>, u32>,
    group_ranges: &mut Vec<(u32, u32)>,
    probe_row: &mut Vec<Option<Value>>,
    group_matches: &mut Vec<&'r StoredTuple>,
    mut cache: Option<&mut ProbeCache<'r>>,
) {
    group_of.clear();
    group_sizes.clear();
    group_map.clear();
    for r in 0..origins.len() {
        let row = &rows[r * width..(r + 1) * width];
        build_probe_key(key, row, key_buf);
        let g = match group_map.get(key_buf.as_slice()) {
            Some(&g) => g,
            None => {
                let g = u32::try_from(group_sizes.len()).expect("group count fits u32");
                group_map.insert(key_buf.as_slice().into(), g);
                group_sizes.push(0);
                g
            }
        };
        group_sizes[g as usize] += 1;
        group_of.push(g);
    }
    group_matches.clear();
    group_ranges.clear();
    group_ranges.resize(group_sizes.len(), (0, 0));
    probe_row.clear();
    probe_row.resize(width, None);
    for (gkey, &g) in group_map.iter() {
        let members = group_sizes[g as usize] as usize;
        let start = group_matches.len();
        let cached = match cache.as_deref_mut() {
            Some(c) => c.probe(stored, relation, cols, gkey, members, stats),
            None => None,
        };
        if let Some(candidates) = cached {
            for &candidate in candidates {
                if reject_all || candidate.tuple.arity() != arity {
                    continue;
                }
                if apply_ops(ops, &candidate.tuple, probe_row) {
                    group_matches.push(candidate);
                }
            }
        } else {
            for candidate in stored.lookup_n(cols, gkey, u64::MAX, members, stats) {
                // An aggregate-term atom rejects every candidate, but the
                // lookup above still runs so the probe accounting matches
                // `bind_atom`'s tuple path exactly.
                if reject_all || candidate.tuple.arity() != arity {
                    continue;
                }
                if apply_ops(ops, &candidate.tuple, probe_row) {
                    group_matches.push(candidate);
                }
            }
        }
        group_ranges[g as usize] = (
            u32::try_from(start).expect("match buffer fits u32"),
            u32::try_from(group_matches.len()).expect("match buffer fits u32"),
        );
    }
}

/// Apply only the `Bind` half of an atom's residual ops: used by the
/// grouped-probe broadcast, where the candidate has already passed the
/// member-independent checks once for its whole group and each member row
/// only needs the fresh slot values written in.
fn apply_binds(ops: &[BindOp], tuple: &Tuple, row: &mut [Option<Value>]) {
    for op in ops {
        if let BindOp::Bind(col, slot) = op {
            row[*slot] = Some(tuple.get(*col).expect("arity checked").clone());
        }
    }
}

/// Apply an atom's residual ops to a candidate tuple against a row whose
/// new slots may be written in place. Ops run in column order, so a
/// within-atom repeated variable's check sees the bind from an earlier
/// column of the same candidate. Returns false on the first mismatch.
fn apply_ops(ops: &[BindOp], tuple: &Tuple, row: &mut [Option<Value>]) -> bool {
    for op in ops {
        match op {
            BindOp::CheckConst(col, c) => {
                if tuple.get(*col) != Some(c) {
                    return false;
                }
            }
            BindOp::Bind(col, slot) => {
                row[*slot] = Some(tuple.get(*col).expect("arity checked").clone());
            }
            BindOp::CheckSlot(col, slot) => {
                if row[*slot].as_ref() != tuple.get(*col) {
                    return false;
                }
            }
        }
    }
    true
}

impl BatchPlan {
    /// Drain a whole batch of trigger deltas through the compiled stages.
    /// `grouped` selects key-grouped probe sharing (one index lookup per
    /// distinct probe key per atom — the default) or the per-row reference
    /// probing kept for differential testing. See the module docs for the
    /// equivalence contract with the tuple-at-a-time `fire` path.
    ///
    /// `cache`, when armed, extends the sharing across rules: grouped
    /// probe stages whose `(relation, cols)` signature the cache carries
    /// fetch their raw candidates through it, one real lookup per
    /// distinct key per *round* instead of per strand ([`crate::subplan`]).
    /// A cache also routes single-row batches through the grouped arm —
    /// the per-event distributed workload fires mostly one-delta batches,
    /// and those are exactly the probes cross-rule sharing answers for
    /// free.
    #[allow(clippy::too_many_arguments)] // hot path: flat args beat a param struct here
    pub(crate) fn fire_batch<'r>(
        &self,
        store: &'r Store,
        triggers: &[BatchTrigger],
        stats: &mut JoinStats,
        scratch: &mut BatchScratch,
        out: &mut BatchOutput,
        grouped: bool,
        mut cache: Option<&mut ProbeCache<'r>>,
    ) -> Result<(), EvalError> {
        out.clear();
        let width = self.width;
        scratch.rows.clear();
        scratch.origins.clear();
        // The shared match buffer of grouped probe stages: group `g`'s
        // matches live at `group_ranges[g]`. Borrows the store, so it
        // cannot live in the reusable scratch; it reaches steady-state
        // capacity after the first stage.
        let mut group_matches: Vec<&StoredTuple> = Vec::new();

        // Bind the trigger atom against every delta tuple of the batch.
        if !self.trigger_rejects {
            for (i, trigger) in triggers.iter().enumerate() {
                if trigger.delta.tuple.arity() != self.trigger_arity {
                    continue;
                }
                let start = scratch.rows.len();
                scratch.rows.resize(start + width, None);
                if apply_ops(
                    &self.trigger_ops,
                    &trigger.delta.tuple,
                    &mut scratch.rows[start..],
                ) {
                    scratch.origins.push(i as u32);
                } else {
                    scratch.rows.truncate(start);
                }
            }
        }

        // Process the stages in body order over the whole row set. When
        // the last stage is a probe it is *fused* with head projection
        // (see below) and excluded here.
        let stage_limit = self.stages.len() - usize::from(self.fused_head.is_some());
        for stage in &self.stages[..stage_limit] {
            if scratch.origins.is_empty() {
                break;
            }
            match stage {
                Stage::Probe {
                    relation,
                    cols,
                    key,
                    arity,
                    ops,
                    reject_all,
                } => {
                    let BatchScratch {
                        rows,
                        origins,
                        next_rows,
                        next_origins,
                        key: key_buf,
                        group_of,
                        group_sizes,
                        group_map,
                        group_ranges,
                        probe_row,
                    } = &mut *scratch;
                    next_rows.clear();
                    next_origins.clear();
                    let stored = store.relation(relation);
                    // A single row cannot share anything within the
                    // batch, and its grouped accounting (one logical, one
                    // distinct probe) equals the per-row arm's exactly —
                    // skip the grouping machinery, which the per-event
                    // distributed workload would otherwise pay on every
                    // one-delta batch. A cross-rule cache overrides this:
                    // single rows then take the grouped arm so their
                    // probes share with other strands of the round.
                    let share = (grouped && origins.len() > 1) || cache.is_some();
                    if let (Some(stored), true) = (stored, share) {
                        group_and_probe(
                            stored,
                            relation,
                            width,
                            rows,
                            origins,
                            key,
                            cols,
                            *arity,
                            ops,
                            *reject_all,
                            stats,
                            key_buf,
                            group_of,
                            group_sizes,
                            group_map,
                            group_ranges,
                            probe_row,
                            &mut group_matches,
                            cache.as_deref_mut(),
                        );
                        // Pass 3: broadcast each group's match set to its
                        // members, in row order — the output is bit-equal
                        // to per-row probing (same candidates, same order,
                        // rows still grouped by ascending origin).
                        for r in 0..origins.len() {
                            let origin = origins[r];
                            let row = &rows[r * width..(r + 1) * width];
                            let seq_limit = triggers[origin as usize].seq_limit;
                            let (mstart, mend) = group_ranges[group_of[r] as usize];
                            for candidate in &group_matches[mstart as usize..mend as usize] {
                                if candidate.seq > seq_limit {
                                    continue;
                                }
                                let start = next_rows.len();
                                next_rows.extend_from_slice(row);
                                apply_binds(ops, &candidate.tuple, &mut next_rows[start..]);
                                next_origins.push(origin);
                            }
                        }
                    } else if let Some(stored) = stored {
                        // Ungrouped reference: one lookup per row.
                        for r in 0..origins.len() {
                            let origin = origins[r];
                            let row = &rows[r * width..(r + 1) * width];
                            build_probe_key(key, row, key_buf);
                            let seq_limit = triggers[origin as usize].seq_limit;
                            for candidate in stored.lookup(cols, key_buf, seq_limit, stats) {
                                if *reject_all || candidate.tuple.arity() != *arity {
                                    continue;
                                }
                                let start = next_rows.len();
                                next_rows.extend_from_slice(row);
                                if apply_ops(ops, &candidate.tuple, &mut next_rows[start..]) {
                                    next_origins.push(origin);
                                } else {
                                    next_rows.truncate(start);
                                }
                            }
                        }
                    }
                    std::mem::swap(rows, next_rows);
                    std::mem::swap(origins, next_origins);
                }
                Stage::Assign {
                    slot,
                    prebound,
                    expr,
                } => {
                    let mut keep = 0usize;
                    for r in 0..scratch.origins.len() {
                        let row = &mut scratch.rows[r * width..(r + 1) * width];
                        let value = eval_slot(expr, row)?;
                        let kept = if *prebound {
                            row[*slot].as_ref() == Some(&value)
                        } else {
                            row[*slot] = Some(value);
                            true
                        };
                        if kept {
                            if keep != r {
                                let (dst, src) = scratch.rows.split_at_mut(r * width);
                                dst[keep * width..(keep + 1) * width]
                                    .clone_from_slice(&src[..width]);
                                scratch.origins[keep] = scratch.origins[r];
                            }
                            keep += 1;
                        }
                    }
                    scratch.rows.truncate(keep * width);
                    scratch.origins.truncate(keep);
                }
                Stage::Filter(expr) => {
                    let mut keep = 0usize;
                    for r in 0..scratch.origins.len() {
                        let row = &scratch.rows[r * width..(r + 1) * width];
                        if eval_slot_bool(expr, row)? {
                            if keep != r {
                                let (dst, src) = scratch.rows.split_at_mut(r * width);
                                dst[keep * width..(keep + 1) * width]
                                    .clone_from_slice(&src[..width]);
                                scratch.origins[keep] = scratch.origins[r];
                            }
                            keep += 1;
                        }
                    }
                    scratch.rows.truncate(keep * width);
                    scratch.origins.truncate(keep);
                }
            }
        }

        // Emit the derivations, recording per-trigger group boundaries
        // (rows are processed in ascending-origin order throughout).
        let mut next_trigger = 0usize;
        if let (
            Some(fused_head),
            Some(Stage::Probe {
                relation,
                cols,
                key,
                arity,
                ops,
                reject_all,
            }),
        ) = (self.fused_head.as_ref(), self.stages.last())
        {
            // Fused final stage: the probe machinery is the same as the
            // mid-stage arm above, but every surviving (row, candidate)
            // pair projects its head tuple directly instead of copying
            // into an output row arena — emission order (row-major,
            // candidates in lookup order) is identical to running the
            // stage and then projecting.
            let BatchScratch {
                rows,
                origins,
                key: key_buf,
                group_of,
                group_sizes,
                group_map,
                group_ranges,
                probe_row,
                ..
            } = &mut *scratch;
            let stored = store.relation(relation);
            let share = (grouped && origins.len() > 1) || cache.is_some();
            if origins.is_empty() {
                // Nothing survived the earlier stages.
            } else if let (Some(stored), true) = (stored, share) {
                // Same single-row fast path as the mid-stage arm: one row
                // groups trivially, so it takes the per-row arm below —
                // unless a cross-rule cache is armed (see above).
                group_and_probe(
                    stored,
                    relation,
                    width,
                    rows,
                    origins,
                    key,
                    cols,
                    *arity,
                    ops,
                    *reject_all,
                    stats,
                    key_buf,
                    group_of,
                    group_sizes,
                    group_map,
                    group_ranges,
                    probe_row,
                    &mut group_matches,
                    cache,
                );
                for r in 0..origins.len() {
                    let origin = origins[r] as usize;
                    let row = &rows[r * width..(r + 1) * width];
                    let seq_limit = triggers[origin].seq_limit;
                    let (mstart, mend) = group_ranges[group_of[r] as usize];
                    for candidate in &group_matches[mstart as usize..mend as usize] {
                        if candidate.seq > seq_limit {
                            continue;
                        }
                        emit_fused(
                            fused_head,
                            &self.head_relation,
                            row,
                            candidate,
                            origin,
                            triggers,
                            &mut next_trigger,
                            out,
                        )?;
                    }
                }
            } else if let Some(stored) = stored {
                probe_row.clear();
                probe_row.resize(width, None);
                for r in 0..origins.len() {
                    let origin = origins[r] as usize;
                    let row = &rows[r * width..(r + 1) * width];
                    build_probe_key(key, row, key_buf);
                    let seq_limit = triggers[origin].seq_limit;
                    for candidate in stored.lookup(cols, key_buf, seq_limit, stats) {
                        if *reject_all || candidate.tuple.arity() != *arity {
                            continue;
                        }
                        if apply_ops(ops, &candidate.tuple, probe_row) {
                            emit_fused(
                                fused_head,
                                &self.head_relation,
                                row,
                                candidate,
                                origin,
                                triggers,
                                &mut next_trigger,
                                out,
                            )?;
                        }
                    }
                }
            }
        } else {
            // Unfused tail (the last stage is an assignment or filter, or
            // the rule has no non-trigger stages): project the head for
            // every surviving row.
            for r in 0..scratch.origins.len() {
                let origin = scratch.origins[r] as usize;
                while next_trigger <= origin {
                    out.offsets.push(out.derivations.len());
                    next_trigger += 1;
                }
                let row = &scratch.rows[r * width..(r + 1) * width];
                let mut values = Vec::with_capacity(self.head.len());
                for source in &self.head {
                    match source {
                        HeadSource::Const(c) => values.push(c.clone()),
                        HeadSource::Slot(slot, name) => values.push(
                            row[*slot]
                                .clone()
                                .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?,
                        ),
                        HeadSource::Unbound(name) => {
                            return Err(EvalError::UnboundVariable(name.clone()))
                        }
                        HeadSource::Aggregate => {
                            return Err(EvalError::TypeMismatch {
                                context:
                                    "aggregate heads are maintained by AggregateView, not strands"
                                        .into(),
                            })
                        }
                    }
                }
                let tuple = Tuple::new(values);
                let location = tuple.location();
                out.derivations.push(Derivation {
                    delta: TupleDelta {
                        relation: self.head_relation.clone(),
                        tuple,
                        sign: triggers[origin].delta.sign,
                    },
                    location,
                });
            }
        }
        while next_trigger <= triggers.len() {
            out.offsets.push(out.derivations.len());
            next_trigger += 1;
        }
        Ok(())
    }
}

/// Project one fused (row, candidate) pair into a head derivation,
/// maintaining the per-trigger offset bookkeeping.
#[allow(clippy::too_many_arguments)]
fn emit_fused(
    sources: &[FusedSource],
    head_relation: &str,
    row: &[Option<Value>],
    candidate: &StoredTuple,
    origin: usize,
    triggers: &[BatchTrigger],
    next_trigger: &mut usize,
    out: &mut BatchOutput,
) -> Result<(), EvalError> {
    while *next_trigger <= origin {
        out.offsets.push(out.derivations.len());
        *next_trigger += 1;
    }
    let mut values = Vec::with_capacity(sources.len());
    for source in sources {
        match source {
            FusedSource::Const(c) => values.push(c.clone()),
            FusedSource::Row(slot, name) => values.push(
                row[*slot]
                    .clone()
                    .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?,
            ),
            FusedSource::Cand(col) => {
                values.push(candidate.tuple.get(*col).expect("arity checked").clone())
            }
            FusedSource::Unbound(name) => return Err(EvalError::UnboundVariable(name.clone())),
            FusedSource::Aggregate => {
                return Err(EvalError::TypeMismatch {
                    context: "aggregate heads are maintained by AggregateView, not strands".into(),
                })
            }
        }
    }
    let tuple = Tuple::new(values);
    let location = tuple.location();
    out.derivations.push(Derivation {
        delta: TupleDelta {
            relation: head_relation.to_string(),
            tuple,
            sign: triggers[origin].delta.sign,
        },
        location,
    });
    Ok(())
}
