//! Batch-delta strand evaluation: slot-compiled rules over flat, reusable
//! environment buffers.
//!
//! [`crate::strand::CompiledStrand::fire`] evaluates one trigger delta at a
//! time, carrying its binding environments as `BTreeMap<String, Value>`s —
//! every join candidate clones a whole map (tree nodes *and* `String`
//! keys), which is the dominant per-tuple constant the profiles show once
//! index probing has removed the join-selectivity cost. This module is the
//! vectorized alternative: at compile time every variable of a rule gets a
//! fixed **slot**, terms and expressions are rewritten to slot references,
//! and at run time a whole batch of trigger deltas is drained through the
//! rule's stages using two flat column buffers (`current` / `next` rows of
//! `width` slots each) owned by a reusable [`BatchScratch`]. Extending an
//! environment is a row copy into the arena; no per-environment `Vec`,
//! map or `String` is ever allocated.
//!
//! # Equivalence contract
//!
//! For every trigger `i` of the batch, the derivations in
//! [`BatchOutput::for_trigger`] are exactly (same tuples, same order) what
//! `fire(store, trigger_i, seq_limit_i)` returns against the same store:
//! stages process rows in trigger order and extensions are appended
//! stably, so rows stay grouped by trigger and ordered exactly as the
//! nested tuple-at-a-time loops would have produced them. Join statistics
//! are also identical — one probe (or scan) is recorded per environment
//! per atom, exactly like the tuple path. The only caller-visible
//! divergence is *error selection* when several triggers of one batch
//! fail: stages run batch-wide, so the first error in stage order may
//! belong to a later trigger than the first error in trigger order (the
//! run still fails with an `EvalError` either way, and engines treat
//! post-error state as unspecified).

use crate::expr::{eval_binop, eval_builtin, EvalError};
use crate::index::JoinStats;
use crate::store::Store;
use crate::strand::{Derivation, ProbePlan};
use crate::tuple::{Tuple, TupleDelta};
use ndlog_lang::seminaive::DeltaRule;
use ndlog_lang::{Atom, Expr, Literal, Term, Value};
use std::collections::BTreeMap;

/// One trigger delta of a batch with its join visibility limit (PSN passes
/// the tuple's own timestamp; SN/BSN pass the iteration limit).
#[derive(Debug, Clone, Copy)]
pub struct BatchTrigger<'a> {
    /// The triggering delta.
    pub delta: &'a TupleDelta,
    /// Joins may only see stored tuples with `seq <= seq_limit`.
    pub seq_limit: u64,
}

/// How one bound value is produced at run time.
#[derive(Debug, Clone, PartialEq)]
enum SlotSource {
    Const(Value),
    Slot(usize),
}

/// One column-matching operation of an atom, in column order.
#[derive(Debug, Clone, PartialEq)]
enum BindOp {
    /// The column must equal a constant.
    CheckConst(usize, Value),
    /// The column binds a fresh slot.
    Bind(usize, usize),
    /// The column must equal an already-bound slot (bound by an earlier
    /// stage, or by an earlier column of this very atom).
    CheckSlot(usize, usize),
}

/// An expression with variables resolved to slots at compile time.
#[derive(Debug, Clone, PartialEq)]
enum SlotExpr {
    Const(Value),
    /// A slot reference; the name survives only for the unbound-variable
    /// error message.
    Slot(usize, String),
    /// A variable that is never bound anywhere in the rule: evaluating it
    /// is always an error, exactly like the map-based path.
    Unbound(String),
    Binary(ndlog_lang::BinOp, Box<SlotExpr>, Box<SlotExpr>),
    Call(String, Vec<SlotExpr>),
}

/// A head column source.
#[derive(Debug, Clone, PartialEq)]
enum HeadSource {
    Const(Value),
    Slot(usize, String),
    Unbound(String),
    /// Aggregate head terms are maintained by `AggregateView`, never fired
    /// through strands; raise the same error the tuple path does.
    Aggregate,
}

/// A non-trigger body literal, slot-compiled.
#[derive(Debug, Clone, PartialEq)]
enum Stage {
    Probe {
        relation: String,
        /// Sorted bound columns to probe on (empty = full scan); mirrors
        /// the strand's [`ProbePlan`].
        cols: Vec<usize>,
        /// Value per probe column, parallel to `cols`.
        key: Vec<SlotSource>,
        /// Expected candidate arity.
        arity: usize,
        /// Residual column ops — only the columns the probe key does *not*
        /// already guarantee ([`crate::relation::Relation::lookup`]
        /// enforces every probed column, so re-checking them per candidate
        /// would be redundant work the tuple path still performs).
        ops: Vec<BindOp>,
        /// The atom mentions an aggregate term: no candidate can match
        /// (exactly `bind_atom`'s behaviour).
        reject_all: bool,
    },
    Assign {
        slot: usize,
        /// Statically known: is the slot already bound when this stage
        /// runs? (Binding order is fixed at compile time.)
        prebound: bool,
        expr: SlotExpr,
    },
    Filter(SlotExpr),
}

/// A slot-compiled rule strand.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPlan {
    /// Total slot count (row width).
    width: usize,
    /// Trigger-tuple arity.
    trigger_arity: usize,
    /// Trigger-atom column ops.
    trigger_ops: Vec<BindOp>,
    /// The trigger atom mentions an aggregate term: nothing can bind.
    trigger_rejects: bool,
    stages: Vec<Stage>,
    head: Vec<HeadSource>,
    head_relation: String,
}

/// Reusable flat buffers for batch firing: environment rows (`width`
/// slots per row, `Option<Value>` so unbound slots are explicit), the
/// trigger index each row descends from, and a probe-key scratch. One
/// scratch serves any number of strands and batches; buffers only grow.
#[derive(Debug, Default)]
pub struct BatchScratch {
    rows: Vec<Option<Value>>,
    origins: Vec<u32>,
    next_rows: Vec<Option<Value>>,
    next_origins: Vec<u32>,
    key: Vec<Value>,
}

/// The derivations of one batch, grouped by trigger.
#[derive(Debug, Default)]
pub struct BatchOutput {
    derivations: Vec<Derivation>,
    /// `offsets[i]..offsets[i + 1]` bounds trigger `i`'s derivations.
    offsets: Vec<usize>,
}

impl BatchOutput {
    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.derivations.clear();
        self.offsets.clear();
    }

    /// The derivations of trigger `i`, in firing order.
    pub fn for_trigger(&self, i: usize) -> &[Derivation] {
        &self.derivations[self.offsets[i]..self.offsets[i + 1]]
    }

    /// All derivations in (trigger, firing) order.
    pub fn all(&self) -> &[Derivation] {
        &self.derivations
    }

    /// Move the derivations out, calling `f(trigger_index, derivation)` in
    /// (trigger, firing) order. Leaves the output empty for reuse.
    pub fn drain_into(&mut self, mut f: impl FnMut(usize, Derivation)) {
        let mut group = 0usize;
        for (pos, d) in self.derivations.drain(..).enumerate() {
            while group + 1 < self.offsets.len() && self.offsets[group + 1] <= pos {
                group += 1;
            }
            f(group, d);
        }
        self.offsets.clear();
    }
}

/// Compile a delta rule against its probe plans (parallel to the rule's
/// body literals, as produced by the strand compiler).
pub(crate) fn compile(rule: &DeltaRule, plans: &[Option<ProbePlan>]) -> BatchPlan {
    let body = &rule.rule.body;
    // Slot allocation follows the same walk as probe-plan compilation:
    // trigger vars first, then each literal in body order.
    let mut slots: BTreeMap<String, usize> = BTreeMap::new();
    let mut slot_of = |name: &str, slots: &mut BTreeMap<String, usize>| -> usize {
        if let Some(&s) = slots.get(name) {
            return s;
        }
        let s = slots.len();
        slots.insert(name.to_string(), s);
        s
    };

    let (trigger_arity, trigger_ops, trigger_rejects) = match body.get(rule.trigger) {
        Some(Literal::Atom(atom)) => {
            let (ops, rejects) = compile_atom_ops(atom, &[], &mut slots, &mut slot_of);
            (atom.arity(), ops, rejects)
        }
        _ => (0, Vec::new(), true),
    };

    let mut stages = Vec::new();
    for (idx, literal) in body.iter().enumerate() {
        if idx == rule.trigger {
            continue;
        }
        match literal {
            Literal::Atom(atom) => {
                let plan = plans.get(idx).and_then(Option::as_ref);
                let (cols, key) = match plan {
                    Some(plan) => (
                        plan.cols.clone(),
                        plan.sources
                            .iter()
                            .map(|src| match src {
                                crate::strand::ColumnSource::Const(c) => {
                                    SlotSource::Const(c.clone())
                                }
                                crate::strand::ColumnSource::Var(name) => {
                                    SlotSource::Slot(*slots.get(name).expect("plan vars are bound"))
                                }
                            })
                            .collect(),
                    ),
                    None => (Vec::new(), Vec::new()),
                };
                let (ops, reject_all) = compile_atom_ops(atom, &cols, &mut slots, &mut slot_of);
                stages.push(Stage::Probe {
                    relation: atom.name.clone(),
                    cols,
                    key,
                    arity: atom.arity(),
                    ops,
                    reject_all,
                });
            }
            Literal::Assign(assign) => {
                let prebound = slots.contains_key(&assign.var);
                let expr = compile_expr(&assign.expr, &slots);
                let slot = slot_of(&assign.var, &mut slots);
                stages.push(Stage::Assign {
                    slot,
                    prebound,
                    expr,
                });
            }
            Literal::Filter(expr) => {
                stages.push(Stage::Filter(compile_expr(expr, &slots)));
            }
        }
    }

    let head = rule
        .rule
        .head
        .args
        .iter()
        .map(|term| match term {
            Term::Const(c) => HeadSource::Const(c.clone()),
            Term::Var(v) => match slots.get(&v.name) {
                Some(&s) => HeadSource::Slot(s, v.name.clone()),
                None => HeadSource::Unbound(v.name.clone()),
            },
            Term::Agg(_) => HeadSource::Aggregate,
        })
        .collect();

    BatchPlan {
        width: slots.len(),
        trigger_arity,
        trigger_ops,
        trigger_rejects,
        stages,
        head,
        head_relation: rule.rule.head.name.clone(),
    }
}

/// Compile an atom's column ops, skipping the columns already guaranteed
/// by the probe key (`covered`, sorted). Returns the ops plus whether the
/// atom can never match (it mentions an aggregate term).
fn compile_atom_ops(
    atom: &Atom,
    covered: &[usize],
    slots: &mut BTreeMap<String, usize>,
    slot_of: &mut impl FnMut(&str, &mut BTreeMap<String, usize>) -> usize,
) -> (Vec<BindOp>, bool) {
    let mut ops = Vec::new();
    let mut rejects = false;
    // Within-atom bookkeeping: a repeated variable's first occurrence
    // binds, later occurrences check — also across the covered/uncovered
    // boundary, so every variable the atom mentions ends up with a slot.
    let mut bound_here: BTreeMap<&str, usize> = BTreeMap::new();
    for (col, term) in atom.args.iter().enumerate() {
        match term {
            Term::Agg(_) => rejects = true,
            Term::Const(c) => {
                if !covered.contains(&col) {
                    ops.push(BindOp::CheckConst(col, c.clone()));
                }
            }
            Term::Var(v) => {
                let preexisting =
                    slots.contains_key(&v.name) || bound_here.contains_key(v.name.as_str());
                let slot = match bound_here.get(v.name.as_str()) {
                    Some(&s) => s,
                    None => {
                        let s = slot_of(&v.name, slots);
                        bound_here.insert(v.name.as_str(), s);
                        s
                    }
                };
                if covered.contains(&col) {
                    // The probe key already pins this column to the slot's
                    // value; nothing to re-check per candidate.
                    continue;
                }
                if preexisting {
                    ops.push(BindOp::CheckSlot(col, slot));
                } else {
                    ops.push(BindOp::Bind(col, slot));
                }
            }
        }
    }
    (ops, rejects)
}

/// Resolve an expression's variables against the slots bound so far.
fn compile_expr(expr: &Expr, slots: &BTreeMap<String, usize>) -> SlotExpr {
    match expr {
        Expr::Const(v) => SlotExpr::Const(v.clone()),
        Expr::Var(name) => match slots.get(name) {
            Some(&s) => SlotExpr::Slot(s, name.clone()),
            None => SlotExpr::Unbound(name.clone()),
        },
        Expr::Binary(op, l, r) => SlotExpr::Binary(
            *op,
            Box::new(compile_expr(l, slots)),
            Box::new(compile_expr(r, slots)),
        ),
        Expr::Call(name, args) => SlotExpr::Call(
            name.clone(),
            args.iter().map(|a| compile_expr(a, slots)).collect(),
        ),
    }
}

fn eval_slot(expr: &SlotExpr, row: &[Option<Value>]) -> Result<Value, EvalError> {
    match expr {
        SlotExpr::Const(v) => Ok(v.clone()),
        SlotExpr::Slot(slot, name) => row[*slot]
            .clone()
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        SlotExpr::Unbound(name) => Err(EvalError::UnboundVariable(name.clone())),
        SlotExpr::Binary(op, l, r) => {
            let lv = eval_slot(l, row)?;
            let rv = eval_slot(r, row)?;
            eval_binop(*op, &lv, &rv)
        }
        SlotExpr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_slot(a, row)?);
            }
            eval_builtin(name, &vals)
        }
    }
}

/// Coerce a filter result to a boolean with the same truthiness rules as
/// the map-based path.
fn eval_slot_bool(expr: &SlotExpr, row: &[Option<Value>]) -> Result<bool, EvalError> {
    match eval_slot(expr, row)? {
        Value::Bool(b) => Ok(b),
        Value::Int(i) => Ok(i != 0),
        Value::Float(f) => Ok(f != 0.0),
        _ => Err(EvalError::TypeMismatch {
            context: "boolean filter in batch stage".into(),
        }),
    }
}

/// Apply an atom's residual ops to a candidate tuple against a row whose
/// new slots may be written in place. Ops run in column order, so a
/// within-atom repeated variable's check sees the bind from an earlier
/// column of the same candidate. Returns false on the first mismatch.
fn apply_ops(ops: &[BindOp], tuple: &Tuple, row: &mut [Option<Value>]) -> bool {
    for op in ops {
        match op {
            BindOp::CheckConst(col, c) => {
                if tuple.get(*col) != Some(c) {
                    return false;
                }
            }
            BindOp::Bind(col, slot) => {
                row[*slot] = Some(tuple.get(*col).expect("arity checked").clone());
            }
            BindOp::CheckSlot(col, slot) => {
                if row[*slot].as_ref() != tuple.get(*col) {
                    return false;
                }
            }
        }
    }
    true
}

impl BatchPlan {
    /// Drain a whole batch of trigger deltas through the compiled stages.
    /// See the module docs for the equivalence contract with the
    /// tuple-at-a-time `fire` path.
    pub(crate) fn fire_batch(
        &self,
        store: &Store,
        triggers: &[BatchTrigger],
        stats: &mut JoinStats,
        scratch: &mut BatchScratch,
        out: &mut BatchOutput,
    ) -> Result<(), EvalError> {
        out.clear();
        let width = self.width;
        scratch.rows.clear();
        scratch.origins.clear();

        // Bind the trigger atom against every delta tuple of the batch.
        if !self.trigger_rejects {
            for (i, trigger) in triggers.iter().enumerate() {
                if trigger.delta.tuple.arity() != self.trigger_arity {
                    continue;
                }
                let start = scratch.rows.len();
                scratch.rows.resize(start + width, None);
                if apply_ops(
                    &self.trigger_ops,
                    &trigger.delta.tuple,
                    &mut scratch.rows[start..],
                ) {
                    scratch.origins.push(i as u32);
                } else {
                    scratch.rows.truncate(start);
                }
            }
        }

        // Process the stages in body order over the whole row set.
        for stage in &self.stages {
            if scratch.origins.is_empty() {
                break;
            }
            match stage {
                Stage::Probe {
                    relation,
                    cols,
                    key,
                    arity,
                    ops,
                    reject_all,
                } => {
                    scratch.next_rows.clear();
                    scratch.next_origins.clear();
                    let stored = store.relation(relation);
                    if let Some(stored) = stored {
                        for r in 0..scratch.origins.len() {
                            let origin = scratch.origins[r];
                            let row = &scratch.rows[r * width..(r + 1) * width];
                            scratch.key.clear();
                            for src in key {
                                match src {
                                    SlotSource::Const(c) => scratch.key.push(c.clone()),
                                    SlotSource::Slot(s) => scratch
                                        .key
                                        .push(row[*s].clone().expect("probe-key slots are bound")),
                                }
                            }
                            let seq_limit = triggers[origin as usize].seq_limit;
                            for candidate in stored.lookup(cols, &scratch.key, seq_limit, stats) {
                                // An aggregate-term atom rejects every
                                // candidate, but the lookup above still
                                // runs so the probe accounting matches
                                // `bind_atom`'s tuple path exactly.
                                if *reject_all || candidate.tuple.arity() != *arity {
                                    continue;
                                }
                                let start = scratch.next_rows.len();
                                scratch.next_rows.extend_from_slice(row);
                                if apply_ops(ops, &candidate.tuple, &mut scratch.next_rows[start..])
                                {
                                    scratch.next_origins.push(origin);
                                } else {
                                    scratch.next_rows.truncate(start);
                                }
                            }
                        }
                    }
                    std::mem::swap(&mut scratch.rows, &mut scratch.next_rows);
                    std::mem::swap(&mut scratch.origins, &mut scratch.next_origins);
                }
                Stage::Assign {
                    slot,
                    prebound,
                    expr,
                } => {
                    let mut keep = 0usize;
                    for r in 0..scratch.origins.len() {
                        let row = &mut scratch.rows[r * width..(r + 1) * width];
                        let value = eval_slot(expr, row)?;
                        let kept = if *prebound {
                            row[*slot].as_ref() == Some(&value)
                        } else {
                            row[*slot] = Some(value);
                            true
                        };
                        if kept {
                            if keep != r {
                                let (dst, src) = scratch.rows.split_at_mut(r * width);
                                dst[keep * width..(keep + 1) * width]
                                    .clone_from_slice(&src[..width]);
                                scratch.origins[keep] = scratch.origins[r];
                            }
                            keep += 1;
                        }
                    }
                    scratch.rows.truncate(keep * width);
                    scratch.origins.truncate(keep);
                }
                Stage::Filter(expr) => {
                    let mut keep = 0usize;
                    for r in 0..scratch.origins.len() {
                        let row = &scratch.rows[r * width..(r + 1) * width];
                        if eval_slot_bool(expr, row)? {
                            if keep != r {
                                let (dst, src) = scratch.rows.split_at_mut(r * width);
                                dst[keep * width..(keep + 1) * width]
                                    .clone_from_slice(&src[..width]);
                                scratch.origins[keep] = scratch.origins[r];
                            }
                            keep += 1;
                        }
                    }
                    scratch.rows.truncate(keep * width);
                    scratch.origins.truncate(keep);
                }
            }
        }

        // Project the head for every surviving row, recording per-trigger
        // group boundaries (rows are still grouped by ascending origin).
        let mut next_trigger = 0usize;
        for r in 0..scratch.origins.len() {
            let origin = scratch.origins[r] as usize;
            while next_trigger <= origin {
                out.offsets.push(out.derivations.len());
                next_trigger += 1;
            }
            let row = &scratch.rows[r * width..(r + 1) * width];
            let mut values = Vec::with_capacity(self.head.len());
            for source in &self.head {
                match source {
                    HeadSource::Const(c) => values.push(c.clone()),
                    HeadSource::Slot(slot, name) => values.push(
                        row[*slot]
                            .clone()
                            .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?,
                    ),
                    HeadSource::Unbound(name) => {
                        return Err(EvalError::UnboundVariable(name.clone()))
                    }
                    HeadSource::Aggregate => {
                        return Err(EvalError::TypeMismatch {
                            context: "aggregate heads are maintained by AggregateView, not strands"
                                .into(),
                        })
                    }
                }
            }
            let tuple = Tuple::new(values);
            let location = tuple.location();
            out.derivations.push(Derivation {
                delta: TupleDelta {
                    relation: self.head_relation.clone(),
                    tuple,
                    sign: triggers[origin].delta.sign,
                },
                location,
            });
        }
        while next_trigger <= triggers.len() {
            out.offsets.push(out.derivations.len());
            next_trigger += 1;
        }
        Ok(())
    }
}
