//! Delta tap: the subscription hook behind live queries.
//!
//! A [`DeltaTap`] records the exact *visibility transitions* of subscribed
//! relations as the evaluator maintains the fixpoint: an insert event when
//! a tuple's derivation count rises from zero, a delete event when it
//! falls back to zero. Duplicate derivations and stale deletions (count
//! changes that do not cross zero) are absorbed before they reach
//! the tap, and a keyed replacement appears as the delete of the old tuple
//! followed by the insert of the new winner — so per tuple the stream is a
//! strictly alternating `+t, -t, +t, …`, and replaying it from an empty
//! set reconstructs the relation bit-for-bit (`tests/live_deltas.rs`
//! proves this property under churn for every strategy).
//!
//! A DRed pass may over-delete a tuple and re-derive it in the same batch;
//! subscribers then see a `-t, +t` pair. That is deliberate: the tuple's
//! supporting derivations really did vanish and reappear, and collapsing
//! the pair would require withholding deltas until the batch ends, which
//! the session layer — not the tap — is free to do.
//!
//! The tap is embedded in [`Evaluator`](crate::Evaluator) and
//! `NodeEngine`; with no subscribed relations it reduces to one empty-set
//! membership probe per visibility change.

use crate::tuple::TupleDelta;
use std::collections::BTreeSet;

/// Records visibility transitions of subscribed relations.
#[derive(Debug, Default, Clone)]
pub struct DeltaTap {
    relations: BTreeSet<String>,
    events: Vec<TupleDelta>,
}

impl DeltaTap {
    /// A tap with no subscriptions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording a relation's visibility transitions. Events are
    /// recorded from the *next* store change on; subscribers wanting the
    /// current contents first take a snapshot (the session layer does).
    pub fn subscribe(&mut self, relation: impl Into<String>) {
        self.relations.insert(relation.into());
    }

    /// Stop recording a relation. Returns whether it was subscribed.
    /// Already-recorded events are kept until [`drain`](Self::drain).
    pub fn unsubscribe(&mut self, relation: &str) -> bool {
        self.relations.remove(relation)
    }

    /// Is this relation being recorded?
    pub fn is_subscribed(&self, relation: &str) -> bool {
        self.relations.contains(relation)
    }

    /// The subscribed relations, sorted.
    pub fn subscribed(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(String::as_str)
    }

    /// Record one visibility transition (called by the evaluator at the
    /// two points where a tuple actually enters or leaves the store).
    #[inline]
    pub fn record(&mut self, delta: &TupleDelta) {
        if !self.relations.is_empty() && self.relations.contains(&delta.relation) {
            self.events.push(delta.clone());
        }
    }

    /// Take the recorded events, in store order, leaving the tap empty.
    pub fn drain(&mut self) -> Vec<TupleDelta> {
        std::mem::take(&mut self.events)
    }

    /// Number of events recorded since the last drain.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Any events pending?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use ndlog_lang::Value;

    fn delta(rel: &str, v: i64) -> TupleDelta {
        TupleDelta::insert(rel.to_string(), Tuple::new(vec![Value::Int(v)]))
    }

    #[test]
    fn records_only_subscribed_relations() {
        let mut tap = DeltaTap::new();
        tap.subscribe("path");
        tap.record(&delta("path", 1));
        tap.record(&delta("link", 2));
        tap.record(&delta("path", 3));
        let events = tap.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|d| d.relation == "path"));
        assert!(tap.is_empty());
    }

    #[test]
    fn unsubscribe_stops_recording_but_keeps_events() {
        let mut tap = DeltaTap::new();
        tap.subscribe("p");
        tap.record(&delta("p", 1));
        assert!(tap.unsubscribe("p"));
        assert!(!tap.unsubscribe("p"));
        tap.record(&delta("p", 2));
        assert_eq!(tap.drain().len(), 1);
    }

    #[test]
    fn subscription_introspection() {
        let mut tap = DeltaTap::new();
        tap.subscribe("b");
        tap.subscribe("a");
        tap.subscribe("a");
        assert!(tap.is_subscribed("a"));
        assert!(!tap.is_subscribed("c"));
        assert_eq!(tap.subscribed().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
