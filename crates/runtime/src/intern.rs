//! A global, thread-safe [`Value`] interner.
//!
//! Secondary-index maintenance used to clone every bound-column projection
//! into an owned `Vec<Value>` bucket key, and every bucket lookup hashed
//! and compared whole values — for path vectors that means walking an
//! entire list per index operation. The interner collapses each distinct
//! value to a fixed-size [`ValueId`] once, so index buckets hash and
//! compare `u32`s instead of values (see [`crate::index`]).
//!
//! # Semantics
//!
//! Id equality is exactly [`Value`] equality: two values intern to the same
//! id if and only if `a == b`. Note that `Value`'s equality conflates
//! numerically equal integers and floats (`Int(3) == Float(3.0)`), so both
//! intern to one id — precisely the behaviour hash-map bucket keys had
//! before interning, which is what keeps probes on mixed-numeric keys
//! finding their tuples. `resolve` returns a value equal (in that same
//! sense) to every value that interned to the id.
//!
//! # Determinism
//!
//! Ids are assigned in first-intern order, so they are **stable within a
//! run** (an id never changes or is reused) but carry no meaning across
//! runs and no relationship to `Value`'s ordering. Nothing ordered by ids
//! is ever externally observable: ids key hash maps only, while every
//! iteration order the engines expose (stored tuples, probe results) is
//! still governed by `Value`/primary-key order. Concurrent interning from
//! multiple executor threads may assign ids in different orders on
//! different runs without affecting any result — which is why the parallel
//! engine stays bit-for-bit identical to the sequential one.
//!
//! # Lifetime and leak policy
//!
//! Interned values are never freed: the table lives for the process and
//! grows with the set of distinct values **ever stored in any column of
//! an indexed relation** — since the columnar buckets of
//! [`crate::index`] carry per-column id arrays, the relation write path
//! ([`intern_all_into`]) interns whole tuples, not just the
//! index-signature projections. Under churn workloads that is the
//! cumulative history, not the currently stored data, so a
//! very-long-running engine minting fresh values every burst (unique
//! costs, fresh path vectors) trades memory for the id fast path (an
//! explicit, documented trade; epoch-based reclamation is a possible
//! follow-on). To
//! keep transient values from growing the table, every non-storing path —
//! probe keys *and* index removals — uses [`lookup`] (read-only): a value
//! that was never interned cannot match any indexed tuple, so a miss
//! simply means "no bucket".

use ndlog_lang::Value;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// A fixed-size handle to an interned [`Value`]. Id equality is `Value`
/// equality (see the module docs for the numeric-conflation caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The raw id (useful for diagnostics).
    pub fn raw(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct Inner {
    ids: HashMap<Value, u32>,
    values: Vec<Value>,
}

fn table() -> &'static RwLock<Inner> {
    static TABLE: OnceLock<RwLock<Inner>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(Inner::default()))
}

/// Intern a value, assigning a fresh id on first sight. Idempotent and
/// thread-safe; the common re-intern case takes only a read lock.
pub fn intern(value: &Value) -> ValueId {
    {
        let inner = table().read().expect("interner lock");
        if let Some(&id) = inner.ids.get(value) {
            return ValueId(id);
        }
    }
    let mut inner = table().write().expect("interner lock");
    if let Some(&id) = inner.ids.get(value) {
        return ValueId(id);
    }
    let id = u32::try_from(inner.values.len()).expect("interner overflow");
    inner.values.push(value.clone());
    inner.ids.insert(value.clone(), id);
    ValueId(id)
}

/// Read-only lookup: the id of a previously interned value, or `None` when
/// the value has never been interned (in which case no indexed tuple can
/// carry it). Probe paths use this so transient probe keys never grow the
/// table.
pub fn lookup(value: &Value) -> Option<ValueId> {
    table()
        .read()
        .expect("interner lock")
        .ids
        .get(value)
        .copied()
        .map(ValueId)
}

/// The value an id stands for (a clone; values are cheap to clone). When
/// several `Value`-equal representations interned to the id (e.g. `Int(3)`
/// and `Float(3.0)`), this returns the first one seen.
pub fn resolve(id: ValueId) -> Value {
    table().read().expect("interner lock").values[id.0 as usize].clone()
}

/// Intern every value of a projection into `out` (cleared first). The
/// write path of index maintenance: stored values must always have ids.
/// One read lock covers the whole key; only genuinely new values pay a
/// write-lock round trip.
pub fn intern_into(values: &[&Value], out: &mut Vec<ValueId>) {
    out.clear();
    out.reserve(values.len());
    {
        let inner = table().read().expect("interner lock");
        for v in values {
            match inner.ids.get(*v) {
                Some(&id) => out.push(ValueId(id)),
                None => break,
            }
        }
    }
    for v in &values[out.len()..] {
        out.push(intern(v));
    }
}

/// Owned-slice variant of [`intern_into`], for the relation write path
/// that interns every column of a stored tuple once and shares the ids
/// across its indexes.
pub fn intern_all_into(values: &[Value], out: &mut Vec<ValueId>) {
    out.clear();
    out.reserve(values.len());
    {
        let inner = table().read().expect("interner lock");
        for v in values {
            match inner.ids.get(v) {
                Some(&id) => out.push(ValueId(id)),
                None => break,
            }
        }
    }
    for v in &values[out.len()..] {
        out.push(intern(v));
    }
}

/// Look up every value of a probe key into `out` (cleared first), under a
/// single read lock. Returns false — leaving `out` incomplete — as soon
/// as any value has no id, meaning the probe cannot match anything.
pub fn lookup_into(values: &[Value], out: &mut Vec<ValueId>) -> bool {
    out.clear();
    out.reserve(values.len());
    let inner = table().read().expect("interner lock");
    for v in values {
        match inner.ids.get(v) {
            Some(&id) => out.push(ValueId(id)),
            None => return false,
        }
    }
    true
}

/// Borrowed-projection variant of [`lookup_into`], for callers that hold
/// `&Value`s (index removal).
pub fn lookup_refs_into(values: &[&Value], out: &mut Vec<ValueId>) -> bool {
    out.clear();
    out.reserve(values.len());
    let inner = table().read().expect("interner lock");
    for v in values {
        match inner.ids.get(*v) {
            Some(&id) => out.push(ValueId(id)),
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_net::NodeAddr;

    #[test]
    fn ids_are_stable_and_equality_mirrors_value_equality() {
        let a = intern(&Value::Int(42));
        let b = intern(&Value::Int(42));
        assert_eq!(a, b, "re-interning returns the same id");
        let c = intern(&Value::Int(43));
        assert_ne!(a, c);
        // Numeric conflation: Int(3) == Float(3.0) => same id, matching the
        // pre-interning bucket-key semantics.
        let i3 = intern(&Value::Int(3));
        let f3 = intern(&Value::Float(3.0));
        assert_eq!(i3, f3);
        assert_ne!(i3, intern(&Value::Float(3.5)));
    }

    #[test]
    fn round_trips_are_lossless_under_value_equality() {
        let samples = vec![
            Value::Addr(NodeAddr(7)),
            Value::Int(-9),
            Value::Float(2.5),
            Value::Float(-0.0),
            Value::Bool(true),
            Value::str("a string"),
            Value::list(vec![Value::addr(1u32), Value::addr(2u32), Value::Int(5)]),
            Value::nil(),
        ];
        for v in &samples {
            let id = intern(v);
            assert_eq!(&resolve(id), v, "round-trip of {v}");
            assert_eq!(lookup(v), Some(id));
        }
        // Index keys rely on total_cmp float ordering: distinct bit
        // patterns that compare unequal get distinct ids, and NaN (equal to
        // itself under total_cmp) round-trips consistently too.
        let nan = Value::Float(f64::NAN);
        let nan_id = intern(&nan);
        assert_eq!(intern(&Value::Float(f64::NAN)), nan_id);
        assert_eq!(resolve(nan_id), nan);
        assert_ne!(nan_id, intern(&Value::Float(0.0)));
    }

    #[test]
    fn lookup_never_grows_the_table() {
        let novel = Value::str("never-interned-probe-key-3f1a");
        assert_eq!(lookup(&novel), None);
        assert_eq!(lookup(&novel), None, "lookup must not intern");
        let id = intern(&novel);
        assert_eq!(lookup(&novel), Some(id));
    }

    #[test]
    fn lookup_into_fails_fast_on_unknown_values() {
        let known = Value::Int(1_001);
        intern(&known);
        let mut out = Vec::new();
        assert!(!lookup_into(
            &[known.clone(), Value::str("unknown-9b2c")],
            &mut out
        ));
        assert!(lookup_into(std::slice::from_ref(&known), &mut out));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn concurrent_interning_yields_stable_ids_within_a_run() {
        // Four threads race to intern the same 64 values plus a private
        // set each; every thread must observe identical ids for the shared
        // values, and re-interning after the race must return them again.
        let shared: Vec<Value> = (0..64)
            .map(|i| {
                Value::list(vec![
                    Value::Int(i),
                    Value::str(format!("shared-{i}")),
                    Value::addr(i as u32),
                ])
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::with_capacity(shared.len());
                for (i, v) in shared.iter().enumerate() {
                    seen.push(intern(v));
                    // Private values interleave the shared interning.
                    intern(&Value::str(format!("private-{t}-{i}")));
                }
                seen
            }));
        }
        let per_thread: Vec<Vec<ValueId>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &per_thread[1..] {
            assert_eq!(ids, &per_thread[0], "threads disagree on shared ids");
        }
        for (v, &id) in shared.iter().zip(&per_thread[0]) {
            assert_eq!(intern(v), id, "ids must be stable for the whole run");
            assert_eq!(resolve(id), *v);
        }
    }
}
