//! Secondary hash indexes over stored relations.
//!
//! The P2 dataflow fires a rule strand once per arriving delta and joins it
//! against the *stored* tables of the other body predicates. Without
//! indexes every such join is a full scan — O(|relation|) work per binding
//! environment — which makes per-delta work quadratic-ish on the hot path
//! of every experiment. This module provides the storage half of the fix
//! (the compilation half is [`crate::strand::ProbePlan`]):
//!
//! * an [`IndexSignature`] names a set of columns that a join binds to
//!   concrete values (a *bound-column signature*, the same notion index-
//!   driven homomorphism search uses for conceptual-graph matching);
//! * a [`SecondaryIndex`] maps each distinct projection of a relation onto
//!   that signature to the **primary keys** of the tuples carrying it, so a
//!   probe touches exactly the matching tuples;
//! * [`crate::relation::Relation`] maintains its indexes incrementally on
//!   insert, key-replacement, deletion and soft-state expiry, and answers
//!   [`crate::relation::Relation::probe`] in O(matches).
//!
//! Indexes are declared once per program (the evaluator and the per-node
//! engines collect every compiled strand's signatures up front), never per
//! join.
//!
//! # Interned keys
//!
//! Bucket keys are **interned**: a projection is mapped through the global
//! [`crate::intern`] table to a fixed-size `[ValueId]`, so maintaining or
//! probing an index hashes and compares `u32` ids instead of whole values
//! (a path-vector column no longer walks its list per index operation),
//! and the bucket map never clones projected `Value`s. Probe keys use the
//! read-only [`crate::intern::lookup`] path: a never-interned probe value
//! cannot match any stored tuple, so the probe answers "empty" without
//! growing the table. The **primary keys** inside each bucket are shared
//! `Arc<[Value]>`s — one allocation per stored tuple, reference-bumped into
//! every index instead of deep-cloned — kept in a `BTreeSet` ordered by
//! *value* (never by id), so probe results iterate in deterministic
//! primary-key order and simulation runs stay bit-for-bit reproducible.

use crate::intern::{self, ValueId};
use ndlog_lang::Value;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Join-level counters accumulated while firing strands: how many joins
/// went through an index probe vs. a scan, and how many stored tuples were
/// examined in total. `tuples_examined` is the paper's computation-overhead
/// proxy: with indexes it is proportional to the number of matches rather
/// than the relation size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Joins answered by an index probe.
    pub index_probes: usize,
    /// Joins that fell back to scanning the relation (no bound columns, or
    /// no index declared for the signature).
    pub scans: usize,
    /// Stored tuples examined across all probes and scans.
    pub tuples_examined: usize,
}

impl std::ops::AddAssign for JoinStats {
    fn add_assign(&mut self, other: JoinStats) {
        self.index_probes += other.index_probes;
        self.scans += other.scans;
        self.tuples_examined += other.tuples_examined;
    }
}

/// A normalized (sorted, deduplicated) set of bound columns identifying an
/// index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexSignature(Vec<usize>);

impl IndexSignature {
    /// Normalize an arbitrary column list into a signature.
    pub fn new(cols: &[usize]) -> Self {
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        IndexSignature(cols)
    }

    /// The sorted column indexes.
    pub fn columns(&self) -> &[usize] {
        &self.0
    }

    /// Whether the signature binds no columns (a degenerate "index"
    /// equivalent to a full scan; never materialized).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether every column of this signature appears in `cols` (which
    /// must be sorted ascending): an index on this signature can serve a
    /// lookup binding `cols`, with the leftover columns checked residually.
    pub fn is_covered_by(&self, cols: &[usize]) -> bool {
        // Both sides are sorted ascending, so a single forward pass over
        // `cols` suffices.
        let mut cols = cols.iter();
        self.0.iter().all(|&col| cols.by_ref().any(|&c| c == col))
    }
}

/// A bucket: the primary keys of the tuples sharing one projection, in
/// deterministic (value-sorted) order.
pub type Bucket = BTreeSet<Arc<[Value]>>;

/// A hash index from an interned bound-column projection to the primary
/// keys of the tuples carrying it.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    signature: IndexSignature,
    buckets: HashMap<Box<[ValueId]>, Bucket>,
    /// Total number of (projection, primary-key) entries, for accounting.
    entries: usize,
    /// Reusable id scratch for the maintenance (write) path.
    scratch: Vec<ValueId>,
}

impl SecondaryIndex {
    /// An empty index over the given signature.
    pub fn new(signature: IndexSignature) -> Self {
        SecondaryIndex {
            signature,
            buckets: HashMap::new(),
            entries: 0,
            scratch: Vec::new(),
        }
    }

    /// The signature this index serves.
    pub fn signature(&self) -> &IndexSignature {
        &self.signature
    }

    /// Number of (projection, primary-key) entries currently indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Register a stored tuple's projection under its (shared) primary
    /// key. The projection values are interned; the key is an `Arc` bump.
    pub fn add(&mut self, projection: &[&Value], primary_key: Arc<[Value]>) {
        intern::intern_into(projection, &mut self.scratch);
        if self
            .buckets
            .entry(self.scratch.as_slice().into())
            .or_default()
            .insert(primary_key)
        {
            self.entries += 1;
        }
    }

    /// Remove a stored tuple's projection entry. Returns whether an entry
    /// was actually removed (false indicates the index was already
    /// consistent, e.g. a stale-deletion no-op). Resolves the projection
    /// read-only: a projection containing a never-interned value cannot
    /// have an entry, so removals never grow the intern table.
    pub fn remove(&mut self, projection: &[&Value], primary_key: &[Value]) -> bool {
        if !intern::lookup_refs_into(projection, &mut self.scratch) {
            return false;
        }
        let Some(bucket) = self.buckets.get_mut(self.scratch.as_slice()) else {
            return false;
        };
        let removed = bucket.remove(primary_key);
        if removed {
            self.entries -= 1;
            if bucket.is_empty() {
                self.buckets.remove(self.scratch.as_slice());
            }
        }
        removed
    }

    /// The primary keys whose tuples project to `key_values`, in
    /// deterministic (sorted) order. Empty when no tuple matches.
    pub fn probe<'i>(&'i self, key_values: &[Value]) -> impl Iterator<Item = &'i Arc<[Value]>> {
        self.bucket(key_values).into_iter().flat_map(|b| b.iter())
    }

    /// The bucket for one projection, if any — the eager form of
    /// [`SecondaryIndex::probe`], used when the caller needs an iterator
    /// that borrows only the index (not the probe key). Probe values are
    /// resolved through the read-only interner path (one lock per probe,
    /// a reusable thread-local id buffer, no allocation), so a
    /// never-stored value answers `None` without growing the intern table.
    pub fn bucket(&self, key_values: &[Value]) -> Option<&Bucket> {
        thread_local! {
            static PROBE_IDS: std::cell::RefCell<Vec<ValueId>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        PROBE_IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            if !intern::lookup_into(key_values, &mut ids) {
                return None;
            }
            self.buckets.get(ids.as_slice())
        })
    }

    /// Number of distinct projections (buckets).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of primary keys filed under one projection (0 when absent):
    /// the tuples a probe on `key_values` examines.
    pub fn bucket_size(&self, key_values: &[Value]) -> usize {
        self.bucket(key_values).map_or(0, BTreeSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn key(xs: &[i64]) -> Arc<[Value]> {
        vals(xs).into()
    }

    fn add(idx: &mut SecondaryIndex, proj: &[i64], pk: &[i64]) {
        let proj = vals(proj);
        idx.add(&proj.iter().collect::<Vec<_>>(), key(pk));
    }

    fn remove(idx: &mut SecondaryIndex, proj: &[i64], pk: &[i64]) -> bool {
        let proj = vals(proj);
        idx.remove(&proj.iter().collect::<Vec<_>>(), &vals(pk))
    }

    #[test]
    fn signature_normalizes() {
        let sig = IndexSignature::new(&[2, 0, 2, 1]);
        assert_eq!(sig.columns(), &[0, 1, 2]);
        assert!(!sig.is_empty());
        assert!(IndexSignature::new(&[]).is_empty());
        assert_eq!(IndexSignature::new(&[1, 0]), IndexSignature::new(&[0, 1]));
    }

    #[test]
    fn add_probe_remove_roundtrip() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[0]));
        add(&mut idx, &[1], &[1, 10]);
        add(&mut idx, &[1], &[1, 20]);
        add(&mut idx, &[2], &[2, 30]);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bucket_count(), 2);

        let hits: Vec<&[Value]> = idx.probe(&vals(&[1])).map(|k| k.as_ref()).collect();
        assert_eq!(hits, vec![&vals(&[1, 10])[..], &vals(&[1, 20])[..]]);
        assert_eq!(idx.probe(&vals(&[9])).count(), 0);

        assert!(remove(&mut idx, &[1], &[1, 10]));
        assert!(
            !remove(&mut idx, &[1], &[1, 10]),
            "double remove is a no-op"
        );
        assert_eq!(idx.probe(&vals(&[1])).count(), 1);
        assert!(remove(&mut idx, &[1], &[1, 20]));
        assert_eq!(idx.bucket_count(), 1, "empty buckets are dropped");
        assert!(remove(&mut idx, &[2], &[2, 30]));
        assert!(idx.is_empty());
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[1]));
        add(&mut idx, &[5], &[0]);
        add(&mut idx, &[5], &[0]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn never_interned_probe_value_is_an_empty_bucket() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[0]));
        add(&mut idx, &[3], &[3, 1]);
        // A value that was never stored anywhere cannot match; the probe
        // must answer without interning it.
        let novel = Value::str("index-test-never-stored-77ab");
        assert!(idx.bucket(std::slice::from_ref(&novel)).is_none());
        assert_eq!(idx.bucket_size(std::slice::from_ref(&novel)), 0);
        assert_eq!(crate::intern::lookup(&novel), None);
    }
}
