//! Secondary hash indexes over stored relations.
//!
//! The P2 dataflow fires a rule strand once per arriving delta and joins it
//! against the *stored* tables of the other body predicates. Without
//! indexes every such join is a full scan — O(|relation|) work per binding
//! environment — which makes per-delta work quadratic-ish on the hot path
//! of every experiment. This module provides the storage half of the fix
//! (the compilation half is [`crate::strand::ProbePlan`]):
//!
//! * an [`IndexSignature`] names a set of columns that a join binds to
//!   concrete values (a *bound-column signature*, the same notion index-
//!   driven homomorphism search uses for conceptual-graph matching);
//! * a [`SecondaryIndex`] maps each distinct projection of a relation onto
//!   that signature to a [`Bucket`] holding the matching tuples, so a
//!   probe touches exactly the matching tuples;
//! * [`crate::relation::Relation`] maintains its indexes incrementally on
//!   insert, key-replacement, deletion and soft-state expiry, and answers
//!   [`crate::relation::Relation::probe`] in O(matches).
//!
//! Indexes are declared once per program (the evaluator and the per-node
//! engines collect every compiled strand's signatures up front), never per
//! join.
//!
//! # Interned keys, columnar buckets
//!
//! Bucket keys are **interned**: a projection is mapped through the global
//! [`crate::intern`] table to a fixed-size `[ValueId]`, so maintaining or
//! probing an index hashes and compares `u32` ids instead of whole values
//! (a path-vector column no longer walks its list per index operation),
//! and the bucket map never clones projected `Value`s. Probe keys use the
//! read-only [`crate::intern::lookup`] path: a never-interned probe value
//! cannot match any stored tuple, so the probe answers "empty" without
//! growing the table.
//!
//! Each [`Bucket`] is **columnar** (struct-of-arrays): parallel arrays of
//! the member tuples' shared `Arc<[Value]>` primary keys (one allocation
//! per stored tuple, reference-bumped into every index — kept only for
//! deterministic ordering and materialization), their storage timestamps,
//! and their full column values as contiguous per-column `ValueId` arrays.
//! Visibility (`seq <= seq_limit`) and residual-column filtering therefore
//! walk dense `u64`/`u32` arrays; only the surviving candidates pay the
//! primary-key map lookup that materializes the stored tuple. The arrays
//! are sorted by primary-key *value* (never by id), so probe results
//! iterate in deterministic order and simulation runs stay bit-for-bit
//! reproducible. Buckets accumulating tuples of differing arities (only
//! possible in hand-built test stores) degrade to key/seq arrays with
//! value-compared residuals.
//!
//! Maintenance of a columnar bucket is O(bucket size) per insert/remove
//! (sorted `Vec` splicing across the parallel arrays) versus the old
//! `BTreeSet`'s O(log n) — a deliberate trade: probe-side dense walks
//! dominate maintenance in every measured workload, and real buckets are
//! match sets (tens to hundreds of entries), not whole relations. A
//! relation bulk-loading millions of tuples under one projection would
//! want a hybrid (tree beyond a size threshold) — noted as a follow-on
//! in the ROADMAP.
//!
//! # Probe accounting
//!
//! [`JoinStats`] counts probes at two granularities: `logical_probes` is
//! the number of binding environments answered by an index (one per
//! trigger per atom — the historical notion, preserved so differential
//! tests can compare evaluation modes), while `distinct_probes` is the
//! number of bucket lookups actually executed. The batch path's
//! key-grouped probe sharing ([`crate::batch`]) answers a whole group of
//! same-key environments with one bucket lookup, so `distinct_probes ≤
//! logical_probes` there; the tuple-at-a-time path performs one lookup per
//! environment, so the two counters coincide.

use crate::intern::{self, ValueId};
use ndlog_lang::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Join-level counters accumulated while firing strands: how many joins
/// went through an index probe vs. a scan, how many bucket lookups were
/// actually executed, and how many stored tuples were examined in total.
/// `tuples_examined` is the paper's computation-overhead proxy: with
/// indexes it is proportional to the number of matches rather than the
/// relation size, and it is counted per *logical* probe (a shared bucket
/// lookup still charges every group member), so it is identical whether or
/// not probes are grouped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Binding environments answered by an index probe (per trigger per
    /// atom — identical across grouped, ungrouped and tuple-at-a-time
    /// evaluation).
    pub logical_probes: usize,
    /// Bucket lookups actually executed. Equal to `logical_probes` on the
    /// tuple-at-a-time path; `≤ logical_probes` on the key-grouped batch
    /// path, which probes each distinct key once per atom per batch.
    pub distinct_probes: usize,
    /// Joins that fell back to scanning the relation (no bound columns, or
    /// no index declared for the signature), counted per environment.
    pub scans: usize,
    /// Stored tuples examined across all probes and scans, counted per
    /// environment.
    pub tuples_examined: usize,
}

impl std::ops::AddAssign for JoinStats {
    fn add_assign(&mut self, other: JoinStats) {
        self.logical_probes += other.logical_probes;
        self.distinct_probes += other.distinct_probes;
        self.scans += other.scans;
        self.tuples_examined += other.tuples_examined;
    }
}

/// A normalized (sorted, deduplicated) set of bound columns identifying an
/// index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexSignature(Vec<usize>);

impl IndexSignature {
    /// Normalize an arbitrary column list into a signature.
    pub fn new(cols: &[usize]) -> Self {
        let mut cols = cols.to_vec();
        cols.sort_unstable();
        cols.dedup();
        IndexSignature(cols)
    }

    /// The sorted column indexes.
    pub fn columns(&self) -> &[usize] {
        &self.0
    }

    /// Whether the signature binds no columns (a degenerate "index"
    /// equivalent to a full scan; never materialized).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether every column of this signature appears in `cols` (which
    /// must be sorted ascending): an index on this signature can serve a
    /// lookup binding `cols`, with the leftover columns checked residually.
    pub fn is_covered_by(&self, cols: &[usize]) -> bool {
        // Both sides are sorted ascending, so a single forward pass over
        // `cols` suffices.
        let mut cols = cols.iter();
        self.0.iter().all(|&col| cols.by_ref().any(|&c| c == col))
    }
}

/// A bucket: the tuples sharing one projection, stored columnar
/// (struct-of-arrays) in deterministic primary-key-value order. See the
/// module docs for the layout.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Shared primary keys, sorted by value (deterministic probe order).
    keys: Vec<Arc<[Value]>>,
    /// Parallel: the storage timestamp of each member tuple, for dense
    /// visibility filtering.
    seqs: Vec<u64>,
    /// Columnar member payload: `cols[c][i]` is the interned id of column
    /// `c` of member `i`. Empty once the bucket has degraded (mixed
    /// arities).
    cols: Vec<Vec<ValueId>>,
    /// Whether `cols` is authoritative. A bucket degrades permanently when
    /// tuples of differing arities are filed under it (hand-built test
    /// stores only); residual filtering then falls back to comparing
    /// materialized values.
    columnar: bool,
}

impl Default for Bucket {
    /// An empty bucket, columnar until proven mixed-arity.
    fn default() -> Self {
        Bucket {
            keys: Vec::new(),
            seqs: Vec::new(),
            cols: Vec::new(),
            columnar: true,
        }
    }
}

impl Bucket {
    /// Number of member tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the bucket has no members.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The member primary keys in deterministic (value-sorted) order.
    pub fn keys(&self) -> impl Iterator<Item = &Arc<[Value]>> {
        self.keys.iter()
    }

    /// The member primary key at `i`.
    pub fn key(&self, i: usize) -> &Arc<[Value]> {
        &self.keys[i]
    }

    /// The storage timestamp of member `i`.
    pub fn seq(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// Whether the columnar payload is authoritative (uniform arity).
    pub fn is_columnar(&self) -> bool {
        self.columnar
    }

    /// The member arity when columnar.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The dense id column `c`, parallel to `keys` (columnar buckets only).
    pub fn column(&self, c: usize) -> Option<&[ValueId]> {
        self.cols.get(c).map(Vec::as_slice)
    }

    /// File a member under its primary key, keeping the arrays sorted.
    /// Returns false when the key is already present (idempotent add).
    fn insert(&mut self, primary_key: Arc<[Value]>, tuple_ids: &[ValueId], seq: u64) -> bool {
        let pos = match self
            .keys
            .binary_search_by(|k| k.as_ref().cmp(primary_key.as_ref()))
        {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        if self.columnar {
            if self.keys.is_empty() {
                self.cols = vec![Vec::new(); tuple_ids.len()];
            } else if tuple_ids.len() != self.cols.len() {
                // Mixed arities: degrade to key/seq arrays for good.
                self.cols.clear();
                self.columnar = false;
            }
        }
        self.keys.insert(pos, primary_key);
        self.seqs.insert(pos, seq);
        if self.columnar {
            for (c, col) in self.cols.iter_mut().enumerate() {
                col.insert(pos, tuple_ids[c]);
            }
        }
        true
    }

    /// Remove the member with this primary key. Returns whether it was
    /// present.
    fn remove(&mut self, primary_key: &[Value]) -> bool {
        let Ok(pos) = self.keys.binary_search_by(|k| k.as_ref().cmp(primary_key)) else {
            return false;
        };
        self.keys.remove(pos);
        self.seqs.remove(pos);
        for col in &mut self.cols {
            col.remove(pos);
        }
        true
    }
}

/// A hash index from an interned bound-column projection to the columnar
/// bucket of tuples carrying it.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    signature: IndexSignature,
    buckets: HashMap<Box<[ValueId]>, Bucket>,
    /// Total number of (projection, primary-key) entries, for accounting.
    entries: usize,
    /// Reusable id scratch for the maintenance (write) path.
    scratch: Vec<ValueId>,
}

impl SecondaryIndex {
    /// An empty index over the given signature.
    pub fn new(signature: IndexSignature) -> Self {
        SecondaryIndex {
            signature,
            buckets: HashMap::new(),
            entries: 0,
            scratch: Vec::new(),
        }
    }

    /// The signature this index serves.
    pub fn signature(&self) -> &IndexSignature {
        &self.signature
    }

    /// Number of (projection, primary-key) entries currently indexed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Register a stored tuple under its (shared) primary key. `tuple_ids`
    /// are the interned ids of *all* the tuple's columns (the relation
    /// interns each stored tuple once and shares the ids across its
    /// indexes); the bucket key is the projection onto this index's
    /// signature, and the full ids become the bucket's columnar payload.
    /// Tuples lacking a signature column (shorter arity) are skipped —
    /// they stay unindexed and unreachable by probes on this signature,
    /// matching residual-scan semantics.
    pub fn add(&mut self, tuple_ids: &[ValueId], primary_key: Arc<[Value]>, seq: u64) {
        self.scratch.clear();
        for &c in self.signature.columns() {
            match tuple_ids.get(c) {
                Some(&id) => self.scratch.push(id),
                None => return,
            }
        }
        let bucket = self
            .buckets
            .entry(self.scratch.as_slice().into())
            .or_default();
        if bucket.insert(primary_key, tuple_ids, seq) {
            self.entries += 1;
        }
    }

    /// Remove a stored tuple's projection entry. Returns whether an entry
    /// was actually removed (false indicates the index was already
    /// consistent, e.g. a stale-deletion no-op). Resolves the projection
    /// read-only: a projection containing a never-interned value cannot
    /// have an entry, so removals never grow the intern table.
    pub fn remove(&mut self, projection: &[&Value], primary_key: &[Value]) -> bool {
        if !intern::lookup_refs_into(projection, &mut self.scratch) {
            return false;
        }
        let Some(bucket) = self.buckets.get_mut(self.scratch.as_slice()) else {
            return false;
        };
        let removed = bucket.remove(primary_key);
        if removed {
            self.entries -= 1;
            if bucket.is_empty() {
                self.buckets.remove(self.scratch.as_slice());
            }
        }
        removed
    }

    /// The primary keys whose tuples project to `key_values`, in
    /// deterministic (sorted) order. Empty when no tuple matches.
    pub fn probe<'i>(&'i self, key_values: &[Value]) -> impl Iterator<Item = &'i Arc<[Value]>> {
        self.bucket(key_values).into_iter().flat_map(Bucket::keys)
    }

    /// The bucket for one projection, if any — the eager form of
    /// [`SecondaryIndex::probe`], used when the caller needs an iterator
    /// that borrows only the index (not the probe key). Probe values are
    /// resolved through the read-only interner path (one lock per probe,
    /// a reusable thread-local id buffer, no allocation), so a
    /// never-stored value answers `None` without growing the intern table.
    pub fn bucket(&self, key_values: &[Value]) -> Option<&Bucket> {
        thread_local! {
            static PROBE_IDS: std::cell::RefCell<Vec<ValueId>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        PROBE_IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            if !intern::lookup_into(key_values, &mut ids) {
                return None;
            }
            self.buckets.get(ids.as_slice())
        })
    }

    /// Number of distinct projections (buckets).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of primary keys filed under one projection (0 when absent):
    /// the tuples a probe on `key_values` examines.
    pub fn bucket_size(&self, key_values: &[Value]) -> usize {
        self.bucket(key_values).map_or(0, Bucket::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    fn key(xs: &[i64]) -> Arc<[Value]> {
        vals(xs).into()
    }

    /// File `tuple` (which doubles as its own primary key, as in keyless
    /// relations) with a synthetic seq.
    fn add(idx: &mut SecondaryIndex, tuple: &[i64], seq: u64) {
        let t = Tuple::new(vals(tuple));
        let refs: Vec<&Value> = t.values().iter().collect();
        let mut ids = Vec::new();
        intern::intern_into(&refs, &mut ids);
        idx.add(&ids, key(tuple), seq);
    }

    fn remove(idx: &mut SecondaryIndex, tuple: &[i64]) -> bool {
        let t = vals(tuple);
        let proj: Vec<&Value> = idx.signature().columns().iter().map(|&c| &t[c]).collect();
        idx.remove(&proj, &t)
    }

    #[test]
    fn signature_normalizes() {
        let sig = IndexSignature::new(&[2, 0, 2, 1]);
        assert_eq!(sig.columns(), &[0, 1, 2]);
        assert!(!sig.is_empty());
        assert!(IndexSignature::new(&[]).is_empty());
        assert_eq!(IndexSignature::new(&[1, 0]), IndexSignature::new(&[0, 1]));
    }

    #[test]
    fn add_probe_remove_roundtrip() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[0]));
        add(&mut idx, &[1, 10], 1);
        add(&mut idx, &[1, 20], 2);
        add(&mut idx, &[2, 30], 3);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.bucket_count(), 2);

        let hits: Vec<&[Value]> = idx.probe(&vals(&[1])).map(|k| k.as_ref()).collect();
        assert_eq!(hits, vec![&vals(&[1, 10])[..], &vals(&[1, 20])[..]]);
        assert_eq!(idx.probe(&vals(&[9])).count(), 0);

        assert!(remove(&mut idx, &[1, 10]));
        assert!(!remove(&mut idx, &[1, 10]), "double remove is a no-op");
        assert_eq!(idx.probe(&vals(&[1])).count(), 1);
        assert!(remove(&mut idx, &[1, 20]));
        assert_eq!(idx.bucket_count(), 1, "empty buckets are dropped");
        assert!(remove(&mut idx, &[2, 30]));
        assert!(idx.is_empty());
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[1]));
        add(&mut idx, &[0, 5], 1);
        add(&mut idx, &[0, 5], 2);
        assert_eq!(idx.len(), 1);
        let bucket = idx.bucket(&vals(&[5])).unwrap();
        assert_eq!(bucket.seq(0), 1, "the original entry keeps its seq");
    }

    #[test]
    fn buckets_are_columnar_and_carry_seqs() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[1]));
        add(&mut idx, &[7, 3, 40], 11);
        add(&mut idx, &[5, 3, 30], 12);
        let bucket = idx.bucket(&vals(&[3])).unwrap();
        assert!(bucket.is_columnar());
        assert_eq!(bucket.arity(), 3);
        assert_eq!(bucket.len(), 2);
        // Members sort by primary-key value: [5,3,30] before [7,3,40].
        assert_eq!(bucket.key(0).as_ref(), &vals(&[5, 3, 30])[..]);
        assert_eq!(bucket.seq(0), 12);
        assert_eq!(bucket.seq(1), 11);
        // The dense columns are parallel to the keys and resolve back to
        // the stored values.
        let col2 = bucket.column(2).unwrap();
        assert_eq!(col2.len(), 2);
        assert_eq!(intern::resolve(col2[0]), Value::Int(30));
        assert_eq!(intern::resolve(col2[1]), Value::Int(40));
        assert!(bucket.column(3).is_none());
    }

    #[test]
    fn mixed_arity_bucket_degrades_but_stays_correct() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[0]));
        add(&mut idx, &[9, 1], 1);
        add(&mut idx, &[9, 1, 2], 2);
        let bucket = idx.bucket(&vals(&[9])).unwrap();
        assert!(!bucket.is_columnar(), "mixed arities degrade the bucket");
        assert_eq!(bucket.len(), 2);
        let hits: Vec<&[Value]> = idx.probe(&vals(&[9])).map(|k| k.as_ref()).collect();
        assert_eq!(hits.len(), 2);
        assert!(remove(&mut idx, &[9, 1]));
        assert!(remove(&mut idx, &[9, 1, 2]));
        assert!(idx.is_empty());
    }

    #[test]
    fn short_tuples_stay_unindexed() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[2]));
        add(&mut idx, &[1], 1);
        assert!(idx.is_empty(), "tuples lacking the column are skipped");
        add(&mut idx, &[1, 2, 3], 2);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn never_interned_probe_value_is_an_empty_bucket() {
        let mut idx = SecondaryIndex::new(IndexSignature::new(&[0]));
        add(&mut idx, &[3, 1], 1);
        // A value that was never stored anywhere cannot match; the probe
        // must answer without interning it.
        let novel = Value::str("index-test-never-stored-77ab");
        assert!(idx.bucket(std::slice::from_ref(&novel)).is_none());
        assert_eq!(idx.bucket_size(std::slice::from_ref(&novel)), 0);
        assert_eq!(crate::intern::lookup(&novel), None);
    }
}
