//! Tuples and signed tuple deltas.

use ndlog_lang::Value;
use ndlog_net::NodeAddr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of values. Cloning is cheap (reference counted).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<Vec<Value>>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: Arc::new(values),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The field at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The tuple's location: its first field interpreted as an address
    /// (NDlog location specifiers are always the first attribute).
    pub fn location(&self) -> Option<NodeAddr> {
        self.values.first().and_then(Value::as_addr)
    }

    /// Project the fields at `cols` into a new vector (used for primary
    /// keys and group-by keys). Panics if a column is out of range.
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.values[c].clone()).collect()
    }

    /// Project the fields at `cols` into a caller-provided buffer, so hot
    /// paths (index maintenance, repeated probe-key construction) can reuse
    /// one allocation across calls. Returns false — leaving `out` in an
    /// unspecified state — if any column is out of range.
    pub fn project_into(&self, cols: &[usize], out: &mut Vec<Value>) -> bool {
        out.clear();
        out.reserve(cols.len());
        for &c in cols {
            match self.values.get(c) {
                Some(v) => out.push(v.clone()),
                None => return false,
            }
        }
        true
    }

    /// Approximate wire size in bytes, for communication accounting.
    pub fn wire_size(&self) -> usize {
        2 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The sign of a delta: insertion or deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// The tuple is being inserted / derived.
    Insert,
    /// The tuple is being deleted / underived.
    Delete,
}

impl Sign {
    /// The opposite sign.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Insert => Sign::Delete,
            Sign::Delete => Sign::Insert,
        }
    }

    /// +1 for insert, -1 for delete.
    pub fn factor(self) -> i64 {
        match self {
            Sign::Insert => 1,
            Sign::Delete => -1,
        }
    }
}

/// A signed change to a relation: the unit that flows through rule strands,
/// PSN queues and network messages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleDelta {
    /// Relation name.
    pub relation: String,
    /// The tuple being inserted or deleted.
    pub tuple: Tuple,
    /// Insert or delete.
    pub sign: Sign,
}

impl TupleDelta {
    /// An insertion delta.
    pub fn insert(relation: impl Into<String>, tuple: Tuple) -> TupleDelta {
        TupleDelta {
            relation: relation.into(),
            tuple,
            sign: Sign::Insert,
        }
    }

    /// A deletion delta.
    pub fn delete(relation: impl Into<String>, tuple: Tuple) -> TupleDelta {
        TupleDelta {
            relation: relation.into(),
            tuple,
            sign: Sign::Delete,
        }
    }

    /// Wire size of the delta when sent as a network message: the tuple
    /// plus relation-name and sign overhead.
    pub fn wire_size(&self) -> usize {
        self.tuple.wire_size() + self.relation.len() + 1
    }
}

impl fmt::Display for TupleDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.sign {
            Sign::Insert => '+',
            Sign::Delete => '-',
        };
        write!(f, "{sign}{}{}", self.relation, self.tuple)
    }
}

/// Convenience constructor for tuples in tests and examples:
/// `tuple![addr(0), 5, "x"]` style is covered by `Tuple::new` with
/// `Value::from` conversions; this helper builds a tuple from values.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$(::ndlog_lang::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn accessors_and_projection() {
        let tup = t(vec![Value::addr(3u32), Value::Int(7), Value::str("x")]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(1), Some(&Value::Int(7)));
        assert_eq!(tup.get(9), None);
        assert_eq!(tup.location(), Some(ndlog_net::NodeAddr(3)));
        assert_eq!(
            tup.project(&[2, 0]),
            vec![Value::str("x"), Value::addr(3u32)]
        );
    }

    #[test]
    fn location_requires_address_first_field() {
        let tup = t(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(tup.location(), None);
    }

    #[test]
    fn display() {
        let tup = t(vec![Value::addr(0u32), Value::Int(5)]);
        assert_eq!(tup.to_string(), "(@n0, 5)");
        let d = TupleDelta::insert("link", tup.clone());
        assert_eq!(d.to_string(), "+link(@n0, 5)");
        let d = TupleDelta::delete("link", tup);
        assert_eq!(d.to_string(), "-link(@n0, 5)");
    }

    #[test]
    fn sign_helpers() {
        assert_eq!(Sign::Insert.flip(), Sign::Delete);
        assert_eq!(Sign::Delete.flip(), Sign::Insert);
        assert_eq!(Sign::Insert.factor(), 1);
        assert_eq!(Sign::Delete.factor(), -1);
    }

    #[test]
    fn wire_size_accounts_for_fields_and_name() {
        let tup = t(vec![Value::addr(0u32), Value::Int(5)]);
        assert_eq!(tup.wire_size(), 2 + 4 + 8);
        let d = TupleDelta::insert("link", tup);
        assert_eq!(d.wire_size(), 14 + 4 + 1);
    }

    #[test]
    fn tuple_macro() {
        let tup = tuple![ndlog_net::NodeAddr(1), 5i64, "hi"];
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(0), Some(&Value::addr(1u32)));
    }
}
