//! Cross-rule shared subplans: a per-round probe cache.
//!
//! PR 5's key-grouped probe sharing ([`crate::batch`]) executes one index
//! lookup per distinct probe key *within* one strand's delta batch. This
//! module extends the sharing *across rules*: when several strands probe
//! the same `(relation, bound-column signature)` — the planner detects
//! this at compile time via [`shared_signatures`] — the engine arms a
//! [`ProbeCache`] for the evaluation round, and every distinct
//! `(relation, cols, key)` bucket lookup is executed once no matter how
//! many strands (or stages) probe it. This is sound because all strands
//! of a round fire against one frozen store snapshot — ingestion of their
//! derivations happens only after the round's firing completes — so a
//! probe's raw candidate set is a pure function of `(relation, cols,
//! key)` for the lifetime of the cache.
//!
//! The cache stores the **raw** [`crate::relation::Relation::lookup_n`]
//! candidates, *before* residual ops and visibility filtering: residual
//! checks and `seq_limit`s are stage- and member-specific, so they replay
//! per consumer exactly as uncached evaluation would. Statistics follow
//! the two-counter contract of [`crate::index::JoinStats`]: every probe —
//! hit or miss — records its full per-environment `logical_probes` /
//! `scans` / `tuples_examined` contribution (identical to uncached
//! evaluation, so differential tests keep passing), while
//! `distinct_probes` is only incremented by misses, making the counter
//! report bucket lookups *actually executed* across the whole round. Hit
//! and miss decisions depend only on first-occurrence order of keys in
//! the (fixed) strand firing order, never on hash-map iteration order, so
//! armed runs stay bitwise deterministic across executor thread counts.

use crate::index::JoinStats;
use crate::relation::{Relation, StoredTuple};
use crate::strand::CompiledStrand;
use ndlog_lang::Value;
use std::collections::{BTreeMap, HashMap};

/// The probe signatures worth caching: every `(relation, bound-column
/// signature)` probed by two or more of the given strands' stages (or
/// twice within one strand). Engines arm a [`ProbeCache`] per round only
/// when this is non-empty, so programs without cross-rule sharing pay
/// nothing.
pub fn shared_signatures(strands: &[CompiledStrand]) -> Vec<(String, Vec<usize>)> {
    let mut counts: BTreeMap<(String, Vec<usize>), usize> = BTreeMap::new();
    for strand in strands {
        for sig in strand.index_requirements() {
            *counts.entry(sig).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(sig, _)| sig)
        .collect()
}

/// One cached probe: the raw candidate set of a `(relation, cols, key)`
/// lookup at unrestricted visibility, plus the per-environment statistics
/// contribution to replay on hits.
struct CachedProbe<'r> {
    per_logical: usize,
    per_scans: usize,
    per_examined: usize,
    matches: Vec<&'r StoredTuple>,
}

/// A per-round cross-rule probe cache. Created fresh for each evaluation
/// round (its borrows are tied to that round's frozen store) and passed
/// to [`CompiledStrand::fire_batch_shared`] for every strand fired in the
/// round.
pub struct ProbeCache<'r> {
    /// The armed signatures, from [`shared_signatures`]. Probes outside
    /// this list bypass the cache entirely (linear scan: the list is a
    /// handful of entries and the comparison allocates nothing).
    sigs: Vec<(String, Vec<usize>)>,
    /// Per signature: probe key → cached candidates.
    entries: Vec<HashMap<Box<[Value]>, CachedProbe<'r>>>,
    hits: usize,
    misses: usize,
}

impl<'r> ProbeCache<'r> {
    /// A cache armed for the given shared signatures.
    pub fn new(shared: &[(String, Vec<usize>)]) -> ProbeCache<'r> {
        ProbeCache {
            sigs: shared.to_vec(),
            entries: (0..shared.len()).map(|_| HashMap::new()).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cached probes answered without a bucket lookup so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Probes that executed their lookup and populated the cache.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Serve one grouped probe on behalf of `members` same-key binding
    /// environments. Returns `None` when the signature is not armed (the
    /// caller then probes the relation directly); otherwise the raw
    /// candidate set, with `stats` updated per the module contract.
    pub(crate) fn probe(
        &mut self,
        stored: &'r Relation,
        relation: &str,
        cols: &[usize],
        key: &[Value],
        members: usize,
        stats: &mut JoinStats,
    ) -> Option<&[&'r StoredTuple]> {
        let sig = self
            .sigs
            .iter()
            .position(|(r, c)| r == relation && c == cols)?;
        let entries = &mut self.entries[sig];
        if let Some(entry) = entries.get(key) {
            stats.logical_probes += entry.per_logical * members;
            stats.scans += entry.per_scans * members;
            stats.tuples_examined += entry.per_examined * members;
            self.hits += 1;
        } else {
            let mut local = JoinStats::default();
            let matches: Vec<&'r StoredTuple> = stored
                .lookup_n(cols, key, u64::MAX, members, &mut local)
                .collect();
            // lookup_n scales every counter by `members`, so the
            // per-environment rates divide back out exactly.
            let entry = CachedProbe {
                per_logical: local.logical_probes / members,
                per_scans: local.scans / members,
                per_examined: local.tuples_examined / members,
                matches,
            };
            *stats += local;
            entries.insert(key.to_vec().into_boxed_slice(), entry);
            self.misses += 1;
        }
        Some(
            self.entries[sig]
                .get(key)
                .expect("present or just inserted")
                .matches
                .as_slice(),
        )
    }
}
